"""Exception hierarchy shared by every subsystem of the reproduction.

The hierarchy mirrors the layers of the system:

* :class:`ReproError` — root of everything raised on purpose.
* :class:`DatabaseError` and its children — raised by the relational
  engine substrate (``repro.rdb``) when DDL/DML violates the schema or
  its constraints.  The *hybrid* data-checking strategy of the paper
  relies on catching these, exactly as the paper relies on the error
  codes of a commercial RDBMS.
* :class:`XMLError` / :class:`XQueryError` — raised by the XML and view
  language substrates on malformed input.
* :class:`UFilterError` — raised by the checker itself for internal
  misuse (e.g. checking an update against the wrong view).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


# ---------------------------------------------------------------------------
# Relational engine errors
# ---------------------------------------------------------------------------

class DatabaseError(ReproError):
    """Base class for relational-engine failures."""


class SchemaError(DatabaseError):
    """DDL-level problem: unknown relation/attribute, duplicate names."""


class TypeMismatchError(DatabaseError):
    """A value does not belong to the declared domain of its attribute."""


class ConstraintViolation(DatabaseError):
    """Base class for integrity-constraint violations raised by DML."""

    #: short machine-readable code, akin to a SQLSTATE class
    code = "23000"


class NotNullViolation(ConstraintViolation):
    code = "23502"


class UniqueViolation(ConstraintViolation):
    code = "23505"


class PrimaryKeyViolation(UniqueViolation):
    code = "23505"


class ForeignKeyViolation(ConstraintViolation):
    code = "23503"


class CheckViolation(ConstraintViolation):
    code = "23514"


class TransactionError(DatabaseError):
    """Misuse of the transaction API (commit without begin, ...)."""


class SQLSyntaxError(DatabaseError):
    """Raised by the SQL lexer/parser on malformed statements."""


# ---------------------------------------------------------------------------
# XML / XQuery substrate errors
# ---------------------------------------------------------------------------

class XMLError(ReproError):
    """Malformed XML input or an invalid tree operation."""


class XPathError(XMLError):
    """Malformed or unsupported XPath expression."""


class XQueryError(ReproError):
    """Malformed view query, or a query outside the supported subset."""


class UnsupportedFeatureError(XQueryError):
    """The query uses a feature the view ASG cannot express.

    The Fig. 12 expressiveness audit is driven by this exception: the
    ASG generator raises it with :attr:`feature` naming the offending
    construct (``count()``, ``distinct()``, ...).
    """

    def __init__(self, feature: str, message: str | None = None) -> None:
        self.feature = feature
        super().__init__(message or f"feature not expressible in a view ASG: {feature}")


class UpdateSyntaxError(XQueryError):
    """Malformed view-update statement."""


# ---------------------------------------------------------------------------
# U-Filter core errors
# ---------------------------------------------------------------------------

class UFilterError(ReproError):
    """Internal misuse of the U-Filter pipeline."""


class QAError(UFilterError):
    """A post-translation QA audit surfaced ERROR-severity findings.

    Raised by :func:`repro.core.qa.raise_on_error` when a translated
    plan fails a semantic audit (duplication consistency, insert
    ordering, minimized-delete safety, relation scope); carries the
    structured findings on :attr:`findings`.
    """

    def __init__(self, findings) -> None:
        self.findings = list(findings)
        lines = "; ".join(f.describe() for f in self.findings[:3])
        extra = len(self.findings) - 3
        if extra > 0:
            lines += f" (+{extra} more)"
        super().__init__(f"QA audit failed: {lines}")
