"""Exception hierarchy shared by every subsystem of the reproduction.

The hierarchy mirrors the layers of the system:

* :class:`ReproError` — root of everything raised on purpose.
* :class:`DatabaseError` and its children — raised by the relational
  engine substrate (``repro.rdb``) when DDL/DML violates the schema or
  its constraints.  The *hybrid* data-checking strategy of the paper
  relies on catching these, exactly as the paper relies on the error
  codes of a commercial RDBMS.
* :class:`XMLError` / :class:`XQueryError` — raised by the XML and view
  language substrates on malformed input.
* :class:`UFilterError` — raised by the checker itself for internal
  misuse (e.g. checking an update against the wrong view).

Orthogonally to the layer hierarchy, every error is classified as
*transient* or *fatal* (:attr:`ReproError.transient`): transient errors
describe conditions a bounded retry can clear (another session's
conflicting commit, an injected fault, a stale probe cache), fatal
errors describe conditions a retry would only reproduce (constraint
violations, malformed input).  The session retry policy of
:class:`repro.core.session.UpdateSession` dispatches on this flag —
see :class:`TransientError` / :class:`FatalError`.
"""

from __future__ import annotations

from typing import Any, Iterable


class ReproError(Exception):
    """Base class for all errors raised by this package.

    :attr:`transient` is the retry-policy classification: ``True`` means
    a bounded retry may succeed (the failure came from interference or
    injected faults rather than from the data itself).  Errors default
    to non-transient — retrying a constraint violation or a syntax
    error only reproduces it.
    """

    #: retry-policy classification; see :class:`TransientError`
    transient = False


class TransientError(ReproError):
    """A failure a bounded retry can clear.

    Raised for conditions caused by *interference* rather than by the
    update itself: another committer won the race
    (:class:`ConflictError`), a deterministic fault was injected
    (:class:`repro.rdb.faults.FaultInjectedError`), a cached probe
    result went stale.  :class:`repro.core.session.UpdateSession`
    retries these with exponential backoff up to its ``retries``
    budget before the failure sticks.
    """

    transient = True


class FatalError(ReproError):
    """A failure retrying cannot clear (explicit non-retryable base).

    The complement of :class:`TransientError` for errors that want to
    state their classification explicitly rather than inherit the
    default.
    """

    transient = False


class ConflictError(TransientError):
    """Another actor's changes conflict with this update.

    The first-committer-wins signal: the tuples this update checked
    against were mutated (or will be) by a concurrent session between
    check and apply.  Transient by definition — re-checking against the
    new state may well succeed, which is exactly what the session retry
    loop does.
    """


# ---------------------------------------------------------------------------
# Relational engine errors
# ---------------------------------------------------------------------------

class DatabaseError(ReproError):
    """Base class for relational-engine failures."""


class SchemaError(DatabaseError):
    """DDL-level problem: unknown relation/attribute, duplicate names."""


class TypeMismatchError(DatabaseError):
    """A value does not belong to the declared domain of its attribute."""


class ConstraintViolation(DatabaseError):
    """Base class for integrity-constraint violations raised by DML."""

    #: short machine-readable code, akin to a SQLSTATE class
    code = "23000"


class NotNullViolation(ConstraintViolation):
    code = "23502"


class UniqueViolation(ConstraintViolation):
    code = "23505"


class PrimaryKeyViolation(UniqueViolation):
    code = "23505"


class ForeignKeyViolation(ConstraintViolation):
    code = "23503"


class CheckViolation(ConstraintViolation):
    code = "23514"


class TransactionError(DatabaseError):
    """Misuse of the transaction API (commit without begin, ...)."""


class SQLSyntaxError(DatabaseError):
    """Raised by the SQL lexer/parser on malformed statements."""


# ---------------------------------------------------------------------------
# XML / XQuery substrate errors
# ---------------------------------------------------------------------------

class XMLError(ReproError):
    """Malformed XML input or an invalid tree operation."""


class XPathError(XMLError):
    """Malformed or unsupported XPath expression."""


class XQueryError(ReproError):
    """Malformed view query, or a query outside the supported subset."""


class UnsupportedFeatureError(XQueryError):
    """The query uses a feature the view ASG cannot express.

    The Fig. 12 expressiveness audit is driven by this exception: the
    ASG generator raises it with :attr:`feature` naming the offending
    construct (``count()``, ``distinct()``, ...).
    """

    def __init__(self, feature: str, message: str | None = None) -> None:
        self.feature = feature
        super().__init__(message or f"feature not expressible in a view ASG: {feature}")


class UpdateSyntaxError(XQueryError):
    """Malformed view-update statement."""


# ---------------------------------------------------------------------------
# U-Filter core errors
# ---------------------------------------------------------------------------

class UFilterError(ReproError):
    """Internal misuse of the U-Filter pipeline."""


class QAError(UFilterError):
    """A post-translation QA audit surfaced ERROR-severity findings.

    Raised by :func:`repro.core.qa.raise_on_error` when a translated
    plan fails a semantic audit (duplication consistency, insert
    ordering, minimized-delete safety, relation scope); carries the
    structured findings on :attr:`findings`.

    Transiency is *accurate*, not blanket: the error is transient iff
    every finding is a ``stale-rowid`` signature — a plan built from a
    stale probe cache, which clearing the cache and re-checking fixes.
    Any other ERROR finding describes the plan itself and retrying the
    same translation would only reproduce it.
    """

    def __init__(self, findings: Iterable[Any]) -> None:
        self.findings = list(findings)
        lines = "; ".join(f.describe() for f in self.findings[:3])
        extra = len(self.findings) - 3
        if extra > 0:
            lines += f" (+{extra} more)"
        super().__init__(f"QA audit failed: {lines}")

    @property
    def transient(self) -> bool:  # type: ignore[override]
        # keep the string in sync with repro.core.qa.CHECK_STALE_ROWID
        # (imported lazily to avoid an errors -> core cycle)
        return bool(self.findings) and all(
            getattr(finding, "check", None) == "stale-rowid"
            for finding in self.findings
        )


class PlanVerificationError(FatalError):
    """The plan-IR verifier rejected a lowered physical tree.

    Raised by :func:`repro.analysis.planlint.verify_or_raise` when the
    ``REPRO_PLAN_VERIFY=1`` debug hook is armed and a lowered operator
    tree violates a structural invariant (unbound column, double-used
    leaf, join-key type mismatch, estimate above its input bound, ...).

    Fatal, never transient: the tree is a deterministic function of
    the logical plan and the schema, so re-lowering reproduces the
    same violation.  Carries the finding descriptions on
    :attr:`findings` and the offending tree's ``explain()`` text on
    :attr:`plan_text`.
    """

    def __init__(self, findings: Iterable[str], plan_text: str = "") -> None:
        self.findings = list(findings)
        self.plan_text = plan_text
        lines = "; ".join(self.findings[:3])
        extra = len(self.findings) - 3
        if extra > 0:
            lines += f" (+{extra} more)"
        super().__init__(f"plan verification failed: {lines}")


class UpdateTimeoutError(FatalError):
    """A session update exceeded its per-update time budget.

    Fatal, not transient: retrying work that already blew its budget
    would blow it again.  The session's graceful-degradation policy
    (abort-batch / skip-update / commit-prefix) decides what happens to
    the rest of the batch.
    """
