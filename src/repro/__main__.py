"""Module entry point: ``python -m repro <subcommand>``."""

from .cli import main

raise SystemExit(main())
