"""Command-line front end: ``python -m repro ...``.

Subcommands:

* ``demo``  — run the paper's running example end to end;
* ``asg``   — print the annotated schema graph (marks included) for a
  view over a schema;
* ``check`` — check one update against a view over a populated
  database;
* ``audit`` — regenerate the Fig. 12 W3C expressiveness table;
* ``wellnested`` — report whether a view is well-nested.

Schemas/data are supplied as SQL scripts (CREATE TABLE + INSERT
statements in the dialect of :mod:`repro.rdb.sql`), views and updates
as files in the languages of :mod:`repro.xquery`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .core import UFilter
from .core.wellnested import analyze_well_nestedness
from .rdb import Database, Schema, SQLEngine, parse_script

__all__ = ["main", "build_parser"]


def _load_database(sql_path: str) -> Database:
    db = Database(Schema())
    engine = SQLEngine(db)
    script = Path(sql_path).read_text()
    for statement in parse_script(script):
        engine.execute(statement)
    return db


def _read(path_or_dash: str) -> str:
    if path_or_dash == "-":
        return sys.stdin.read()
    return Path(path_or_dash).read_text()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="U-Filter: a lightweight XML view update checker",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run the paper's running example")

    asg = sub.add_parser("asg", help="print a view's annotated schema graph")
    asg.add_argument("--db", required=True, help="SQL script (DDL [+ data])")
    asg.add_argument("--view", required=True, help="view query file (or -)")

    check = sub.add_parser("check", help="check an update against a view")
    check.add_argument("--db", required=True, help="SQL script (DDL + data)")
    check.add_argument("--view", required=True, help="view query file (or -)")
    check.add_argument("--update", required=True, help="update file (or -)")
    check.add_argument(
        "--strategy",
        choices=("internal", "hybrid", "outside"),
        default="outside",
    )
    check.add_argument(
        "--execute",
        action="store_true",
        help="apply the translated SQL to the loaded database",
    )

    sub.add_parser("audit", help="regenerate the Fig. 12 W3C table")

    wn = sub.add_parser("wellnested", help="well-nestedness analysis")
    wn.add_argument("--db", required=True)
    wn.add_argument("--view", required=True)

    return parser


def _cmd_demo() -> int:
    from .workloads import books

    db = books.build_book_database()
    checker = UFilter(db, books.book_view_query())
    print("BookView annotated schema graph:")
    for node in checker.view_asg.internal_nodes():
        print(f"  {node.node_id}  <{node.name}>  ({node.mark})")
    print()
    for name in books.UPDATE_TEXTS:
        report = checker.check(books.update(name))
        line = f"{name:4} -> {report.outcome.value}"
        if report.condition:
            line += f" [{report.condition}]"
        print(line)
        if report.reason and not report.outcome.accepted:
            print(f"        {report.reason[:96]}")
        for sql in report.sql_updates:
            print(f"        SQL: {sql}")
    return 0


def _cmd_asg(args: argparse.Namespace) -> int:
    db = _load_database(args.db)
    checker = UFilter(db, _read(args.view))
    print(checker.describe_asg())
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    db = _load_database(args.db)
    checker = UFilter(db, _read(args.view))
    report = checker.check(
        _read(args.update), strategy=args.strategy, execute=args.execute
    )
    print(report.summary())
    return 0 if report.outcome.accepted else 1


def _cmd_audit() -> int:
    from .workloads.w3c_usecases import run_audit

    print(f"{'View Query':12} {'Included':9} Reason")
    for name, included, reason in run_audit():
        print(f"{name:12} {'yes' if included else 'no':9} {reason or '-'}")
    return 0


def _cmd_wellnested(args: argparse.Namespace) -> int:
    db = _load_database(args.db)
    checker = UFilter(db, _read(args.view))
    report = analyze_well_nestedness(checker.view_asg)
    if report.well_nested:
        print("well-nested: every valid update over this view is translatable")
        return 0
    print("NOT well-nested:")
    for violation in report.violations:
        print(f"  - {violation}")
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "asg":
        return _cmd_asg(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "audit":
        return _cmd_audit()
    if args.command == "wellnested":
        return _cmd_wellnested(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
