"""Command-line front end: ``python -m repro ...``.

Subcommands:

* ``demo``  — run the paper's running example end to end;
* ``asg``   — print the annotated schema graph (marks included) for a
  view over a schema;
* ``check`` — check one update against a view over a populated
  database;
* ``batch-update`` — run a whole file of updates as one
  :class:`repro.core.session.UpdateSession` (probe caching, conflict
  detection, single transaction);
* ``audit`` — regenerate the Fig. 12 W3C expressiveness table;
* ``wellnested`` — report whether a view is well-nested;
* ``qa`` — round-trip seeded random scenarios through every strategy
  and the interpreted oracles, cross-checking outcomes, final states,
  the rectangle rule and the post-translation QA audit
  (:mod:`repro.core.scenario_gen`);
* ``faults`` — crash-at-every-site fault sweep: re-run seeded
  scenarios with a simulated crash or transient fault injected at each
  recorded site, recover, and assert atomicity + storage integrity
  (:mod:`repro.core.faultsweep`);
* ``lint`` — run the repo invariant linter (rules REP001–REP005 of
  :mod:`repro.analysis`) over the source tree, and with ``--plans``
  additionally sweep the plan-IR verifier across generated scenarios;
* ``bench`` — run the engine executor benchmark (the Fig. 15/16 probe
  workloads under the interpreted, row-compiled and vectorized
  executors) at a chosen scale, writing the timing JSON and optionally
  gating against a committed ``BENCH_engine.json``.

Schemas/data are supplied as SQL scripts (CREATE TABLE + INSERT
statements in the dialect of :mod:`repro.rdb.sql`), views and updates
as files in the languages of :mod:`repro.xquery`.  Batch files hold
several updates separated by lines containing only dashes (``---``);
a ``# name`` comment line at the top of a section names the update.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Optional, Sequence

from .core import UFilter, UpdateSession
from .core.wellnested import analyze_well_nestedness
from .rdb import Database, Schema, SQLEngine, parse_script

__all__ = ["main", "build_parser"]


def _load_database(sql_path: str) -> Database:
    db = Database(Schema())
    engine = SQLEngine(db)
    script = Path(sql_path).read_text()
    for statement in parse_script(script):
        engine.execute(statement)
    return db


def _read(path_or_dash: str) -> str:
    if path_or_dash == "-":
        return sys.stdin.read()
    return Path(path_or_dash).read_text()


def split_batch_file(text: str) -> list[tuple[str, str]]:
    """Split a batch file into (name, update text) sections.

    Sections are separated by lines of three or more dashes.  A leading
    ``# name`` comment inside a section names it; unnamed sections get
    positional names (#1, #2, ...).  Empty sections are dropped.
    """
    sections: list[tuple[str, str]] = []
    for raw in re.split(r"(?m)^-{3,}\s*$", text):
        name = ""
        lines: list[str] = []
        in_header = True
        for line in raw.splitlines():
            stripped = line.strip()
            if in_header and not stripped:
                continue
            if in_header and stripped.startswith("#"):
                name = name or stripped.lstrip("#").strip()
                continue
            in_header = False
            lines.append(line)
        body = "\n".join(lines).strip()
        if body:
            sections.append((name or f"#{len(sections) + 1}", body))
    return sections


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="U-Filter: a lightweight XML view update checker",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run the paper's running example")

    asg = sub.add_parser("asg", help="print a view's annotated schema graph")
    asg.add_argument("--db", required=True, help="SQL script (DDL [+ data])")
    asg.add_argument("--view", required=True, help="view query file (or -)")

    check = sub.add_parser("check", help="check an update against a view")
    check.add_argument("--db", required=True, help="SQL script (DDL + data)")
    check.add_argument("--view", required=True, help="view query file (or -)")
    check.add_argument("--update", required=True, help="update file (or -)")
    check.add_argument(
        "--strategy",
        choices=("internal", "hybrid", "outside"),
        default="outside",
    )
    check.add_argument(
        "--execute",
        action="store_true",
        help="apply the translated SQL to the loaded database",
    )

    batch = sub.add_parser(
        "batch-update",
        help="run a file of updates as one batched session",
    )
    batch.add_argument("batch", help="batch file: updates separated by '---' lines")
    batch.add_argument("--db", required=True, help="SQL script (DDL + data)")
    batch.add_argument("--view", required=True, help="view query file (or -)")
    batch.add_argument(
        "--strategy",
        choices=("internal", "hybrid", "outside"),
        default="outside",
    )
    batch.add_argument(
        "--mode",
        choices=("staged", "interleaved"),
        default="staged",
        help="staged: check all, detect conflicts, apply once; "
        "interleaved: check+apply update-by-update in one transaction",
    )
    batch.add_argument(
        "--no-atomic",
        action="store_true",
        help="apply the accepted updates even when others fail",
    )
    batch.add_argument(
        "--no-temp-indexes",
        action="store_true",
        help="leave materialized probe results unindexed (paper-faithful)",
    )

    sub.add_parser("audit", help="regenerate the Fig. 12 W3C table")

    wn = sub.add_parser("wellnested", help="well-nestedness analysis")
    wn.add_argument("--db", required=True)
    wn.add_argument("--view", required=True)

    qa = sub.add_parser(
        "qa",
        help="cross-check strategies/oracles over generated scenarios",
    )
    qa.add_argument(
        "--scenarios",
        type=int,
        default=100,
        help="number of seeded scenarios to round-trip (default 100)",
    )
    qa.add_argument(
        "--seed",
        type=int,
        default=0,
        help="first scenario seed; scenarios use seed, seed+1, ...",
    )
    qa.add_argument(
        "--json",
        metavar="PATH",
        help="also write the summary and any divergences as JSON",
    )

    faults = sub.add_parser(
        "faults",
        help="crash-at-every-site fault sweep over generated scenarios",
    )
    faults.add_argument(
        "--scenarios",
        type=int,
        default=50,
        help="number of seeded scenarios to sweep (default 50)",
    )
    faults.add_argument(
        "--seed",
        type=int,
        default=0,
        help="first scenario seed; scenarios use seed, seed+1, ...",
    )
    faults.add_argument(
        "--max-points",
        type=int,
        default=None,
        metavar="N",
        help="bound the exhaustive crash enumeration per scenario "
        "(evenly sampled past N; default: every recorded site)",
    )
    faults.add_argument(
        "--json",
        metavar="PATH",
        help="also write the summary and any findings as JSON",
    )

    lint = sub.add_parser(
        "lint",
        help="run the repo invariant linter (REP001-REP005)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed "
        "repro package source)",
    )
    lint.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--plans",
        action="store_true",
        help="also sweep the plan-IR verifier over generated scenarios "
        "(REPRO_PLAN_VERIFY armed for every lowering)",
    )
    lint.add_argument(
        "--scenarios",
        type=int,
        default=200,
        help="scenarios for the --plans sweep (default 200)",
    )
    lint.add_argument(
        "--seed",
        type=int,
        default=0,
        help="first scenario seed for the --plans sweep",
    )
    lint.add_argument(
        "--json",
        metavar="PATH",
        help="also write findings (and the plan-sweep report) as JSON",
    )

    bench = sub.add_parser(
        "bench",
        help="run the engine executor benchmark (Fig. 15/16 workloads)",
    )
    bench.add_argument(
        "--streaming",
        action="store_true",
        help="run the streaming-session benchmark instead (probe "
        "maintenance vs invalidate-and-recompute, BENCH_streaming.json)",
    )
    bench.add_argument(
        "--scale",
        type=float,
        default=None,
        metavar="MB",
        help="nominal database size in MB (default: the benchmark's "
        "full-run scale; engine benchmark only)",
    )
    bench.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="best-of timing rounds per executor (with --streaming: "
        "live update rounds)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="reduced scale, one timing round (CI smoke mode)",
    )
    bench.add_argument(
        "--out",
        metavar="PATH",
        help="output JSON path (default: the committed benchmark file)",
    )
    bench.add_argument(
        "--check-against",
        metavar="COMMITTED",
        help="fail if rows_scanned regresses versus this committed "
        "benchmark file (run at the committed shape)",
    )

    return parser


def _cmd_demo() -> int:
    from .workloads import books

    db = books.build_book_database()
    checker = UFilter(db, books.book_view_query())
    print("BookView annotated schema graph:")
    for node in checker.view_asg.internal_nodes():
        print(f"  {node.node_id}  <{node.name}>  ({node.mark})")
    print()
    for name in books.UPDATE_TEXTS:
        report = checker.check(books.update(name))
        line = f"{name:4} -> {report.outcome.value}"
        if report.condition:
            line += f" [{report.condition}]"
        print(line)
        if report.reason and not report.outcome.accepted:
            print(f"        {report.reason[:96]}")
        for sql in report.sql_updates:
            print(f"        SQL: {sql}")
    return 0


def _cmd_asg(args: argparse.Namespace) -> int:
    db = _load_database(args.db)
    checker = UFilter(db, _read(args.view))
    print(checker.describe_asg())
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    db = _load_database(args.db)
    checker = UFilter(db, _read(args.view))
    report = checker.check(
        _read(args.update), strategy=args.strategy, execute=args.execute
    )
    print(report.summary())
    return 0 if report.outcome.accepted else 1


def _cmd_batch_update(args: argparse.Namespace) -> int:
    from .core.session import STAGEABLE_STRATEGIES

    if args.mode == "staged" and args.strategy not in STAGEABLE_STRATEGIES:
        print(
            f"batch-update: --strategy {args.strategy} requires "
            f"--mode interleaved (staged sessions defer-apply structured "
            f"plans, which only {'/'.join(STAGEABLE_STRATEGIES)} produce)",
            file=sys.stderr,
        )
        return 2
    db = _load_database(args.db)
    session = UpdateSession(
        db,
        _read(args.view),
        strategy=args.strategy,
        index_temp_tables=not args.no_temp_indexes,
    )
    try:
        batch_text = Path(args.batch).read_text()
    except OSError as exc:
        print(f"{args.batch}: {exc.strerror or exc}", file=sys.stderr)
        return 2
    sections = split_batch_file(batch_text)
    if not sections:
        print(f"{args.batch}: no updates found", file=sys.stderr)
        return 2
    from .errors import ReproError

    for name, text in sections:
        try:
            session.add(text, name=name)
        except ReproError as exc:
            print(f"{args.batch}: update {name!r}: {exc}", file=sys.stderr)
            return 2
    result = session.execute(mode=args.mode, atomic=not args.no_atomic)
    print(result.summary())
    return 0 if result.committed else 1


def _cmd_audit() -> int:
    from .workloads.w3c_usecases import run_audit

    print(f"{'View Query':12} {'Included':9} Reason")
    for name, included, reason in run_audit():
        print(f"{name:12} {'yes' if included else 'no':9} {reason or '-'}")
    return 0


def _cmd_wellnested(args: argparse.Namespace) -> int:
    db = _load_database(args.db)
    checker = UFilter(db, _read(args.view))
    report = analyze_well_nestedness(checker.view_asg)
    if report.well_nested:
        print("well-nested: every valid update over this view is translatable")
        return 0
    print("NOT well-nested:")
    for violation in report.violations:
        print(f"  - {violation}")
    return 1


def _cmd_qa(args: argparse.Namespace) -> int:
    import json

    from .core.scenario_gen import run_many

    summary = run_many(args.scenarios, seed=args.seed)
    print(summary.describe())
    if args.json:
        payload = {
            "scenarios": summary.scenarios,
            "updates_checked": summary.updates_checked,
            "accepted": summary.accepted,
            "rejected": summary.rejected,
            "qa_warnings": summary.qa_warnings,
            "divergences": [d.to_dict() for d in summary.divergences],
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    if not summary.ok:
        print(
            "replay one divergence with: repro qa --scenarios 1 --seed <seed>",
            file=sys.stderr,
        )
    return 0 if summary.ok else 1


def _cmd_faults(args: argparse.Namespace) -> int:
    import json

    from .core.faultsweep import sweep_many

    summary = sweep_many(
        args.scenarios, seed=args.seed, max_points=args.max_points
    )
    print(summary.describe())
    if args.json:
        payload = {
            "scenarios": summary.scenarios,
            "sites": summary.sites,
            "crash_points": summary.crash_points,
            "redo_points": summary.redo_points,
            "transient_points": summary.transient_points,
            "retries_used": summary.retries_used,
            "recoveries": summary.recoveries,
            "findings": [f.to_dict() for f in summary.findings],
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    if not summary.ok:
        print(
            "replay one finding with: repro faults --scenarios 1 --seed <seed>",
            file=sys.stderr,
        )
    return 0 if summary.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .analysis import lint_paths
    from .analysis.planlint import sweep_plans

    paths = args.paths or [str(Path(__file__).resolve().parent)]
    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]
    try:
        report = lint_paths(paths, rule_ids=rule_ids)
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    print(report.describe())
    exit_code = report.exit_code
    payload = report.to_dict()
    if args.plans:
        sweep = sweep_plans(args.scenarios, seed=args.seed)
        print(sweep.describe())
        payload["plan_sweep"] = sweep.to_dict()
        if not sweep.ok:
            exit_code = 1
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    # the benchmark harness lives in the repository's benchmarks/
    # package, next to src/ — importable from a checkout, not from an
    # installed wheel
    module = (
        "bench_batch_sessions" if args.streaming else "bench_engine_opt"
    )
    try:
        import importlib

        bench = importlib.import_module(f"benchmarks.{module}")
    except ImportError:
        sys.path.insert(0, str(Path.cwd()))
        try:
            bench = importlib.import_module(f"benchmarks.{module}")
        except ImportError:
            print(
                "bench: the benchmarks/ package is not importable — run "
                "from the repository root",
                file=sys.stderr,
            )
            return 2
    argv: list[str] = []
    if args.quick:
        argv.append("--quick")
    if args.scale is not None:
        if args.streaming:
            print("bench: --scale only applies to the engine benchmark",
                  file=sys.stderr)
            return 2
        argv += ["--scale", str(args.scale)]
    if args.rounds is not None:
        argv += ["--rounds", str(args.rounds)]
    if args.out:
        argv += ["--out", args.out]
    if args.check_against:
        argv += ["--check-against", args.check_against]
    try:
        bench.main(argv)
    except SystemExit as exc:
        if exc.code in (0, None):
            return 0
        if isinstance(exc.code, str):
            print(f"bench: {exc.code}", file=sys.stderr)
            return 1
        return int(exc.code)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "asg":
        return _cmd_asg(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "batch-update":
        return _cmd_batch_update(args)
    if args.command == "audit":
        return _cmd_audit()
    if args.command == "wellnested":
        return _cmd_wellnested(args)
    if args.command == "qa":
        return _cmd_qa(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "bench":
        return _cmd_bench(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
