"""Parser for view-definition queries (Fig. 3a style).

The parser is deliberately *more* permissive than the view ASG: it
accepts aggregate/function calls, ``if/then/else`` and ``order by`` so
the W3C use-case queries of the Fig. 12 audit parse cleanly; the ASG
generator is the component that rejects them with a reason.
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import XQueryError
from .ast import (
    Binding,
    Content,
    DocSource,
    ElementCtor,
    FLWR,
    FunctionCall,
    IfThenElse,
    Predicate,
    VarPath,
    VarProjection,
    ViewQuery,
)
from .lexer import Lexer, Token, TokenKind

__all__ = ["parse_view_query"]

#: function names the parser recognizes; everything else errors out
KNOWN_FUNCTIONS = {
    "count", "max", "min", "avg", "sum", "distinct", "distinct-values",
    "empty", "not", "contains", "position", "last",
}


class _ViewParser:
    def __init__(self, text: str) -> None:
        self.lexer = Lexer(text)
        self.text = text

    # -- plumbing -------------------------------------------------------------

    def next(self) -> Token:
        return self.lexer.next()

    def peek(self) -> Token:
        return self.lexer.peek()

    def push_back(self, token: Token) -> None:
        self.lexer.push_back(token)

    def expect(self, kind: TokenKind, value: Optional[str] = None) -> Token:
        token = self.next()
        matches = token.value == value or (
            kind is TokenKind.KEYWORD
            and value is not None
            and token.value.upper() == value.upper()
        )
        if token.kind is not kind or (value is not None and not matches):
            raise XQueryError(
                f"expected {value or kind.value}, found {token.value!r} "
                f"at offset {token.position}"
            )
        return token

    def accept(self, kind: TokenKind, value: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        matches = value is None or token.value == value or (
            kind is TokenKind.KEYWORD and token.value.upper() == value.upper()
        )
        if token.kind is kind and matches:
            return self.next()
        return None

    def accept_keyword(self, word: str) -> bool:
        token = self.peek()
        if token.is_keyword(word):
            self.next()
            return True
        return False

    # -- entry ------------------------------------------------------------------

    def parse(self) -> ViewQuery:
        root = self.expect(TokenKind.TAG_OPEN)
        items = self.parse_content_list(stop_tag=root.value)
        self.expect(TokenKind.TAG_CLOSE, root.value)
        token = self.peek()
        if token.kind is not TokenKind.EOF:
            raise XQueryError(
                f"trailing input after </{root.value}> at offset {token.position}"
            )
        return ViewQuery(root_tag=root.value, items=items, source_text=self.text)

    # -- content ------------------------------------------------------------------

    def parse_content_list(self, stop_tag: str) -> list[Content]:
        items: list[Content] = []
        while True:
            token = self.peek()
            if token.kind is TokenKind.TAG_CLOSE and token.value == stop_tag:
                return items
            if token.kind is TokenKind.EOF:
                raise XQueryError(f"missing </{stop_tag}>")
            items.append(self.parse_content())
            # commas between items are optional in the paper's listings
            while self.accept(TokenKind.COMMA):
                pass

    def parse_content(self) -> Content:
        token = self.peek()
        if token.kind is TokenKind.KEYWORD and token.value.upper() in ("FOR", "LET"):
            return self.parse_flwr()
        if token.is_keyword("IF"):
            return self.parse_if()
        if token.kind is TokenKind.TAG_OPEN:
            return self.parse_element_ctor()
        if token.kind is TokenKind.VAR:
            return VarProjection(path=self.parse_var_path())
        if token.kind is TokenKind.IDENT:
            return self.parse_function_call()
        raise XQueryError(
            f"unexpected {token.value!r} in element content at offset "
            f"{token.position}"
        )

    def parse_element_ctor(self) -> ElementCtor:
        tag = self.expect(TokenKind.TAG_OPEN)
        items = self.parse_content_list(stop_tag=tag.value)
        self.expect(TokenKind.TAG_CLOSE, tag.value)
        return ElementCtor(tag=tag.value, items=items)

    # -- FLWR -----------------------------------------------------------------------

    def parse_flwr(self) -> FLWR:
        bindings: list[Binding] = []
        token = self.peek()
        while token.kind is TokenKind.KEYWORD and token.value.upper() in ("FOR", "LET"):
            is_let = token.value.upper() == "LET"
            self.next()
            bindings.append(self.parse_binding(is_let))
            while self.accept(TokenKind.COMMA):
                bindings.append(self.parse_binding(is_let))
            token = self.peek()
        if not bindings:
            raise XQueryError("FLWR without bindings")
        where: list[Predicate] = []
        if self.accept_keyword("WHERE"):
            where = self.parse_predicate_conjunction()
        order_by: Optional[VarPath] = None
        if self.accept_keyword("ORDER"):
            if not self.accept_keyword("BY"):
                raise XQueryError("ORDER must be followed by BY")
            order_by = self.parse_var_path()
        elif self.accept_keyword("SORTBY"):
            if self.accept(TokenKind.LPAREN):
                order_by = self.parse_order_key()
                self.expect(TokenKind.RPAREN)
            else:
                order_by = self.parse_var_path()
        self.expect(TokenKind.KEYWORD, "RETURN")
        self.expect(TokenKind.LBRACE)
        ret = self.parse_content()
        while self.accept(TokenKind.COMMA):
            pass
        self.expect(TokenKind.RBRACE)
        return FLWR(bindings=bindings, where=where, ret=ret, order_by=order_by)

    def parse_order_key(self) -> VarPath:
        token = self.peek()
        if token.kind is TokenKind.VAR:
            return self.parse_var_path()
        # SORTBY (title) — a bare name keys on the constructed element
        name = self.expect(TokenKind.IDENT)
        return VarPath(var="", segments=(name.value,))

    def parse_binding(self, is_let: bool) -> Binding:
        var = self.expect(TokenKind.VAR)
        token = self.next()
        in_like = token.is_keyword("IN") or (
            token.kind is TokenKind.OP and token.value == "="
        )
        if not in_like:
            raise XQueryError(
                f"expected IN or = after ${var.value} at offset {token.position}"
            )
        source = self.parse_source()
        return Binding(var=var.value, source=source, is_let=is_let)

    def parse_source(self) -> Union[DocSource, VarPath]:
        token = self.peek()
        if token.kind is TokenKind.IDENT and token.value == "document":
            self.next()
            self.expect(TokenKind.LPAREN)
            document = self.expect(TokenKind.STRING)
            self.expect(TokenKind.RPAREN)
            segments = self.parse_path_segments()
            return DocSource(document=document.value, path=segments)
        if token.kind is TokenKind.VAR:
            return self.parse_var_path()
        raise XQueryError(
            f"expected document(...) or a variable path at offset {token.position}"
        )

    def parse_path_segments(self) -> tuple[str, ...]:
        segments: list[str] = []
        while self.accept(TokenKind.SLASH):
            name = self.next()
            # tag names may collide with keywords (<order>, <in>, ...)
            if name.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                raise XQueryError(
                    f"expected a path segment at offset {name.position}"
                )
            segments.append(name.value)
        return tuple(segments)

    def parse_var_path(self) -> VarPath:
        var = self.expect(TokenKind.VAR)
        segments: list[str] = []
        text_fn = False
        while self.accept(TokenKind.SLASH):
            name = self.next()
            if name.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                raise XQueryError(
                    f"expected a path segment at offset {name.position}"
                )
            if name.value == "text" and self.accept(TokenKind.LPAREN):
                self.expect(TokenKind.RPAREN)
                text_fn = True
                break
            segments.append(name.value)
        return VarPath(var=var.value, segments=tuple(segments), text_fn=text_fn)

    # -- predicates -------------------------------------------------------------------

    def parse_predicate_conjunction(self) -> list[Predicate]:
        predicates = [self.parse_predicate()]
        while self.accept_keyword("AND"):
            predicates.append(self.parse_predicate())
        return predicates

    def parse_predicate(self) -> Predicate:
        if self.accept(TokenKind.LPAREN):
            inner = self.parse_predicate()
            self.expect(TokenKind.RPAREN)
            return inner
        left = self.parse_operand()
        token = self.next()
        if token.kind is not TokenKind.OP:
            raise XQueryError(
                f"expected a comparison operator at offset {token.position}"
            )
        right = self.parse_operand()
        op = "<>" if token.value == "!=" else token.value
        return Predicate(op=op, left=left, right=right)

    def parse_operand(self):
        token = self.peek()
        if token.kind is TokenKind.VAR:
            return self.parse_var_path()
        if token.kind is TokenKind.STRING:
            self.next()
            return token.value
        if token.kind is TokenKind.NUMBER:
            self.next()
            return _number(token.value)
        if token.kind is TokenKind.IDENT:
            return self.parse_function_call()
        raise XQueryError(f"unexpected operand {token.value!r} at {token.position}")

    # -- functions ----------------------------------------------------------------------

    def parse_function_call(self) -> FunctionCall:
        name = self.expect(TokenKind.IDENT)
        if name.value not in KNOWN_FUNCTIONS:
            raise XQueryError(
                f"unknown function {name.value!r} at offset {name.position}"
            )
        self.expect(TokenKind.LPAREN)
        args: list = []
        if not self.accept(TokenKind.RPAREN):
            args.append(self.parse_function_arg())
            while self.accept(TokenKind.COMMA):
                args.append(self.parse_function_arg())
            self.expect(TokenKind.RPAREN)
        return FunctionCall(name=name.value, args=tuple(args))

    def parse_function_arg(self):
        token = self.peek()
        if token.kind is TokenKind.VAR:
            return self.parse_var_path()
        if token.kind is TokenKind.STRING:
            self.next()
            return token.value
        if token.kind is TokenKind.NUMBER:
            self.next()
            return _number(token.value)
        if token.kind is TokenKind.IDENT:
            return self.parse_function_call()
        raise XQueryError(
            f"unexpected function argument {token.value!r} at {token.position}"
        )

    # -- if/then/else ----------------------------------------------------------------------

    def parse_if(self) -> IfThenElse:
        self.expect(TokenKind.KEYWORD, "IF")
        self.expect(TokenKind.LPAREN)
        condition = self.parse_predicate()
        self.expect(TokenKind.RPAREN)
        self.expect(TokenKind.KEYWORD, "THEN")
        then_item = self.parse_content()
        else_item: Optional[Content] = None
        if self.accept_keyword("ELSE"):
            else_item = self.parse_content()
        return IfThenElse(condition=condition, then_item=then_item, else_item=else_item)


def _number(text: str):
    return float(text) if "." in text else int(text)


def parse_view_query(text: str) -> ViewQuery:
    """Parse a view-definition query into a :class:`ViewQuery`."""
    return _ViewParser(text).parse()
