"""View materialization: evaluate a :class:`ViewQuery` over a database.

This gives the reproduction its ground truth: the rectangle-rule
verifier compares ``u(DEF_V(D))`` (update applied to the materialized
view) against ``DEF_V(U(D))`` (view recomputed over the updated
database), both produced by this evaluator.

Semantics follow the paper's reading of the FLWR subset:

* ``FOR $v IN document("default.xml")/rel/row`` iterates the tuples of
  relation ``rel`` in insertion order;
* multiple bindings iterate their cross product, filtered by the WHERE
  conjunction;
* the RETURN element constructor is emitted once per surviving binding;
* ``$var/attr`` content publishes ``<attr>value</attr>``;
* nested FLWRs see outer bindings (correlated subqueries).

Aggregates / distinct / if-then-else raise UnsupportedFeatureError —
callers use the parsed AST only after ASG generation has accepted it,
but the evaluator guards anyway.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from ..errors import UnsupportedFeatureError, XQueryError
from ..rdb.database import Database
from ..xml.nodes import XMLElement, XMLText
from .ast import (
    Binding,
    Content,
    DocSource,
    ElementCtor,
    FLWR,
    FunctionCall,
    IfThenElse,
    Predicate,
    VarPath,
    VarProjection,
    ViewQuery,
)
from .values import compare_values, render_value

__all__ = ["evaluate_view", "evaluate_predicates"]

Row = Mapping[str, Any]
Env = dict[str, tuple[str, Row]]  # var -> (relation name, row)


def evaluate_view(db: Database, view: ViewQuery) -> XMLElement:
    """Materialize the XML view over *db*."""
    root = XMLElement(view.root_tag)
    for item in view.items:
        _emit(db, item, {}, root)
    return root


def _emit(db: Database, item: Content, env: Env, parent: XMLElement) -> None:
    if isinstance(item, FLWR):
        _emit_flwr(db, item, env, parent)
    elif isinstance(item, ElementCtor):
        node = XMLElement(item.tag)
        parent.append(node)
        for child in item.items:
            _emit(db, child, env, node)
    elif isinstance(item, VarProjection):
        _emit_projection(item, env, parent)
    elif isinstance(item, FunctionCall):
        raise UnsupportedFeatureError(f"{item.name}()")
    elif isinstance(item, IfThenElse):
        raise UnsupportedFeatureError("if/then/else")
    else:  # pragma: no cover - exhaustive over Content
        raise XQueryError(f"cannot evaluate {type(item).__name__}")


def _emit_flwr(db: Database, flwr: FLWR, env: Env, parent: XMLElement) -> None:
    if flwr.order_by is not None:
        raise UnsupportedFeatureError("order by")
    for bound_env in _bind(db, flwr.bindings, 0, dict(env)):
        if evaluate_predicates(flwr.where, bound_env):
            _emit(db, flwr.ret, bound_env, parent)


def _bind(
    db: Database, bindings: list[Binding], index: int, env: Env
) -> Iterator[Env]:
    if index == len(bindings):
        yield env
        return
    binding = bindings[index]
    source = binding.source
    if isinstance(source, DocSource):
        relation = _relation_of(source)
        table = db.table(relation)
        for _, row in table.scan():
            env[binding.var] = (relation, row)
            yield from _bind(db, bindings, index + 1, env)
        env.pop(binding.var, None)
        return
    if isinstance(source, VarPath):
        # alias binding: $b = $a (no navigation into relational rows)
        if source.segments or source.text_fn:
            raise UnsupportedFeatureError("navigation into a bound variable")
        if source.var not in env:
            raise XQueryError(f"unbound variable ${source.var}")
        env[binding.var] = env[source.var]
        yield from _bind(db, bindings, index + 1, env)
        env.pop(binding.var, None)
        return
    raise XQueryError(f"unsupported binding source {source!r}")


def _relation_of(source: DocSource) -> str:
    if len(source.path) != 2 or source.path[1] != "row":
        raise XQueryError(
            f"view sources must navigate the default view as "
            f"document(...)/relation/row, got {source}"
        )
    return source.path[0]


def _lookup(path: VarPath, env: Env) -> Any:
    if path.var not in env:
        raise XQueryError(f"unbound variable ${path.var}")
    relation, row = env[path.var]
    attribute = path.attribute
    if attribute is None:
        raise XQueryError(
            f"path {path} must project exactly one relational attribute"
        )
    if attribute not in row:
        raise XQueryError(f"relation {relation!r} has no attribute {attribute!r}")
    return row[attribute]


def _operand_value(operand, env: Env) -> Any:
    if isinstance(operand, VarPath):
        return _lookup(operand, env)
    if isinstance(operand, FunctionCall):
        raise UnsupportedFeatureError(f"{operand.name}()")
    return operand


def evaluate_predicates(predicates: list[Predicate], env: Env) -> bool:
    """True iff every predicate evaluates to true under *env*."""
    for predicate in predicates:
        left = _operand_value(predicate.left, env)
        right = _operand_value(predicate.right, env)
        if compare_values(predicate.op, left, right) is not True:
            return False
    return True


def _emit_projection(item: VarProjection, env: Env, parent: XMLElement) -> None:
    path = item.path
    value = _lookup(path, env)
    assert path.attribute is not None
    if path.text_fn:
        parent.append(XMLText(render_value(value)))
        return
    node = XMLElement(path.attribute)
    text = render_value(value)
    if text:
        node.append(XMLText(text))
    parent.append(node)
