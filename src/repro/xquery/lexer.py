"""Streaming lexer shared by the view-query and update parsers.

The language mixes XML-ish element constructors (``<book>``, ``</book>``)
with FLWR expression syntax (``FOR $book IN document(...)``).  ``<`` is
disambiguated lexically: followed by a letter or ``/`` it starts a tag,
otherwise it is the less-than operator (``$book/price<50.00``).

The lexer is *streaming* (pull-based with pushback) because the update
parser needs to grab raw balanced XML fragments out of the middle of the
token stream (``INSERT <book>...</book>``), which is easiest when the
lexer owns a single cursor into the source text.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Optional

from ..errors import XQueryError

__all__ = ["TokenKind", "Token", "Lexer", "KEYWORDS"]


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    VAR = "var"          # $book  (value stored without the $)
    STRING = "string"
    NUMBER = "number"
    OP = "op"            # = != <> < <= > >=
    TAG_OPEN = "tag_open"    # <book>
    TAG_CLOSE = "tag_close"  # </book>
    LBRACE = "lbrace"
    RBRACE = "rbrace"
    LPAREN = "lparen"
    RPAREN = "rparen"
    COMMA = "comma"
    SLASH = "slash"
    EOF = "eof"


KEYWORDS = {
    "FOR", "LET", "IN", "WHERE", "RETURN", "UPDATE", "INSERT", "DELETE",
    "REPLACE", "WITH", "AND", "OR", "NOT", "IF", "THEN", "ELSE",
    "ORDER", "BY", "SORTBY",
}

_NAME = re.compile(r"[A-Za-z_][\w.\-]*")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str                  # original spelling (case preserved)
    position: int

    def is_keyword(self, word: str) -> bool:
        return (
            self.kind is TokenKind.KEYWORD and self.value.upper() == word.upper()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.value!r})"


class Lexer:
    """Pull-based tokenizer with single-token pushback."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0
        self._pushback: list[Token] = []

    # -- public API -----------------------------------------------------------

    def next(self) -> Token:
        if self._pushback:
            return self._pushback.pop()
        return self._scan()

    def peek(self) -> Token:
        token = self.next()
        self.push_back(token)
        return token

    def push_back(self, token: Token) -> None:
        self._pushback.append(token)

    def error(self, message: str, position: Optional[int] = None) -> XQueryError:
        where = self.position if position is None else position
        context = self.text[max(0, where - 20):where + 20].replace("\n", " ")
        return XQueryError(f"{message} at offset {where} (near ...{context}...)")

    def scan_raw_xml_fragment(self) -> str:
        """Capture a balanced XML fragment starting at the next ``<``.

        Used by the update parser for INSERT/REPLACE bodies, whose
        content is literal XML (possibly containing quoted strings and
        free text).  Any tokens pushed back are discarded — callers must
        only invoke this when the next token is known to be a TAG_OPEN
        that has been pushed back or not yet consumed.
        """
        if self._pushback:
            # rewind the cursor to the start of the pushed-back token
            first = min(token.position for token in self._pushback)
            self.position = first
            self._pushback.clear()
        self._skip_space()
        start = self.position
        if self.position >= len(self.text) or self.text[self.position] != "<":
            raise self.error("expected an XML fragment")
        depth = 0
        i = self.position
        n = len(self.text)
        while i < n:
            if self.text[i] == "<":
                if self.text.startswith("</", i):
                    end = self.text.find(">", i)
                    if end == -1:
                        raise self.error("unterminated closing tag", i)
                    depth -= 1
                    i = end + 1
                    if depth == 0:
                        self.position = i
                        return self.text[start:i]
                    continue
                end = self.text.find(">", i)
                if end == -1:
                    raise self.error("unterminated tag", i)
                if self.text[end - 1] == "/":  # self-closing
                    i = end + 1
                    if depth == 0:
                        self.position = i
                        return self.text[start:i]
                    continue
                depth += 1
                i = end + 1
                continue
            i += 1
        raise self.error("unbalanced XML fragment", start)

    # -- scanning -------------------------------------------------------------

    def _skip_space(self) -> None:
        text, n = self.text, len(self.text)
        while self.position < n:
            if text[self.position].isspace():
                self.position += 1
            elif text.startswith("(:", self.position):  # XQuery comment
                end = text.find(":)", self.position + 2)
                if end == -1:
                    raise self.error("unterminated comment")
                self.position = end + 2
            else:
                return

    def _scan(self) -> Token:
        self._skip_space()
        text, n = self.text, len(self.text)
        if self.position >= n:
            return Token(TokenKind.EOF, "", n)
        start = self.position
        ch = text[start]

        if ch == "<":
            nxt = text[start + 1] if start + 1 < n else ""
            if nxt == "/":
                match = _NAME.match(text, start + 2)
                if not match:
                    raise self.error("malformed closing tag", start)
                end = match.end()
                self._expect_char(end, ">")
                self.position = end + 1
                return Token(TokenKind.TAG_CLOSE, match.group(0), start)
            if nxt.isalpha() or nxt == "_":
                match = _NAME.match(text, start + 1)
                assert match is not None
                end = match.end()
                self._expect_char(end, ">")
                self.position = end + 1
                return Token(TokenKind.TAG_OPEN, match.group(0), start)
            # otherwise it's a comparison operator
            if nxt == "=":
                self.position = start + 2
                return Token(TokenKind.OP, "<=", start)
            if nxt == ">":
                self.position = start + 2
                return Token(TokenKind.OP, "<>", start)
            self.position = start + 1
            return Token(TokenKind.OP, "<", start)

        if ch == ">":
            if text.startswith(">=", start):
                self.position = start + 2
                return Token(TokenKind.OP, ">=", start)
            self.position = start + 1
            return Token(TokenKind.OP, ">", start)
        if ch == "=":
            self.position = start + 1
            return Token(TokenKind.OP, "=", start)
        if ch == "!":
            if text.startswith("!=", start):
                self.position = start + 2
                return Token(TokenKind.OP, "!=", start)
            raise self.error("unexpected '!'", start)

        if ch == "$":
            match = _NAME.match(text, start + 1)
            if not match:
                raise self.error("malformed variable", start)
            self.position = match.end()
            return Token(TokenKind.VAR, match.group(0), start)

        if ch in ("'", '"'):
            # normalize curly quotes seen in the paper's listings
            end = start + 1
            while end < n and text[end] != ch:
                end += 1
            if end >= n:
                raise self.error("unterminated string", start)
            self.position = end + 1
            return Token(TokenKind.STRING, text[start + 1:end], start)
        if ch in ("“", "”"):  # curly double quotes
            end = start + 1
            while end < n and text[end] not in ("“", "”", '"'):
                end += 1
            if end >= n:
                raise self.error("unterminated string", start)
            self.position = end + 1
            return Token(TokenKind.STRING, text[start + 1:end], start)

        if ch.isdigit() or (ch == "." and start + 1 < n and text[start + 1].isdigit()):
            end = start
            seen_dot = False
            while end < n and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    if end + 1 >= n or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            self.position = end
            return Token(TokenKind.NUMBER, text[start:end], start)

        if ch.isalpha() or ch == "_":
            match = _NAME.match(text, start)
            assert match is not None
            word = match.group(0)
            self.position = match.end()
            if word.upper() in KEYWORDS:
                return Token(TokenKind.KEYWORD, word, start)
            return Token(TokenKind.IDENT, word, start)

        simple = {
            "{": TokenKind.LBRACE,
            "}": TokenKind.RBRACE,
            "(": TokenKind.LPAREN,
            ")": TokenKind.RPAREN,
            ",": TokenKind.COMMA,
            "/": TokenKind.SLASH,
        }
        if ch in simple:
            self.position = start + 1
            return Token(simple[ch], ch, start)
        raise self.error(f"unexpected character {ch!r}", start)

    def _expect_char(self, index: int, expected: str) -> None:
        if index >= len(self.text) or self.text[index] != expected:
            raise self.error(f"expected {expected!r}", index)
