"""AST for the view-update language (Tatarinov et al. [29] syntax).

An update statement binds variables over the *view* document, filters
them with a WHERE conjunction, and applies one or more operations at an
update target::

    FOR $root IN document("BookView.xml"),
        $book IN $root/book
    WHERE $book/bookid/text() = "98001"
    UPDATE $root { DELETE $book/publisher }

Replace is modelled as its own operation but U-Filter checks it as a
deletion followed by an insertion (paper footnote 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..xml.nodes import XMLElement
from .ast import Binding, Predicate, VarPath

__all__ = ["InsertOp", "DeleteOp", "ReplaceOp", "UpdateOp", "ViewUpdate"]


@dataclass
class InsertOp:
    """``INSERT <fragment>`` — appends the literal fragment to the target."""

    fragment: XMLElement

    kind = "insert"

    def __str__(self) -> str:
        from ..xml.serializer import serialize

        return f"INSERT {serialize(self.fragment, indent=0)}"


@dataclass
class DeleteOp:
    """``DELETE $var/path`` — removes matched nodes (or their text())."""

    path: VarPath

    kind = "delete"

    def __str__(self) -> str:
        return f"DELETE {self.path}"


@dataclass
class ReplaceOp:
    """``REPLACE $var/path WITH <fragment>``."""

    path: VarPath
    fragment: XMLElement

    kind = "replace"

    def __str__(self) -> str:
        from ..xml.serializer import serialize

        return f"REPLACE {self.path} WITH {serialize(self.fragment, indent=0)}"


UpdateOp = Union[InsertOp, DeleteOp, ReplaceOp]


@dataclass
class ViewUpdate:
    """A parsed view-update statement."""

    bindings: list[Binding]
    where: list[Predicate]
    target_var: str
    ops: list[UpdateOp]
    source_text: str = ""
    #: optional label (u1, u2, ... in the paper's figures)
    name: str = ""

    @property
    def kind(self) -> str:
        """insert / delete / replace, or "mixed" for multi-op updates."""
        kinds = {op.kind for op in self.ops}
        if len(kinds) == 1:
            return next(iter(kinds))
        return "mixed"

    def binding_for(self, var: str) -> Binding:
        for binding in self.bindings:
            if binding.var == var:
                return binding
        raise KeyError(f"update binds no variable ${var}")

    def __str__(self) -> str:
        fors = ", ".join(str(binding) for binding in self.bindings)
        where = (
            " WHERE " + " AND ".join(str(p) for p in self.where)
            if self.where
            else ""
        )
        ops = ", ".join(str(op) for op in self.ops)
        return f"FOR {fors}{where} UPDATE ${self.target_var} {{ {ops} }}"
