"""Value rendering and comparison helpers shared across the substrate.

The view evaluator turns relational values into XML text; the update
applier compares XML text back against typed literals.  Keeping both
directions here guarantees the rectangle-rule verifier sees consistent
lexical forms.
"""

from __future__ import annotations

import datetime
from typing import Any, Optional

from ..rdb.expr import COMPARATORS

__all__ = ["render_value", "compare_values", "coerce_pair"]


def render_value(value: Any) -> str:
    """Canonical XML text for a relational value."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, datetime.date):
        if value.month == 1 and value.day == 1:
            return str(value.year)
        return value.isoformat()
    return str(value)


def coerce_pair(left: Any, right: Any) -> tuple[Any, Any]:
    """Coerce two values into a comparable pair.

    Handles the mixes the workloads produce: XML text vs numeric
    literal, DATE vs bare year, int vs float.
    """
    if isinstance(left, datetime.date) and isinstance(right, (int, float)):
        return left.year, right
    if isinstance(right, datetime.date) and isinstance(left, (int, float)):
        return left, right.year
    if isinstance(left, datetime.date) and isinstance(right, str):
        return render_value(left), right
    if isinstance(right, datetime.date) and isinstance(left, str):
        return left, render_value(right)
    if isinstance(left, str) and isinstance(right, (int, float)) and not isinstance(right, bool):
        try:
            return float(left), float(right)
        except ValueError:
            return left, render_value(right)
    if isinstance(right, str) and isinstance(left, (int, float)) and not isinstance(left, bool):
        try:
            return float(left), float(right)
        except ValueError:
            return render_value(left), right
    return left, right


def compare_values(op: str, left: Any, right: Any) -> Optional[bool]:
    """Three-valued comparison with cross-type coercion."""
    if left is None or right is None:
        return None
    a, b = coerce_pair(left, right)
    try:
        return COMPARATORS[op](a, b)
    except TypeError:
        return COMPARATORS[op](str(a), str(b))
