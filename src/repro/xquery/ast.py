"""AST for the view-query language (the FLWR subset of Fig. 3a).

The grammar mirrors what the view ASG of the paper can model — with the
twist that *unsupported* constructs (``count()``, ``distinct()``,
``if/then/else``, ``order by`` ...) still parse into explicit AST nodes.
The ASG generator rejects them with
:class:`repro.errors.UnsupportedFeatureError`, which is exactly how the
Fig. 12 expressiveness audit is produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

__all__ = [
    "DocSource",
    "VarPath",
    "Binding",
    "Predicate",
    "FunctionCall",
    "VarProjection",
    "ElementCtor",
    "FLWR",
    "IfThenElse",
    "ViewQuery",
    "Content",
    "Operand",
]


@dataclass(frozen=True)
class DocSource:
    """``document("default.xml")/book/row`` — a relation-backed source.

    For sources over the default XML view, ``path`` is
    ``(relation, "row")``; the update language also binds
    ``document("BookView.xml")`` (possibly with a path into the view).
    """

    document: str
    path: tuple[str, ...] = ()

    @property
    def relation(self) -> Optional[str]:
        """The base relation named by a default-view source."""
        if len(self.path) >= 1:
            return self.path[0]
        return None

    def __str__(self) -> str:
        suffix = "".join(f"/{segment}" for segment in self.path)
        return f'document("{self.document}"){suffix}'


@dataclass(frozen=True)
class VarPath:
    """``$book/bookid`` or ``$book/bookid/text()``."""

    var: str
    segments: tuple[str, ...] = ()
    text_fn: bool = False

    @property
    def attribute(self) -> Optional[str]:
        """The relational attribute a one-step path projects."""
        if len(self.segments) == 1:
            return self.segments[0]
        return None

    def __str__(self) -> str:
        path = f"${self.var}" + "".join(f"/{segment}" for segment in self.segments)
        if self.text_fn:
            path += "/text()"
        return path


Operand = Union[VarPath, "FunctionCall", Any]  # Any = python literal


@dataclass(frozen=True)
class Binding:
    """One FOR/LET binding: ``$var IN source``."""

    var: str
    source: Union[DocSource, VarPath]
    is_let: bool = False

    def __str__(self) -> str:
        return f"${self.var} IN {self.source}"


@dataclass(frozen=True)
class Predicate:
    """A comparison ``left op right`` from a WHERE clause."""

    op: str
    left: Operand
    right: Operand

    def is_correlation(self) -> bool:
        """True for var-to-var predicates (the paper's correlation kind)."""
        return isinstance(self.left, VarPath) and isinstance(self.right, VarPath)

    def __str__(self) -> str:
        return f"{_operand_str(self.left)} {self.op} {_operand_str(self.right)}"


def _operand_str(operand: Operand) -> str:
    if isinstance(operand, (VarPath, FunctionCall)):
        return str(operand)
    if isinstance(operand, str):
        return f'"{operand}"'
    return repr(operand)


@dataclass(frozen=True)
class FunctionCall:
    """A built-in function application — count(), max(), distinct(), ...

    These parse but are *not expressible* in a view ASG; the generator
    raises UnsupportedFeatureError naming :attr:`name`.
    """

    name: str
    args: tuple[Any, ...] = ()

    def __str__(self) -> str:
        rendered = ", ".join(_operand_str(a) for a in self.args)
        return f"{self.name}({rendered})"


@dataclass(frozen=True)
class VarProjection:
    """A path appearing as content: publishes ``<attr>value</attr>``."""

    path: VarPath

    def __str__(self) -> str:
        return str(self.path)


@dataclass
class ElementCtor:
    """``<tag> content, ... </tag>``."""

    tag: str
    items: list["Content"] = field(default_factory=list)

    def __str__(self) -> str:
        inner = ", ".join(str(item) for item in self.items)
        return f"<{self.tag}>{inner}</{self.tag}>"


@dataclass
class FLWR:
    """A FOR ... WHERE ... RETURN {...} block."""

    bindings: list[Binding]
    where: list[Predicate]
    ret: "Content"
    #: set when the query carries ORDER BY / SORTBY (unsupported by ASG)
    order_by: Optional[VarPath] = None

    def __str__(self) -> str:
        fors = ", ".join(str(binding) for binding in self.bindings)
        where = (
            " WHERE " + " AND ".join(str(p) for p in self.where)
            if self.where
            else ""
        )
        return f"FOR {fors}{where} RETURN {{{self.ret}}}"


@dataclass
class IfThenElse:
    """``if (cond) then content else content`` — unsupported by the ASG."""

    condition: Predicate
    then_item: "Content"
    else_item: Optional["Content"] = None

    def __str__(self) -> str:
        tail = f" else {self.else_item}" if self.else_item is not None else ""
        return f"if ({self.condition}) then {self.then_item}{tail}"


Content = Union[FLWR, ElementCtor, VarProjection, FunctionCall, IfThenElse]


@dataclass
class ViewQuery:
    """A full view definition: a root tag wrapping top-level content."""

    root_tag: str
    items: list[Content] = field(default_factory=list)
    #: original query text, kept for reports
    source_text: str = ""

    def flwrs(self) -> list[FLWR]:
        """The top-level FLWR blocks of the view."""
        return [item for item in self.items if isinstance(item, FLWR)]

    def __str__(self) -> str:
        inner = ",\n".join(str(item) for item in self.items)
        return f"<{self.root_tag}>\n{inner}\n</{self.root_tag}>"
