"""View-query and update language substrate.

* :func:`parse_view_query` — FLWR view definitions (Fig. 3a)
* :func:`evaluate_view` — materialize a view over a Database
* :func:`parse_view_update` — update statements (Fig. 4 / Fig. 10)
* :func:`apply_view_update` — apply an update to a materialized view
"""

from .ast import (
    Binding,
    Content,
    DocSource,
    ElementCtor,
    FLWR,
    FunctionCall,
    IfThenElse,
    Predicate,
    VarPath,
    VarProjection,
    ViewQuery,
)
from .evaluator import evaluate_view
from .parser import parse_view_query
from .update_apply import UpdateApplication, apply_view_update, resolve_bindings
from .update_ast import DeleteOp, InsertOp, ReplaceOp, UpdateOp, ViewUpdate
from .update_parser import parse_view_update
from .values import compare_values, render_value

__all__ = [
    "apply_view_update",
    "Binding",
    "compare_values",
    "Content",
    "DeleteOp",
    "DocSource",
    "ElementCtor",
    "evaluate_view",
    "FLWR",
    "FunctionCall",
    "IfThenElse",
    "InsertOp",
    "parse_view_query",
    "parse_view_update",
    "Predicate",
    "render_value",
    "ReplaceOp",
    "resolve_bindings",
    "UpdateApplication",
    "UpdateOp",
    "VarPath",
    "VarProjection",
    "ViewQuery",
    "ViewUpdate",
]
