"""Apply a view update to a *materialized* view document.

This computes ``u(DEF_V(D))`` — the left/top edge of the paper's
rectangle diagram (Fig. 7).  The checker itself never needs it, but the
rectangle-rule verifier (:mod:`repro.core.verify`) and the integration
tests compare it against ``DEF_V(U(D))`` to prove end-to-end that
accepted translations are side-effect free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import UpdateSyntaxError, XQueryError
from ..xml.nodes import XMLElement, XMLText
from .ast import Binding, DocSource, Predicate, VarPath
from .update_ast import DeleteOp, InsertOp, ReplaceOp, ViewUpdate
from .values import compare_values

__all__ = ["apply_view_update", "UpdateApplication", "resolve_bindings"]

Env = dict[str, XMLElement]


@dataclass
class UpdateApplication:
    """What happened when the update was applied to the view tree."""

    matched_bindings: int = 0
    inserted: list[XMLElement] = field(default_factory=list)
    deleted: list[XMLElement] = field(default_factory=list)
    replaced: list[XMLElement] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.inserted or self.deleted or self.replaced)


def _navigate(node: XMLElement, segments: tuple[str, ...]) -> list[XMLElement]:
    current = [node]
    for segment in segments:
        current = [
            child for element in current for child in element.child_elements(segment)
        ]
    return current


def _path_nodes(path: VarPath, env: Env) -> list[XMLElement]:
    if path.var not in env:
        raise XQueryError(f"unbound variable ${path.var}")
    return _navigate(env[path.var], path.segments)


def _operand_value(operand, env: Env):
    if isinstance(operand, VarPath):
        nodes = _path_nodes(operand, env)
        if not nodes:
            return None
        # text() or element content both compare through the text value
        return nodes[0].text_content().strip()
    return operand


def _predicates_hold(predicates: list[Predicate], env: Env) -> bool:
    for predicate in predicates:
        left = _operand_value(predicate.left, env)
        right = _operand_value(predicate.right, env)
        if compare_values(predicate.op, left, right) is not True:
            return False
    return True


def resolve_bindings(
    root: XMLElement, bindings: list[Binding]
) -> Iterator[Env]:
    """Yield every environment produced by the FOR clause over *root*."""

    def recurse(index: int, env: Env) -> Iterator[Env]:
        if index == len(bindings):
            yield dict(env)
            return
        binding = bindings[index]
        source = binding.source
        if isinstance(source, DocSource):
            nodes = _navigate(root, source.path)
        elif isinstance(source, VarPath):
            if source.text_fn:
                raise UpdateSyntaxError("cannot bind a variable to text()")
            if source.var not in env:
                raise XQueryError(f"unbound variable ${source.var}")
            nodes = _navigate(env[source.var], source.segments)
        else:  # pragma: no cover - exhaustive over source types
            raise UpdateSyntaxError(f"unsupported binding source {source!r}")
        for node in nodes:
            env[binding.var] = node
            yield from recurse(index + 1, env)
        env.pop(binding.var, None)

    yield from recurse(0, {})


def apply_view_update(root: XMLElement, update: ViewUpdate) -> UpdateApplication:
    """Apply *update* to the view tree rooted at *root*, in place."""
    result = UpdateApplication()
    for env in resolve_bindings(root, update.bindings):
        if not _predicates_hold(update.where, env):
            continue
        if update.target_var not in env:
            raise XQueryError(f"unbound update target ${update.target_var}")
        result.matched_bindings += 1
        target = env[update.target_var]
        for op in update.ops:
            if isinstance(op, InsertOp):
                clone = op.fragment.clone()
                target.append(clone)
                result.inserted.append(clone)
            elif isinstance(op, DeleteOp):
                _apply_delete(op, env, result)
            elif isinstance(op, ReplaceOp):
                _apply_replace(op, env, result)
            else:  # pragma: no cover - exhaustive over UpdateOp
                raise UpdateSyntaxError(f"unsupported operation {op!r}")
    return result


def _apply_delete(op: DeleteOp, env: Env, result: UpdateApplication) -> None:
    nodes = _path_nodes(op.path, env)
    if op.path.text_fn:
        for node in nodes:
            removed = [c for c in node.children if isinstance(c, XMLText)]
            for child in removed:
                node.children.remove(child)
            if removed:
                result.deleted.append(node)
        return
    for node in nodes:
        if node.parent is not None:
            node.detach()
            result.deleted.append(node)


def _apply_replace(op: ReplaceOp, env: Env, result: UpdateApplication) -> None:
    nodes = _path_nodes(op.path, env)
    for node in nodes:
        if node.parent is None:
            continue
        replacement = op.fragment.clone()
        node.parent.replace(node, replacement)
        result.replaced.append(replacement)
