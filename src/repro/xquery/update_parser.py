"""Parser for view-update statements.

INSERT / REPLACE bodies are literal XML: the parser asks the lexer for
the raw balanced fragment and hands it to the XML parser.  Text content
that the paper writes quoted (``<bookid>"98004"</bookid>``) is
unquoted, and whitespace-only text (``<title> </title>``) becomes the
empty string — both normalizations match how the paper's update
validation step reads the fragments.
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import UpdateSyntaxError
from ..xml.nodes import XMLElement, XMLText
from ..xml.parser import parse_xml
from .ast import Binding, DocSource, Predicate, VarPath
from .lexer import Lexer, Token, TokenKind
from .update_ast import DeleteOp, InsertOp, ReplaceOp, UpdateOp, ViewUpdate

__all__ = ["parse_view_update"]

_QUOTES = ('"', "'", "“", "”")


class _UpdateParser:
    def __init__(self, text: str) -> None:
        self.lexer = Lexer(text)
        self.text = text

    # -- plumbing (mirrors the view parser) ------------------------------------

    def next(self) -> Token:
        return self.lexer.next()

    def peek(self) -> Token:
        return self.lexer.peek()

    def expect(self, kind: TokenKind, value: Optional[str] = None) -> Token:
        token = self.next()
        matches = token.value == value or (
            kind is TokenKind.KEYWORD
            and value is not None
            and token.value.upper() == value.upper()
        )
        if token.kind is not kind or (value is not None and not matches):
            raise UpdateSyntaxError(
                f"expected {value or kind.value}, found {token.value!r} "
                f"at offset {token.position}"
            )
        return token

    def accept(self, kind: TokenKind, value: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        matches = value is None or token.value == value or (
            kind is TokenKind.KEYWORD and token.value.upper() == value.upper()
        )
        if token.kind is kind and matches:
            return self.next()
        return None

    def accept_keyword(self, word: str) -> bool:
        token = self.peek()
        if token.is_keyword(word):
            self.next()
            return True
        return False

    # -- grammar -------------------------------------------------------------------

    def parse(self) -> ViewUpdate:
        self.expect(TokenKind.KEYWORD, "FOR")
        bindings = [self.parse_binding()]
        while self.accept(TokenKind.COMMA):
            bindings.append(self.parse_binding())
        where: list[Predicate] = []
        if self.accept_keyword("WHERE"):
            where.append(self.parse_predicate())
            while self.accept_keyword("AND"):
                where.append(self.parse_predicate())
        self.expect(TokenKind.KEYWORD, "UPDATE")
        target = self.expect(TokenKind.VAR)
        self.expect(TokenKind.LBRACE)
        ops = [self.parse_op()]
        while self.accept(TokenKind.COMMA):
            ops.append(self.parse_op())
        self.expect(TokenKind.RBRACE)
        token = self.peek()
        if token.kind is not TokenKind.EOF:
            raise UpdateSyntaxError(
                f"trailing input after update at offset {token.position}"
            )
        return ViewUpdate(
            bindings=bindings,
            where=where,
            target_var=target.value,
            ops=ops,
            source_text=self.text,
        )

    def parse_binding(self) -> Binding:
        var = self.expect(TokenKind.VAR)
        token = self.next()
        in_like = token.is_keyword("IN") or (
            token.kind is TokenKind.OP and token.value == "="
        )
        if not in_like:
            raise UpdateSyntaxError(
                f"expected IN or = after ${var.value} at offset {token.position}"
            )
        source = self.parse_source()
        return Binding(var=var.value, source=source)

    def parse_source(self) -> Union[DocSource, VarPath]:
        token = self.peek()
        if token.kind is TokenKind.IDENT and token.value == "document":
            self.next()
            self.expect(TokenKind.LPAREN)
            document = self.expect(TokenKind.STRING)
            self.expect(TokenKind.RPAREN)
            segments: list[str] = []
            while self.accept(TokenKind.SLASH):
                name = self.next()
                if name.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                    raise UpdateSyntaxError(
                        f"expected a path segment at offset {name.position}"
                    )
                segments.append(name.value)
            return DocSource(document=document.value, path=tuple(segments))
        if token.kind is TokenKind.VAR:
            return self.parse_var_path()
        raise UpdateSyntaxError(
            f"expected document(...) or a variable path at offset {token.position}"
        )

    def parse_var_path(self) -> VarPath:
        var = self.expect(TokenKind.VAR)
        segments: list[str] = []
        text_fn = False
        while self.accept(TokenKind.SLASH):
            name = self.next()
            # tag names may collide with keywords (<order>, <in>, ...)
            if name.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                raise UpdateSyntaxError(
                    f"expected a path segment at offset {name.position}"
                )
            if name.value == "text" and self.accept(TokenKind.LPAREN):
                self.expect(TokenKind.RPAREN)
                text_fn = True
                break
            segments.append(name.value)
        return VarPath(var=var.value, segments=tuple(segments), text_fn=text_fn)

    def parse_predicate(self) -> Predicate:
        if self.accept(TokenKind.LPAREN):
            inner = self.parse_predicate()
            self.expect(TokenKind.RPAREN)
            return inner
        left = self.parse_operand()
        token = self.next()
        if token.kind is not TokenKind.OP:
            raise UpdateSyntaxError(
                f"expected a comparison operator at offset {token.position}"
            )
        right = self.parse_operand()
        op = "<>" if token.value == "!=" else token.value
        return Predicate(op=op, left=left, right=right)

    def parse_operand(self):
        token = self.peek()
        if token.kind is TokenKind.VAR:
            return self.parse_var_path()
        if token.kind is TokenKind.STRING:
            self.next()
            return token.value.strip()
        if token.kind is TokenKind.NUMBER:
            self.next()
            return float(token.value) if "." in token.value else int(token.value)
        raise UpdateSyntaxError(
            f"unexpected operand {token.value!r} at offset {token.position}"
        )

    def parse_op(self) -> UpdateOp:
        if self.accept_keyword("INSERT"):
            return InsertOp(fragment=self.parse_fragment())
        if self.accept_keyword("DELETE"):
            return DeleteOp(path=self.parse_var_path())
        if self.accept_keyword("REPLACE"):
            path = self.parse_var_path()
            self.expect(TokenKind.KEYWORD, "WITH")
            return ReplaceOp(path=path, fragment=self.parse_fragment())
        token = self.peek()
        raise UpdateSyntaxError(
            f"expected INSERT, DELETE or REPLACE at offset {token.position}"
        )

    def parse_fragment(self) -> XMLElement:
        raw = self.lexer.scan_raw_xml_fragment()
        fragment = parse_xml(raw)
        _normalize_fragment(fragment)
        return fragment


def _normalize_fragment(node: XMLElement) -> None:
    """Unquote and trim literal text content, in place."""
    for child in list(node.children):
        if isinstance(child, XMLText):
            value = child.value.strip()
            if len(value) >= 2 and value[0] in _QUOTES and value[-1] in _QUOTES:
                value = value[1:-1]
            if value:
                child.value = value
            else:
                node.children.remove(child)
        elif isinstance(child, XMLElement):
            _normalize_fragment(child)


def parse_view_update(text: str, name: str = "") -> ViewUpdate:
    """Parse a view-update statement; *name* labels it (u1, u2, ...)."""
    update = _UpdateParser(text).parse()
    update.name = name
    return update
