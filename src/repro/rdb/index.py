"""Hash indexes over table columns.

The engine builds an index for every PRIMARY KEY, UNIQUE constraint and
FOREIGN KEY column list, matching the paper's observation (Section 7.2)
that "Oracle builds indices over the primary keys and foreign keys,
which is used by the Join condition in the hybrid strategy".  The
*outside* strategy's joins over materialized probe results have no such
indexes — that asymmetry is what Fig. 16 measures.

NULL handling follows SQL: an index entry is only maintained when every
indexed column is non-NULL, and uniqueness is not enforced across
entries containing NULL.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional

from ..errors import DatabaseError
from .faults import NULL_INJECTOR, FaultInjector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (table -> index)
    from .table import Table

__all__ = ["HashIndex"]

Key = tuple[Any, ...]


class HashIndex:
    """A (possibly unique) hash index over one or more columns."""

    #: fault-injection registry; the owning Database replaces this with
    #: its own armed instance (standalone indexes keep the shared no-op)
    faults: FaultInjector = NULL_INJECTOR

    def __init__(
        self,
        name: str,
        relation_name: str,
        columns: tuple[str, ...],
        unique: bool = False,
    ) -> None:
        if not columns:
            raise DatabaseError("index needs at least one column")
        self.name = name
        self.relation_name = relation_name
        self.columns = columns
        self.unique = unique
        #: buckets are insertion-ordered (dict keys) so probes can iterate
        #: them deterministically without re-sorting per lookup
        self._entries: dict[Key, dict[int, None]] = {}
        #: incremental entry count — ``len()`` and ``average_bucket()``
        #: are planner-estimate hot paths and must not sum every bucket
        self._size = 0
        #: probe counter — used by benchmarks/tests to show index usage
        self.lookups = 0

    # -- key helpers ---------------------------------------------------------

    def key_of(self, row: Mapping[str, Any]) -> Optional[Key]:
        """Extract the index key; None when any component is NULL."""
        key = tuple(row.get(column) for column in self.columns)
        if any(component is None for component in key):
            return None
        return key

    # -- maintenance ---------------------------------------------------------

    def add(self, rowid: int, row: Mapping[str, Any]) -> None:
        self.faults.hit("index.add", self.relation_name)
        key = self.key_of(row)
        if key is None:
            return
        bucket = self._entries.setdefault(key, {})
        if rowid not in bucket:
            bucket[rowid] = None
            self._size += 1

    def remove(self, rowid: int, row: Mapping[str, Any]) -> None:
        self.faults.hit("index.remove", self.relation_name)
        key = self.key_of(row)
        if key is None:
            return
        bucket = self._entries.get(key)
        if bucket is not None and rowid in bucket:
            del bucket[rowid]
            self._size -= 1
            if not bucket:
                del self._entries[key]

    def entries(self) -> dict[Key, set[int]]:
        """A snapshot of every bucket (for integrity audits)."""
        return {key: set(bucket) for key, bucket in self._entries.items()}

    def counted_size(self) -> int:
        """Entry count recomputed from the buckets (audits the
        incremental ``_size`` counter)."""
        return sum(len(bucket) for bucket in self._entries.values())

    def rebuild(self, table: "Table") -> None:
        """Discard every bucket and re-add the table's current rows.

        Crash recovery calls this instead of trusting possibly-torn
        incremental maintenance: after undo replay, the table is the
        single source of truth and the index is derived state.
        """
        self._entries.clear()
        self._size = 0
        for rowid, row in table.scan():
            self.add(rowid, row)

    def would_conflict(self, row: Mapping[str, Any], ignore: Optional[int] = None) -> bool:
        """True iff inserting *row* would violate a unique index."""
        if not self.unique:
            return False
        key = self.key_of(row)
        if key is None:
            return False
        bucket = self._entries.get(key, ())
        return any(rowid != ignore for rowid in bucket)

    # -- probing -------------------------------------------------------------

    def lookup(self, key: Iterable[Any]) -> set[int]:
        """Rowids matching *key* exactly (empty set when absent)."""
        self.lookups += 1
        key = tuple(key)
        if any(component is None for component in key):
            return set()
        return set(self._entries.get(key, ()))

    def lookup_rowids(self, key: Iterable[Any]) -> tuple[int, ...]:
        """Like :meth:`lookup` but returns the bucket in its stable
        insertion order — no per-probe set copy or re-sort."""
        self.lookups += 1
        key = tuple(key)
        if any(component is None for component in key):
            return ()
        bucket = self._entries.get(key)
        return tuple(bucket) if bucket else ()

    def average_bucket(self) -> float:
        """Mean rowids per distinct key — the optimizer's estimate of how
        many rows one probe of this index emits."""
        if not self._entries:
            return 0.0
        return self._size / len(self._entries)

    def distinct_keys(self) -> int:
        """Number of distinct (fully non-NULL) keys currently indexed."""
        return len(self._entries)

    def matches(self, columns: Iterable[str]) -> bool:
        """True iff this index covers exactly the given column set."""
        return set(self.columns) == set(columns)

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "UNIQUE " if self.unique else ""
        return (
            f"<{kind}HashIndex {self.name} ON "
            f"{self.relation_name}({', '.join(self.columns)})>"
        )
