"""Per-relation, per-column table statistics for the cost-based planner.

PR 2's optimizer guessed: hash-join selectivity was ``count // 4`` and
index probes were estimated at the index's mean bucket size.  This
module replaces the guesses with real statistics, the way a production
engine's ``ANALYZE`` does:

* **row count** — maintained incrementally, always exact;
* **null counts** per column — maintained incrementally, always exact;
* **distinct-value counts** per column — computed at build time, allowed
  to drift between rebuilds;
* **equi-depth histograms** per column — computed at build time for
  columns whose values sort homogeneously; estimate range-predicate
  selectivities (the "bushy-friendly" part: a relation with a selective
  ``<``/``>`` filter can win a join-order slot even without an index).

Above ``StatisticsManager.sample_rows`` values per column, distinct
counts and histograms are built from a systematic sample (every step-th
value) instead of the full value list — only the estimates sample; row
counts and null counts stay exact (``verify_integrity`` audits them).
When a fresh :class:`~repro.rdb.columnar.ColumnStore` mirrors the
relation, builds read its cached column arrays instead of pivoting row
dicts.

Statistics are built lazily on first planner access and rebuilt lazily
once the number of modifications since the last build exceeds a
configurable **staleness threshold** (a fraction of the rows seen at
build time).  DML between rebuilds only touches the O(1) incremental
counters, so the write path stays cheap.

The same staleness philosophy governs the plan cache: instead of "any
DML on a read relation recompiles", cached plans survive data drift
below ``Database.replan_threshold`` (see :mod:`repro.rdb.compiled`) —
statistics, not individual DML statements, decide when a cached join
order is stale.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database

__all__ = [
    "ColumnStatistics",
    "EquiDepthHistogram",
    "StatisticsManager",
    "TableStatistics",
]

Row = Mapping[str, Any]

#: default fraction of rows that may be modified before a rebuild
DEFAULT_STALENESS = 0.25
#: default number of histogram buckets
DEFAULT_BUCKETS = 16
#: values fed to distinct/histogram builds before sampling kicks in
DEFAULT_SAMPLE_ROWS = 10_000
#: selectivity assumed for predicates nothing can estimate
DEFAULT_SELECTIVITY = 1.0


class EquiDepthHistogram:
    """Equal-frequency buckets over one column's non-NULL values.

    ``fences`` holds ``buckets + 1`` boundary values (the minimum, the
    intermediate quantiles and the maximum); ``counts[i]`` is the number
    of values in ``[fences[i], fences[i + 1])`` (the last bucket is
    closed on both ends).  Built from a sorted value list; estimation
    never touches the table again.
    """

    __slots__ = ("fences", "counts", "total")

    def __init__(self, fences: list, counts: list[int], total: int) -> None:
        self.fences = fences
        self.counts = counts
        self.total = total

    @classmethod
    def build(
        cls, sorted_values: Sequence[Any], buckets: int = DEFAULT_BUCKETS
    ) -> Optional["EquiDepthHistogram"]:
        total = len(sorted_values)
        if total == 0:
            return None
        buckets = max(1, min(buckets, total))
        fences = [sorted_values[0]]
        counts = []
        consumed = 0
        for bucket in range(buckets):
            # distribute the remainder across the leading buckets
            take = total // buckets + (1 if bucket < total % buckets else 0)
            consumed += take
            counts.append(take)
            fences.append(sorted_values[min(consumed, total) - 1])
        return cls(fences, counts, total)

    def fraction_below(self, value: Any, inclusive: bool = False) -> float:
        """Fraction of values ``< value`` (``<= value`` when inclusive)."""
        if self.total == 0:
            return 0.0
        bisector = bisect_right if inclusive else bisect_left
        try:
            if inclusive:
                if value < self.fences[0]:
                    return 0.0
                if not value < self.fences[-1]:
                    return 1.0
            else:
                if not self.fences[0] < value:
                    return 0.0
                if self.fences[-1] < value:
                    return 1.0
            position = bisector(self.fences, value)
        except TypeError:
            # probe value does not compare with the histogrammed type
            return 0.5
        below = sum(self.counts[: max(position - 1, 0)])
        # interpolate inside the straddled bucket
        bucket = min(max(position - 1, 0), len(self.counts) - 1)
        lo, hi = self.fences[bucket], self.fences[bucket + 1]
        if isinstance(value, (int, float)) and isinstance(lo, (int, float)) \
                and isinstance(hi, (int, float)) and hi > lo:
            fraction = min(max((value - lo) / (hi - lo), 0.0), 1.0)
        else:
            fraction = 0.5  # non-numeric: credit half the bucket
        return min(1.0, (below + self.counts[bucket] * fraction) / self.total)

    def estimate_fraction(self, op: str, value: Any) -> float:
        """Fraction of non-NULL values satisfying ``column <op> value``."""
        if op == "<":
            return self.fraction_below(value, inclusive=False)
        if op == "<=":
            return self.fraction_below(value, inclusive=True)
        if op == ">":
            return 1.0 - self.fraction_below(value, inclusive=True)
        if op == ">=":
            return 1.0 - self.fraction_below(value, inclusive=False)
        return DEFAULT_SELECTIVITY


class ColumnStatistics:
    """Build-time snapshot for one column: distinct count + histogram."""

    __slots__ = ("column", "distinct", "histogram")

    def __init__(
        self,
        column: str,
        distinct: int,
        histogram: Optional[EquiDepthHistogram],
    ) -> None:
        self.column = column
        self.distinct = distinct
        self.histogram = histogram

    @classmethod
    def build(
        cls,
        column: str,
        values: Iterable[Any],
        buckets: int,
        sample_rows: int = 0,
    ) -> "ColumnStatistics":
        non_null = [value for value in values if value is not None]
        total = len(non_null)
        sampled = False
        if sample_rows and total > sample_rows:
            # systematic sample: every step-th value in scan order (store
            # order is already effectively arbitrary after delete churn)
            step = -(-total // sample_rows)
            non_null = non_null[::step]
            sampled = True
        distinct = len(set(non_null))
        if sampled and distinct * 2 >= len(non_null):
            # high cardinality: most sampled values were unique, so the
            # sample undercounts — scale linearly, capped at the row count.
            # Low-cardinality columns skip this: the sample already saw
            # (nearly) every value, so the raw count is the better answer.
            distinct = min(total, distinct * step)
        histogram: Optional[EquiDepthHistogram] = None
        try:
            non_null.sort()
        except TypeError:
            pass  # heterogeneous values: no histogram, distinct still valid
        else:
            histogram = EquiDepthHistogram.build(non_null, buckets)
        return cls(column, distinct, histogram)


class TableStatistics:
    """All statistics for one relation, with incremental maintenance.

    ``row_count`` and ``null_counts`` are exact at all times (O(1) per
    DML).  ``columns`` (distinct counts, histograms) reflect the last
    build and drift until :class:`StatisticsManager` rebuilds them.
    """

    def __init__(self, relation_name: str, column_names: Sequence[str]) -> None:
        self.relation_name = relation_name
        self.row_count = 0
        self.null_counts: dict[str, int] = {name: 0 for name in column_names}
        self.columns: dict[str, ColumnStatistics] = {}
        self.rows_at_build = 0
        self.mods_since_build = 0

    # -- incremental maintenance (exact counters only) ----------------------

    def on_insert(self, row: Row) -> None:
        self.row_count += 1
        self.mods_since_build += 1
        for column in self.null_counts:
            if row.get(column) is None:
                self.null_counts[column] += 1

    def on_delete(self, row: Row) -> None:
        self.row_count -= 1
        self.mods_since_build += 1
        for column in self.null_counts:
            if row.get(column) is None:
                self.null_counts[column] -= 1

    def on_update(self, old_row: Row, changes: Row) -> None:
        self.mods_since_build += 1
        for column, new_value in changes.items():
            if column not in self.null_counts:
                continue
            old_value = old_row.get(column)
            if old_value is None and new_value is not None:
                self.null_counts[column] -= 1
            elif old_value is not None and new_value is None:
                self.null_counts[column] += 1

    def stale(self, staleness: float) -> bool:
        return self.mods_since_build > staleness * max(self.rows_at_build, 1)

    # -- estimation ----------------------------------------------------------

    def null_fraction(self, column: str) -> float:
        if self.row_count <= 0:
            return 0.0
        return min(1.0, self.null_counts.get(column, 0) / self.row_count)

    def distinct(self, column: str) -> int:
        """Distinct non-NULL values (as of the last build), at least 1."""
        stats = self.columns.get(column)
        if stats is None or stats.distinct <= 0:
            # never seen a build with values: assume everything matches
            return 1
        return stats.distinct

    def equality_rows(self, columns: Iterable[str]) -> float:
        """Estimated rows matching an equality over *columns*.

        Multi-column keys multiply the per-column distinct counts
        (independence assumption), capped at the row count.
        """
        if self.row_count <= 0:
            return 0.0
        combined = 1
        for column in columns:
            combined *= self.distinct(column)
            if combined >= self.row_count:
                return 1.0
        return self.row_count / max(combined, 1)

    def comparison_selectivity(self, op: str, column: str, value: Any) -> float:
        """Selectivity of ``column <op> <literal>`` in [0, 1].

        NULLs never satisfy a comparison, so the non-null fraction caps
        every estimate.
        """
        non_null = 1.0 - self.null_fraction(column)
        if non_null <= 0.0:
            return 0.0
        if op == "=":
            return non_null / self.distinct(column)
        if op == "<>":
            return non_null * (1.0 - 1.0 / self.distinct(column))
        stats = self.columns.get(column)
        if stats is None or stats.histogram is None:
            return non_null * DEFAULT_SELECTIVITY
        if value is None:
            return 0.0
        return non_null * stats.histogram.estimate_fraction(op, value)


class StatisticsManager:
    """Lazily built, incrementally maintained statistics per relation.

    The write path calls the ``on_*`` hooks (cheap counter updates for
    relations that have statistics, no-ops for those that never met the
    planner); the read path calls :meth:`table`, which builds or
    rebuilds when the staleness threshold has been crossed.
    """

    def __init__(
        self,
        db: "Database",
        staleness: float = DEFAULT_STALENESS,
        histogram_buckets: int = DEFAULT_BUCKETS,
        sample_rows: int = DEFAULT_SAMPLE_ROWS,
    ) -> None:
        self.db = db
        #: fraction of rows that may change before a lazy rebuild
        self.staleness = staleness
        self.histogram_buckets = histogram_buckets
        #: per-column value cap before distinct/histogram builds sample
        #: (0 disables sampling); row counts and null counts stay exact
        self.sample_rows = sample_rows
        #: builds that crossed the cap and sampled at least one column
        self.sampled_builds = 0
        self._tables: dict[str, TableStatistics] = {}

    # -- access --------------------------------------------------------------

    def table(self, relation_name: str) -> TableStatistics:
        stats = self._tables.get(relation_name)
        if stats is None or stats.stale(self.staleness):
            stats = self._build(relation_name)
        return stats

    def peek(self, relation_name: str) -> Optional[TableStatistics]:
        """The current statistics without triggering a (re)build."""
        return self._tables.get(relation_name)

    def analyze(self, relation_name: Optional[str] = None) -> int:
        """Eagerly (re)build statistics — one relation, or every
        relation of the database.  The explicit counterpart of the lazy
        rebuild, exposed as :meth:`repro.rdb.database.Database.analyze`
        so bulk-load setup can pay the scan up front.  Returns the
        number of relations built.
        """
        names = (
            [relation_name]
            if relation_name is not None
            else list(self.db.tables)
        )
        for name in names:
            self._build(name)
        return len(names)

    def _build(self, relation_name: str) -> TableStatistics:
        table = self.db.table(relation_name)
        stats = TableStatistics(relation_name, table.columns)
        store = self.db.columns.peek(relation_name)
        values_by_column: dict[str, list]
        if store is not None:
            # columnar fast path: reuse the store's cached value arrays
            # instead of pivoting row dicts (and the materialization
            # persists on the store for the next build).  Null counts
            # come from a full array pass, so they stay exact;
            # ColumnStatistics.build filters the Nones itself.
            stats.row_count = len(store)
            values_by_column = {}
            for column in table.columns:
                array = store.column(column)
                stats.null_counts[column] = array.count(None)
                values_by_column[column] = array
        else:
            values_by_column = {column: [] for column in table.columns}
            for _, row in table.scan():
                stats.row_count += 1
                for column, bucket in values_by_column.items():
                    value = row.get(column)
                    if value is None:
                        stats.null_counts[column] += 1
                    else:
                        bucket.append(value)
        if self.sample_rows and stats.row_count > self.sample_rows:
            self.sampled_builds += 1
        for column, values in values_by_column.items():
            stats.columns[column] = ColumnStatistics.build(
                column, values, self.histogram_buckets,
                sample_rows=self.sample_rows,
            )
        stats.rows_at_build = stats.row_count
        stats.mods_since_build = 0
        self._tables[relation_name] = stats
        self.db.stats["stats_rebuilds"] += 1
        return stats

    # -- DML hooks (called from Database's physical layer) -------------------

    def on_insert(self, relation_name: str, row: Row) -> None:
        stats = self._tables.get(relation_name)
        if stats is not None:
            stats.on_insert(row)

    def on_delete(self, relation_name: str, row: Row) -> None:
        stats = self._tables.get(relation_name)
        if stats is not None:
            stats.on_delete(row)

    def on_update(self, relation_name: str, old_row: Row, changes: Row) -> None:
        stats = self._tables.get(relation_name)
        if stats is not None:
            stats.on_update(old_row, changes)

    def forget(self, relation_name: str) -> None:
        """Drop statistics (DROP TABLE, or a schema change that widens)."""
        self._tables.pop(relation_name, None)
