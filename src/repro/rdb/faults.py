"""Deterministic fault injection for the storage and apply layers.

The engine's crash-consistency story (:mod:`repro.rdb.wal`) is only as
good as the crash points it survives, so every mutation path is
threaded with **named injection sites**: tuple storage
(``table.insert`` / ``table.restore`` / ``table.delete`` /
``table.update``), index maintenance (``index.add`` / ``index.remove``),
undo replay (``undo.rollback`` for full rollbacks, ``undo.savepoint``
for partial ones), the journal itself (``wal.record`` / ``wal.intent``
/ ``wal.commit``), the data-check apply helpers (``datacheck.delete`` /
``datacheck.insert`` / ``datacheck.replace``) and the session's
deferred apply (``session.apply``).

A :class:`FaultInjector` hangs off every :class:`~repro.rdb.database.
Database` (and is shared with its tables and indexes).  Disarmed it is
a no-op on the hot path; armed with a :class:`FaultPlan` it fires a
simulated failure at exactly the *N*-th matched site hit, which makes
crash enumeration exhaustive: record a run's site trace once, then
replay it *N* times crashing at point 1, 2, ..., *N*
(:mod:`repro.core.faultsweep`).

Two failure shapes:

* ``crash`` — raise :class:`SimulatedCrash`, a ``BaseException`` that
  sails past every ``except ReproError`` / ``except Exception`` handler
  the way a killed process sails past them, leaving whatever torn state
  the mutation had reached for :meth:`Database.recover` to repair;
* ``error`` / ``conflict`` — raise a *transient* exception
  (:class:`FaultInjectedError` / :class:`~repro.errors.ConflictError`)
  that the session retry policy is expected to absorb.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Iterator, Optional

from ..errors import ConflictError, TransientError

__all__ = [
    "FaultInjectedError",
    "FaultInjector",
    "FaultPlan",
    "SimulatedCrash",
]

#: actions a plan may take when its trigger point is reached
ACTIONS = ("crash", "error", "conflict")


class SimulatedCrash(BaseException):
    """The process 'died' at an injection site.

    Deliberately a ``BaseException``: rollback handlers, the hybrid
    strategy's ``except ConstraintViolation`` and the scenario
    generator's ``except Exception`` must all be blind to it, exactly
    as they would be to a SIGKILL.  Only the fault-sweep harness (and
    tests) catch it, then drive recovery.
    """

    def __init__(self, site: str, hit: int) -> None:
        self.site = site
        self.hit = hit
        super().__init__(f"simulated crash at site {site!r} (hit #{hit})")


class FaultInjectedError(TransientError):
    """A transient engine fault injected at a named site.

    Models the recoverable failures a real deployment sees (lock
    timeouts, snapshot-too-old, transient I/O errors): the session
    retry loop should absorb it within its budget.
    """

    def __init__(self, site: str, hit: int) -> None:
        self.site = site
        self.hit = hit
        super().__init__(f"injected transient fault at site {site!r} (hit #{hit})")


class FaultPlan:
    """Fire one simulated failure at the *N*-th matched site hit.

    Parameters
    ----------
    at:
        1-based index among the hits this plan matches.
    action:
        ``crash`` (raise :class:`SimulatedCrash`), ``error``
        (:class:`FaultInjectedError`) or ``conflict``
        (:class:`~repro.errors.ConflictError`).
    site:
        Optional site-name prefix filter (``"index."`` matches
        ``index.add`` and ``index.remove``); ``None`` matches every
        site.
    times:
        How many times the plan fires before disarming itself.  The
        default of 1 makes transient-fault plans naturally retryable:
        the retry re-runs the same sites and the plan stays quiet.
    """

    def __init__(
        self,
        at: int,
        action: str = "crash",
        site: Optional[str] = None,
        times: int = 1,
    ) -> None:
        if at < 1:
            raise ValueError(f"trigger point must be >= 1, got {at}")
        if action not in ACTIONS:
            raise ValueError(f"unknown action {action!r}; pick one of {ACTIONS}")
        self.at = at
        self.action = action
        self.site = site
        self.times = times
        #: matched hits seen so far
        self.seen = 0
        #: times the plan has fired
        self.fired = 0

    @classmethod
    def seeded(
        cls, seed: int, total_sites: int, actions: tuple[str, ...] = ACTIONS
    ) -> "FaultPlan":
        """Draw a deterministic plan from *seed*: a random trigger point
        in ``1..total_sites`` and a random action."""
        rng = random.Random(seed)
        return cls(
            at=rng.randrange(1, max(total_sites, 1) + 1),
            action=rng.choice(list(actions)),
        )

    def matches(self, site: str) -> bool:
        return self.site is None or site.startswith(self.site)

    def on_hit(self, site: str) -> None:
        if self.fired >= self.times or not self.matches(site):
            return
        self.seen += 1
        if self.seen != self.at:
            return
        self.fired += 1
        self.seen = 0  # re-arm counting for times > 1
        if self.action == "crash":
            raise SimulatedCrash(site, self.at)
        if self.action == "conflict":
            raise ConflictError(
                f"injected conflict at site {site!r} (hit #{self.at}): "
                f"a concurrent committer won"
            )
        raise FaultInjectedError(site, self.at)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scope = f", site={self.site!r}" if self.site else ""
        return f"FaultPlan(at={self.at}, action={self.action!r}{scope})"


class FaultInjector:
    """Per-database registry of injection sites.

    Disarmed (no plan, not recording) the per-site cost is one
    attribute check.  Armed, every :meth:`hit` consults the plan —
    which may raise — and/or appends to the recording trace.
    """

    def __init__(self) -> None:
        self.plan: Optional[FaultPlan] = None
        self._trace: Optional[list[str]] = None
        self._suspended = 0
        #: total site hits observed while armed (plan or recording)
        self.hits = 0

    @property
    def armed(self) -> bool:
        return self.plan is not None or self._trace is not None

    def hit(self, site: str, relation: Optional[str] = None) -> None:
        """Announce one pass through a named injection site."""
        if (self.plan is None and self._trace is None) or self._suspended:
            return
        self.hits += 1
        if self._trace is not None:
            self._trace.append(
                f"{site}({relation})" if relation is not None else site
            )
        if self.plan is not None:
            self.plan.on_hit(site)

    # -- arming --------------------------------------------------------------

    def arm(self, plan: FaultPlan) -> FaultPlan:
        self.plan = plan
        return plan

    def disarm(self) -> None:
        self.plan = None

    # -- site enumeration ----------------------------------------------------

    def start_recording(self) -> None:
        """Begin collecting the site trace (for crash-point enumeration)."""
        self._trace = []

    def stop_recording(self) -> list[str]:
        trace, self._trace = self._trace, None
        return trace or []

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """No sites fire inside this block (recovery runs under it —
        crash-during-recovery is repaired by simply recovering again)."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "recording" if self._trace is not None else (
            repr(self.plan) if self.plan else "disarmed"
        )
        return f"<FaultInjector {state}, {self.hits} hit(s)>"


#: shared disarmed injector for tables/indexes constructed outside a
#: Database (unit tests); Database replaces it with its own instance
NULL_INJECTOR = FaultInjector()


def _noop_hit(site: str, relation: Optional[str] = None) -> None:
    return None
