"""Relational engine substrate (stands in for Oracle 10g in the paper).

Public surface:

* :class:`Schema`, :class:`Relation`, :class:`Attribute` — DDL metadata
* constraint classes (:class:`PrimaryKey`, :class:`ForeignKey`, ...)
  with :class:`DeletePolicy` (CASCADE / SET NULL / RESTRICT)
* :class:`Database` — storage, DML, constraint enforcement, transactions
* :class:`SelectPlan` / :func:`execute_select` — programmatic queries,
  executed through the cost-aware planner (:mod:`repro.rdb.optimizer`)
  and one of two executors of :mod:`repro.rdb.compiled`: the row-at-a-
  time compiled-predicate closures, or the vectorized batch operators
  over the columnar mirrors of :mod:`repro.rdb.columnar`
* :class:`SQLEngine` and the parser — textual SQL subset
* the expression algebra of :mod:`repro.rdb.expr`
* the fault-tolerance layer — :class:`WriteAheadLog` journaling with
  :meth:`Database.recover` / :meth:`Database.verify_integrity`, and the
  deterministic fault injection of :mod:`repro.rdb.faults`
"""

from .constraints import (
    Check,
    Constraint,
    DeletePolicy,
    ForeignKey,
    NotNull,
    PrimaryKey,
    Unique,
)
from .database import Database, RecoveryReport
from .expr import (
    And,
    ColumnRef,
    Comparison,
    Expr,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    col,
    conjoin,
    lit,
)
from .columnar import ColumnBatch, ColumnStore, ColumnStoreManager
from .compiled import (
    CompiledPlan,
    PlanCache,
    RowidPlanCache,
    VectorizedPlan,
    compile_tree_vectorized,
)
from .faults import FaultInjectedError, FaultInjector, FaultPlan, SimulatedCrash
from .index import HashIndex
from .optimizer import enumerate_joins, order_from_items
from .plan import (
    FromItem,
    LogicalPlan,
    OutputColumn,
    PlanNode,
    SelectPlan,
    execute_select,
    explain_select,
)
from .schema import Attribute, Relation, Schema
from .statistics import StatisticsManager, TableStatistics
from .sql import SQLEngine, parse_script, parse_statement
from .sql.parser import parse_expression
from .table import Table
from .types import Date, Double, Integer, SQLType, VarChar, sql_literal, type_from_name
from .wal import WriteAheadLog

__all__ = [
    "Attribute",
    "And",
    "Check",
    "col",
    "ColumnBatch",
    "ColumnRef",
    "ColumnStore",
    "ColumnStoreManager",
    "Comparison",
    "compile_tree_vectorized",
    "CompiledPlan",
    "conjoin",
    "Constraint",
    "Database",
    "Date",
    "DeletePolicy",
    "Double",
    "enumerate_joins",
    "execute_select",
    "explain_select",
    "Expr",
    "FaultInjectedError",
    "FaultInjector",
    "FaultPlan",
    "LogicalPlan",
    "PlanNode",
    "ForeignKey",
    "FromItem",
    "HashIndex",
    "InSubquery",
    "Integer",
    "IsNull",
    "lit",
    "Literal",
    "Not",
    "NotNull",
    "Or",
    "order_from_items",
    "OutputColumn",
    "PlanCache",
    "parse_expression",
    "parse_script",
    "parse_statement",
    "PrimaryKey",
    "RecoveryReport",
    "Relation",
    "RowidPlanCache",
    "Schema",
    "SimulatedCrash",
    "SelectPlan",
    "SQLEngine",
    "sql_literal",
    "SQLType",
    "StatisticsManager",
    "Table",
    "TableStatistics",
    "type_from_name",
    "Unique",
    "VarChar",
    "VectorizedPlan",
    "WriteAheadLog",
]
