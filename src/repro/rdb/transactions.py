"""Undo-log transactions for the relational engine.

The paper's Fig. 14 experiment hinges on rollback cost: without STAR
checking, a blind translation executes, the side effect is discovered,
and *"the transaction has to rollback to undo all the changes"*, which
grows with the number of cascaded modifications.  This module provides
exactly that mechanism: every DML statement appends compensating
actions to the undo log; :meth:`TransactionManager.rollback` replays
them in reverse.

The log is also how the *hybrid* strategy of Step 3 recovers when the
engine raises a constraint violation mid-sequence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from ..errors import TransactionError

__all__ = ["UndoAction", "UndoKind", "TransactionManager"]


class UndoKind(enum.Enum):
    """What the *forward* operation was (the undo inverts it)."""

    INSERT = "insert"   # undo by deleting the inserted row
    DELETE = "delete"   # undo by restoring the deleted row image
    UPDATE = "update"   # undo by restoring the old column values


@dataclass
class UndoAction:
    kind: UndoKind
    relation_name: str
    rowid: int
    #: full old row image for DELETE, changed-columns old image for UPDATE
    old_values: dict[str, Any] = field(default_factory=dict)


class TransactionManager:
    """Single-level transaction scope over a database.

    The database calls :meth:`record` on every physical mutation; when
    no transaction is active the record is discarded (auto-commit).
    """

    def __init__(self) -> None:
        self._log: list[UndoAction] = []
        self._active = False
        #: undo actions handed out for replay but not yet confirmed
        #: undone — an exception mid-replay leaves its tail here, and a
        #: later rollback resumes from it instead of abandoning it
        self._pending: list[UndoAction] = []
        #: statistics for benchmarks: undo records written / replayed
        self.records_written = 0
        self.records_replayed = 0

    @property
    def active(self) -> bool:
        return self._active

    @property
    def log_length(self) -> int:
        return len(self._log)

    @property
    def pending(self) -> int:
        """Undo actions staged for replay but not yet confirmed undone."""
        return len(self._pending)

    def begin(self) -> None:
        if self._active:
            raise TransactionError("transaction already active")
        if self._pending:
            raise TransactionError(
                f"{len(self._pending)} undo action(s) from an interrupted "
                f"rollback are still pending; finish the rollback first"
            )
        self._active = True
        self._log.clear()

    def record(self, action: UndoAction) -> None:
        if self._active:
            self._log.append(action)
            self.records_written += 1

    def commit(self) -> None:
        if not self._active:
            raise TransactionError("no active transaction to commit")
        if self._pending:
            raise TransactionError(
                f"cannot commit: {len(self._pending)} undo action(s) from an "
                f"interrupted savepoint rollback are still pending"
            )
        self._active = False
        self._log.clear()

    def take_rollback_log(self) -> list[UndoAction]:
        """Close the transaction and hand the undo log (newest first).

        The handed-out actions are *also* staged on the pending list:
        the replayer confirms each one via :meth:`confirm_undone` as it
        succeeds, so an exception mid-replay leaves exactly the
        unconsumed tail staged for :meth:`take_pending` to resume.
        """
        if not self._active:
            if self._pending:
                # resuming an interrupted rollback: hand the leftover
                # tail again without re-counting it as replayed
                return list(self._pending)
            raise TransactionError("no active transaction to roll back")
        self._active = False
        log = list(reversed(self._log)) + self._pending
        self._log.clear()
        self._pending = list(log)
        self.records_replayed += len(log)
        return log

    def take_pending(self) -> list[UndoAction]:
        """The staged-but-unconfirmed undo tail of an interrupted replay."""
        return list(self._pending)

    def confirm_undone(self, action: UndoAction) -> None:
        """Mark the oldest staged action as successfully replayed."""
        if self._pending and self._pending[0] is action:
            self._pending.pop(0)

    def hard_reset(self) -> None:
        """Forget all volatile transaction state (simulated crash).

        The in-memory undo log and pending tail die with the process;
        after a crash only the write-ahead journal knows what to undo.
        :meth:`repro.rdb.database.Database.recover` calls this before
        replaying the journal.
        """
        self._active = False
        self._log.clear()
        self._pending.clear()

    # -- savepoints ----------------------------------------------------------

    def savepoint(self) -> int:
        """Mark the current undo-log position inside an active transaction.

        Batch sessions place one savepoint per queued update so a
        mid-batch failure can undo just that update (non-atomic mode)
        while the surrounding transaction stays open.
        """
        if not self._active:
            raise TransactionError("savepoints require an active transaction")
        return len(self._log)

    def take_rollback_to(self, mark: int) -> list[UndoAction]:
        """Hand the undo records after *mark* (newest first), keep the
        transaction active."""
        if not self._active:
            raise TransactionError("no active transaction to roll back")
        if mark < 0 or mark > len(self._log):
            raise TransactionError(f"invalid savepoint {mark!r}")
        tail = list(reversed(self._log[mark:]))
        del self._log[mark:]
        self._pending = tail + self._pending
        self.records_replayed += len(tail)
        return tail
