"""Columnar mirrors of relations + the batch carrier of the vectorized
executor.

Row storage stays the single source of truth (``Table._rows`` dicts);
this module maintains derived, column-major *mirrors* of it:

* :class:`ColumnStore` — one relation's rows pivoted into parallel
  arrays: a rowid array, a row-reference array (the live ``Table`` row
  dicts, zero-copy) and per-column value arrays materialized lazily on
  first access.  A store is pinned to the (schema_version, data_version)
  generation pair it was built against.
* :class:`ColumnStoreManager` — the per-database registry.  DML hooks
  refresh a store **incrementally** when the generation delta is the
  single bump the current mutation made; anything else (rollback
  replay's coalesced bumps, recovery, DDL) drops the store and the next
  access rebuilds from the table — the same trust model index
  ``rebuild()`` uses after crash recovery.
* :class:`ColumnBatch` — the unit of work between vectorized operators:
  one or more FROM items' parallel arrays plus an optional *selection
  vector* (``sel``) of surviving positions.  Filters narrow ``sel``
  without copying data; joins gather new compacted batches.

Deletes swap-with-last, so a store's row order drifts from the table's
insertion order after churn.  That is fine by construction: every
consumer either aggregates (statistics builds) or re-sorts on rowids
(the vectorized executor's finalize step), so store order is never
observable in results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database
    from .table import Table

__all__ = ["ColumnBatch", "ColumnStore", "ColumnStoreManager"]

Row = dict[str, Any]


class ColumnStore:
    """Column-major mirror of one relation at one generation."""

    __slots__ = ("relation_name", "schema_version", "data_version",
                 "rowids", "rows", "columns", "_positions")

    def __init__(
        self,
        relation_name: str,
        schema_version: int,
        data_version: int,
    ) -> None:
        self.relation_name = relation_name
        self.schema_version = schema_version
        self.data_version = data_version
        self.rowids: list[int] = []
        #: live references to the Table's row dicts — UPDATE mutates them
        #: in place, so only materialized column arrays need patching
        self.rows: list[Row] = []
        #: lazily materialized per-column value arrays
        self.columns: dict[str, list] = {}
        self._positions: dict[int, int] = {}

    @classmethod
    def build(
        cls,
        relation_name: str,
        table: "Table",
        schema_version: int,
        data_version: int,
    ) -> "ColumnStore":
        store = cls(relation_name, schema_version, data_version)
        rowids = store.rowids
        rows = store.rows
        positions = store._positions
        for rowid, row in table.scan():
            positions[rowid] = len(rowids)
            rowids.append(rowid)
            rows.append(row)
        return store

    def column(self, name: str) -> list:
        """The materialized value array of one column (cached)."""
        arr = self.columns.get(name)
        if arr is None:
            arr = self.columns[name] = [row[name] for row in self.rows]
        return arr

    def __len__(self) -> int:
        return len(self.rowids)

    # -- incremental maintenance (manager-driven) ----------------------------

    def apply_insert(self, rowid: int, row: Row) -> None:
        self._positions[rowid] = len(self.rowids)
        self.rowids.append(rowid)
        self.rows.append(row)
        for name, arr in self.columns.items():
            arr.append(row[name])

    def apply_delete(self, rowid: int) -> None:
        position = self._positions.pop(rowid, None)
        if position is None:
            return
        last = len(self.rowids) - 1
        if position != last:
            moved = self.rowids[last]
            self.rowids[position] = moved
            self.rows[position] = self.rows[last]
            self._positions[moved] = position
            for arr in self.columns.values():
                arr[position] = arr[last]
        self.rowids.pop()
        self.rows.pop()
        for arr in self.columns.values():
            arr.pop()

    def apply_update(self, rowid: int, changes: Row) -> None:
        # the Table mutated the shared row dict in place already; only
        # the materialized arrays of the changed columns need patching
        position = self._positions.get(rowid)
        if position is None:
            return
        row = self.rows[position]
        columns = self.columns
        for name in changes:
            arr = columns.get(name)
            if arr is not None:
                arr[position] = row[name]


class ColumnStoreManager:
    """Per-database registry of column stores, with DML delta tracking."""

    def __init__(self, db: "Database") -> None:
        self.db = db
        self._stores: dict[str, ColumnStore] = {}
        #: full pivots from the table (lazy first access or staleness)
        self.builds = 0
        #: DML mutations absorbed without dropping a store
        self.incremental_ops = 0

    # -- access --------------------------------------------------------------

    def store(self, relation_name: str) -> ColumnStore:
        """The fresh store for *relation_name*, building if needed."""
        store = self.peek(relation_name)
        if store is not None:
            return store
        db = self.db
        store = ColumnStore.build(
            relation_name,
            db.table(relation_name),
            db.schema_versions.get(relation_name, 0),
            db.data_versions.get(relation_name, 0),
        )
        self._stores[relation_name] = store
        self.builds += 1
        return store

    def peek(self, relation_name: str) -> Optional[ColumnStore]:
        """The cached store iff it is at the current generation."""
        store = self._stores.get(relation_name)
        if store is None or not self._fresh(store):
            return None
        return store

    def _fresh(self, store: ColumnStore) -> bool:
        db = self.db
        name = store.relation_name
        return (
            store.schema_version == db.schema_versions.get(name, 0)
            and store.data_version == db.data_versions.get(name, 0)
        )

    def forget(self, relation_name: str) -> None:
        self._stores.pop(relation_name, None)

    def clear(self) -> None:
        self._stores.clear()

    def cached_relations(self) -> tuple[str, ...]:
        return tuple(self._stores)

    # -- DML hooks (called by the Database physical primitives) --------------
    #
    # Each hook fires *after* `_bump_data_version`, so a normal mutation
    # arrives with the db exactly one generation ahead of the store.
    # Rollback replay coalesces its bumps (`_coalesce_versions`), so the
    # per-operation accounting breaks there — the store is dropped and
    # rebuilt on next access instead of patched.

    def _trackable(self, relation_name: str) -> Optional[ColumnStore]:
        store = self._stores.get(relation_name)
        if store is None:
            return None
        db = self.db
        if db._coalesce_versions:
            self.forget(relation_name)
            return None
        if store.schema_version != db.schema_versions.get(relation_name, 0):
            self.forget(relation_name)
            return None
        delta = db.data_versions.get(relation_name, 0) - store.data_version
        if delta not in (0, 1):
            self.forget(relation_name)
            return None
        return store

    def on_insert(self, relation_name: str, rowid: int, row: Row) -> None:
        store = self._trackable(relation_name)
        if store is None:
            return
        store.apply_insert(rowid, row)
        store.data_version = self.db.data_versions.get(relation_name, 0)
        self.incremental_ops += 1

    def on_delete(self, relation_name: str, rowid: int) -> None:
        store = self._trackable(relation_name)
        if store is None:
            return
        store.apply_delete(rowid)
        store.data_version = self.db.data_versions.get(relation_name, 0)
        self.incremental_ops += 1

    def on_update(self, relation_name: str, rowid: int, changes: Row) -> None:
        store = self._trackable(relation_name)
        if store is None:
            return
        store.apply_update(rowid, changes)
        store.data_version = self.db.data_versions.get(relation_name, 0)
        self.incremental_ops += 1


Positions = Union[range, list[int]]


class ColumnBatch:
    """A batch of joined rows flowing between vectorized operators.

    ``names`` are the FROM-item names the batch binds; ``rowids[name]``
    / ``rows[name]`` are parallel arrays of length ``length``.  ``sel``
    is the selection vector: ``None`` means every position survives,
    otherwise it lists the surviving positions in ascending batch
    order.  Column value arrays are materialized lazily per
    ``(name, column)`` and, for scan batches backed by a
    :class:`ColumnStore`, delegate to the store so the materialization
    outlives the query.
    """

    __slots__ = ("names", "length", "rowids", "rows", "sel",
                 "_columns", "_stores")

    def __init__(
        self,
        names: tuple[str, ...],
        length: int,
        rowids: dict[str, Sequence[int]],
        rows: dict[str, Sequence[Row]],
        stores: Optional[dict[str, ColumnStore]] = None,
    ) -> None:
        self.names = names
        self.length = length
        self.rowids = rowids
        self.rows = rows
        self.sel: Optional[list[int]] = None
        self._columns: dict[tuple[str, str], list] = {}
        self._stores = stores

    def column(self, name: str, column: str) -> list:
        key = (name, column)
        arr = self._columns.get(key)
        if arr is None:
            store = self._stores.get(name) if self._stores else None
            if store is not None:
                arr = store.column(column)
            else:
                arr = [row[column] for row in self.rows[name]]
            self._columns[key] = arr
        return arr

    def gather(self, name: str, column: str, order: Positions) -> list:
        """Values of one column along the *order* positions.

        Store-backed and already-materialized columns gather from the
        cached array; otherwise read the row dicts directly — for a
        single consumer, materializing the full column first would do
        the indexing work twice.
        """
        store = self._stores.get(name) if self._stores else None
        if store is not None:
            array = store.column(column)
            return [array[i] for i in order]
        cached = self._columns.get((name, column))
        if cached is not None:
            return [cached[i] for i in order]
        rows = self.rows[name]
        return [rows[i][column] for i in order]

    def positions(self) -> Positions:
        """The surviving positions (the selection vector, or all)."""
        sel = self.sel
        return range(self.length) if sel is None else sel

    def selected_count(self) -> int:
        sel = self.sel
        return self.length if sel is None else len(sel)
