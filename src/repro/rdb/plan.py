"""SELECT execution: nested-loop joins with index assistance.

The executor implements exactly what the paper's experiments exercise:

* multi-relation joins driven by equality predicates,
* index nested-loop joins when a hash index covers the join columns of
  the inner relation (the *hybrid* strategy benefits from the PK/FK
  indexes the engine builds automatically),
* plain nested-loop + filter otherwise (which is what joins against a
  *materialized probe result* degrade to in the outside strategy when
  the temp table carries no indexes; batch sessions attach ad-hoc hash
  indexes via :meth:`repro.rdb.database.Database.create_index`, and the
  executor exploits them like any other index).

The executor maintains two counters in ``db.stats``: ``selects`` (plans
executed — the probe accounting batch sessions and benchmarks compare)
and ``index_joins`` (join levels served by an index lookup instead of a
scan).

Queries are represented programmatically (:class:`SelectPlan`); the
textual SQL layer (:mod:`repro.rdb.sql`) parses into the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import SchemaError
from .database import Database
from .expr import And, ColumnRef, Comparison, Expr, Literal, conjoin

__all__ = ["FromItem", "OutputColumn", "SelectPlan", "execute_select"]

Row = dict[str, Any]


@dataclass(frozen=True)
class FromItem:
    """One entry of the FROM clause: a relation with an optional alias."""

    relation_name: str
    alias: Optional[str] = None

    @property
    def name(self) -> str:
        return self.alias or self.relation_name


@dataclass(frozen=True)
class OutputColumn:
    """One entry of the SELECT list."""

    column: str
    qualifier: Optional[str] = None
    #: output name; defaults to the column name
    label: Optional[str] = None

    @property
    def output_name(self) -> str:
        return self.label or self.column


@dataclass
class SelectPlan:
    """A select-project-join query (no DISTINCT, no aggregates).

    ``columns=None`` means ``SELECT *`` (all columns of all FROM items,
    qualified names used on collisions).
    """

    from_items: list[FromItem]
    columns: Optional[list[OutputColumn]] = None
    where: Optional[Expr] = None
    #: special ROWID projection support (the paper's PQ4 selects ROWID)
    select_rowids: bool = False
    #: add "<alias>.ROWID" entries next to the projected columns —
    #: probe queries use this to feed translated DELETE statements
    include_rowids: bool = False

    def to_sql(self) -> str:
        if self.select_rowids:
            select_list = "ROWID"
        elif self.columns is None:
            select_list = "*"
        else:
            parts = []
            for column in self.columns:
                text = (
                    f"{column.qualifier}.{column.column}"
                    if column.qualifier
                    else column.column
                )
                if column.label and column.label != column.column:
                    text += f" AS {column.label}"
                parts.append(text)
            select_list = ", ".join(parts)
        from_list = ", ".join(
            f"{item.relation_name} {item.alias}" if item.alias else item.relation_name
            for item in self.from_items
        )
        sql = f"SELECT {select_list} FROM {from_list}"
        if self.where is not None:
            sql += f" WHERE {self.where.to_sql()}"
        return sql


def _split_conjuncts(where: Optional[Expr]) -> list[Expr]:
    if where is None:
        return []
    return where.conjuncts()


def _binding_equalities(
    conjunct: Expr, target: str, bound: set[str]
) -> Optional[tuple[str, Expr]]:
    """If *conjunct* pins a column of *target* to an evaluable value,
    return ``(column, value_expr)``.

    A value expression is evaluable when it is a literal or references
    only already-bound FROM items.
    """
    if not isinstance(conjunct, Comparison) or conjunct.op != "=":
        return None
    for this, other in ((conjunct.left, conjunct.right), (conjunct.right, conjunct.left)):
        if isinstance(this, ColumnRef) and this.qualifier == target:
            if isinstance(other, Literal):
                return this.column, other
            if isinstance(other, ColumnRef) and other.qualifier in bound:
                return this.column, other
    return None


def _applicable(conjunct: Expr, bound: set[str]) -> bool:
    """True iff every column reference of *conjunct* is bound."""
    return all(
        qualifier in bound
        for qualifier, _ in conjunct.columns()
        if qualifier is not None
    ) and all(qualifier is not None for qualifier, _ in conjunct.columns())


def execute_select(db: Database, plan: SelectPlan) -> list[Row]:
    """Run the plan; returns projected rows (dicts keyed by output name)."""
    db.stats["selects"] += 1
    for item in plan.from_items:
        if item.relation_name not in db.tables:
            raise SchemaError(f"unknown relation {item.relation_name!r}")
    names = [item.name for item in plan.from_items]
    if len(set(names)) != len(names):
        raise SchemaError("duplicate FROM aliases")

    conjuncts = _split_conjuncts(plan.where)
    results: list[Row] = []

    def recurse(position: int, env: dict[str, Row], rowids: dict[str, int],
                remaining: list[Expr]) -> None:
        if position == len(plan.from_items):
            if remaining:
                residual = conjoin(remaining)
                if residual is not None and residual.eval(env) is not True:
                    return
            results.append(_project(db, plan, env, rowids))
            return
        item = plan.from_items[position]
        bound = set(env)
        target = item.name
        # collect equality bindings usable for an index probe
        equalities: dict[str, Expr] = {}
        used: list[tuple[Expr, str]] = []
        deferred: list[Expr] = []
        for conjunct in remaining:
            binding = _binding_equalities(conjunct, target, bound)
            if binding is not None and binding[0] not in equalities:
                equalities[binding[0]] = binding[1]
                used.append((conjunct, binding[0]))
            else:
                deferred.append(conjunct)
        # evaluate now-applicable residual predicates for this level
        bound_after = bound | {target}
        applicable_now = [c for c in deferred if _applicable(c, bound_after)]
        still_remaining = [c for c in deferred if c not in applicable_now]

        table = db.table(item.relation_name)
        candidate_rowids = None
        if equalities:
            index = _choose_index(db, item.relation_name, set(equalities))
            if index is not None:
                key = tuple(equalities[column].eval(env) for column in index.columns)
                candidate_rowids = index.lookup(key)
                # equalities covered by the index are consumed; others filter
                covered = set(index.columns)
                applicable_now = applicable_now + [
                    conjunct for conjunct, column in used if column not in covered
                ]
            else:
                applicable_now = applicable_now + [conjunct for conjunct, _ in used]
        if candidate_rowids is None:
            iterator = table.scan()
        else:
            db.stats["index_joins"] += 1
            iterator = (
                (rowid, table.get(rowid))
                for rowid in sorted(candidate_rowids)
                if rowid in table
            )
        for rowid, row in iterator:
            db.stats["rows_scanned"] += 1
            env[target] = row
            rowids[target] = rowid
            if applicable_now:
                predicate = conjoin(applicable_now)
                if predicate is not None and predicate.eval(env) is not True:
                    del env[target]
                    del rowids[target]
                    continue
            recurse(position + 1, env, rowids, still_remaining)
            del env[target]
            del rowids[target]

    recurse(0, {}, {}, conjuncts)
    return results


def _choose_index(db: Database, relation_name: str, columns: set[str]):
    """Best index whose columns are all pinned by the equalities."""
    best = None
    for index in db.indexes.get(relation_name, ()):
        if set(index.columns) <= columns:
            if best is None or len(index.columns) > len(best.columns):
                best = index
    return best


def _project(
    db: Database, plan: SelectPlan, env: dict[str, Row], rowids: dict[str, int]
) -> Row:
    if plan.select_rowids:
        if len(plan.from_items) == 1:
            return {"ROWID": rowids[plan.from_items[0].name]}
        return {f"{name}.ROWID": rid for name, rid in rowids.items()}
    projected: Row = {}
    if plan.columns is None:
        for item in plan.from_items:
            row = env[item.name]
            for column, value in row.items():
                key = column if column not in projected else f"{item.name}.{column}"
                projected[key] = value
    else:
        for column in plan.columns:
            ref = ColumnRef(column.column, column.qualifier)
            projected[column.output_name] = ref.eval(env)
    if plan.include_rowids:
        for name, rowid in rowids.items():
            projected[f"{name}.ROWID"] = rowid
    return projected
