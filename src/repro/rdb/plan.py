"""The unified plan IR: one lowering pipeline for every query path.

Every query the engine runs — ``execute_select``'s join probes,
``Database.find_rowids``'s equality lookups, ``Database.select_rowids``'s
single-relation predicates — lowers through the same three stages:

1. **Logical plan** (:class:`LogicalPlan`) — the :class:`SelectPlan` (or
   rowid-path equivalent) normalized into FROM items plus a canonically
   ordered conjunct list.  Its literal-agnostic :attr:`LogicalPlan.signature`
   keys the plan cache, so two queries that differ only in literal values
   (or in conjunct order) share one compiled artifact.
2. **Physical plan** (:class:`PlanNode` trees) — ``lower_select`` asks the
   optimizer's DP enumerator (:func:`repro.rdb.optimizer.enumerate_joins`)
   for a bushy join tree costed from the statistics subsystem, then
   assigns every conjunct to the lowest operator that can evaluate it:
   :class:`IndexProbe` keys, :class:`HashJoin` keys, :class:`Filter`
   predicates, or root residuals.  :class:`Sort` pins the output to the
   rowid order of the original FROM clause and :class:`Project` /
   :class:`Distinct` shape the rows, so the chosen join order never
   changes what callers observe.  ``PlanNode.explain()`` renders the tree
   with per-node row estimates.
3. **Compiled execution** (:mod:`repro.rdb.compiled`) — the physical tree
   compiles once into nested closures; literals travel in a parameter
   vector extracted per call in the logical plan's canonical order.

SQL NULL semantics are defined once, here, in the predicate lowering:
equality keys never match NULL (index and hash probes with a NULL
component find nothing, and compiled comparisons return *unknown*), so a
NULL-valued probe matches nothing on every path — scan, index or hash.

Plans the compiler does not understand — and every call with
``optimize=False`` — run on the interpreted nested-loop executor at the
bottom of this module, which survives solely as the semantic oracle for
tests and benchmarks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Sequence

from ..errors import SchemaError
from .compiled import (
    CompiledPlan,
    VectorizedPlan,
    compile_tree,
    compile_tree_vectorized,
    dedup_rows,
)
from .expr import ColumnRef, Comparison, Expr, IsNull, Literal, conjoin
from .optimizer import (
    ConjunctInfo,
    JoinTree,
    applicable as _applicable,
    binding_equalities as _binding_equalities,
    choose_index as _choose_index,
    enumerate_joins,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (database -> plan)
    from .database import Database
    from .index import HashIndex

__all__ = [
    "Distinct",
    "Filter",
    "FromItem",
    "HashJoin",
    "IndexProbe",
    "LogicalPlan",
    "NestedLoopJoin",
    "OutputColumn",
    "PlanNode",
    "Project",
    "Scan",
    "SelectPlan",
    "Sort",
    "dedup_rows",
    "execute_select",
    "explain_select",
    "lower_rowid_plan",
    "lower_select",
]

Row = dict[str, Any]


@dataclass(frozen=True)
class FromItem:
    """One entry of the FROM clause: a relation with an optional alias."""

    relation_name: str
    alias: Optional[str] = None

    @property
    def name(self) -> str:
        return self.alias or self.relation_name


@dataclass(frozen=True)
class OutputColumn:
    """One entry of the SELECT list."""

    column: str
    qualifier: Optional[str] = None
    #: output name; defaults to the column name
    label: Optional[str] = None

    @property
    def output_name(self) -> str:
        return self.label or self.column


@dataclass
class SelectPlan:
    """A select-project-join query (no aggregates).

    ``columns=None`` means ``SELECT *`` (all columns of all FROM items,
    qualified names used on collisions).
    """

    from_items: list[FromItem]
    columns: Optional[list[OutputColumn]] = None
    where: Optional[Expr] = None
    #: special ROWID projection support (the paper's PQ4 selects ROWID)
    select_rowids: bool = False
    #: add "<alias>.ROWID" entries next to the projected columns —
    #: probe queries use this to feed translated DELETE statements
    include_rowids: bool = False
    #: SELECT DISTINCT — lowered to a :class:`Distinct` operator
    distinct: bool = False

    def to_sql(self) -> str:
        if self.select_rowids:
            select_list = "ROWID"
        elif self.columns is None:
            select_list = "*"
        else:
            parts = []
            for column in self.columns:
                text = (
                    f"{column.qualifier}.{column.column}"
                    if column.qualifier
                    else column.column
                )
                if column.label and column.label != column.column:
                    text += f" AS {column.label}"
                parts.append(text)
            select_list = ", ".join(parts)
        if self.distinct:
            select_list = f"DISTINCT {select_list}"
        from_list = ", ".join(
            f"{item.relation_name} {item.alias}" if item.alias else item.relation_name
            for item in self.from_items
        )
        sql = f"SELECT {select_list} FROM {from_list}"
        if self.where is not None:
            sql += f" WHERE {self.where.to_sql()}"
        return sql

    def explain(self, db: Database) -> str:
        """The physical operator tree this plan lowers to (rendered)."""
        return explain_select(db, self)


# ---------------------------------------------------------------------------
# logical plan: canonical conjuncts + literal-agnostic signature
# ---------------------------------------------------------------------------

class LogicalPlan:
    """A :class:`SelectPlan` normalized for the planning pipeline.

    Conjuncts are held in a canonical order (stable sort on their
    structural signatures), so plans that differ only in conjunct order
    — or only in literal values — share one :attr:`signature` and
    therefore one plan-cache entry and one compiled artifact.
    :meth:`parameters` extracts the runtime values in the same canonical
    order, which is the slot order the compiler assigns.
    """

    __slots__ = ("plan", "conjuncts", "signature")

    def __init__(
        self, plan: SelectPlan, conjuncts: list[Expr], signature: tuple
    ) -> None:
        self.plan = plan
        self.conjuncts = conjuncts
        self.signature = signature

    @classmethod
    def build(cls, plan: SelectPlan) -> Optional["LogicalPlan"]:
        """Normalize *plan*; None when some conjunct has no structural
        signature (the shape must run interpreted and is not cached)."""
        raw = plan.where.conjuncts() if plan.where is not None else []
        signatures = []
        for conjunct in raw:
            signature = conjunct.signature()
            if signature is None:
                return None
            signatures.append(signature)
        if len(raw) > 1:
            # repr() gives a total order over heterogeneous signature
            # tuples (None vs str components don't compare directly)
            order = sorted(
                range(len(raw)), key=lambda i: (repr(signatures[i]), i)
            )
        else:
            order = range(len(raw))
        conjuncts = [raw[i] for i in order]
        if plan.columns is None:
            columns_part: Optional[tuple] = None
        else:
            columns_part = tuple(
                (column.column, column.qualifier, column.label)
                for column in plan.columns
            )
        signature = (
            tuple((item.relation_name, item.alias) for item in plan.from_items),
            columns_part,
            tuple(signatures[i] for i in order),
            plan.select_rowids,
            plan.include_rowids,
            plan.distinct,
        )
        return cls(plan, conjuncts, signature)

    def parameters(self) -> tuple:
        """Runtime values (literals, IN sets) in canonical slot order."""
        out: list = []
        for conjunct in self.conjuncts:
            conjunct.collect_parameters(out)
        return tuple(out)


# ---------------------------------------------------------------------------
# physical plan IR
# ---------------------------------------------------------------------------

def _shape_sql(expr: Expr) -> str:
    """Render *expr* with literals abstracted to ``?`` — compiled plans
    are literal-agnostic, so explain output must not pin one binding."""
    if isinstance(expr, Literal):
        return "?"
    if isinstance(expr, Comparison):
        return f"{_shape_sql(expr.left)} {expr.op} {_shape_sql(expr.right)}"
    if isinstance(expr, IsNull):
        suffix = "IS NOT NULL" if expr.negate else "IS NULL"
        return f"{_shape_sql(expr.operand)} {suffix}"
    return expr.to_sql()


class PlanNode:
    """Base of the physical operator tree.

    Every node carries ``estimated_rows`` — the optimizer's output-size
    estimate at planning time — surfaced by :meth:`explain`.  ``kind``
    is the compiler's dispatch tag (:mod:`repro.rdb.compiled` compiles
    trees without importing the node classes back).
    """

    kind = "node"
    estimated_rows: float = 0.0

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def label(self) -> str:  # pragma: no cover - overridden everywhere
        return type(self).__name__

    def explain(self) -> str:
        """Indented operator tree with per-node row estimates."""
        lines: list[str] = []

        def render(node: "PlanNode", depth: int) -> None:
            lines.append("  " * depth + node.label())
            for child in node.children():
                render(child, depth + 1)

        render(self, 0)
        return "\n".join(lines)

    def _est(self) -> str:
        return f"(est. {self.estimated_rows:g} rows)"


class Scan(PlanNode):
    """Full scan of one relation, binding its rows to *name*."""

    kind = "scan"

    def __init__(self, name: str, relation_name: str) -> None:
        self.name = name
        self.relation_name = relation_name

    def label(self) -> str:
        alias = "" if self.name == self.relation_name else f" AS {self.name}"
        return f"Scan {self.relation_name}{alias} {self._est()}"


class IndexProbe(PlanNode):
    """One index lookup per activation, keys evaluated against the
    already-bound outer relations (or the parameter vector).

    ``keys`` holds ``(conjunct, value_expr)`` pairs aligned with
    ``index.columns`` — the compiler reuses the conjunct's compiled side
    closures, so parameter slots stay aligned with the logical plan.
    A NULL key component matches nothing (SQL equality).
    """

    kind = "index_probe"

    def __init__(
        self,
        name: str,
        relation_name: str,
        index: "HashIndex",
        keys: tuple,
    ) -> None:
        self.name = name
        self.relation_name = relation_name
        self.index = index
        self.keys = keys

    def label(self) -> str:
        rendered = ", ".join(
            f"{column} = {_shape_sql(value)}"
            for column, (_conjunct, value) in zip(self.index.columns, self.keys)
        )
        return (
            f"IndexProbe {self.relation_name} via {self.index.name} "
            f"[{rendered}] {self._est()}"
        )


class Filter(PlanNode):
    """Residual predicates applied at the lowest point they are bound."""

    kind = "filter"

    def __init__(self, child: PlanNode, predicates: tuple) -> None:
        self.child = child
        self.predicates = predicates
        self.estimated_rows = child.estimated_rows

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        rendered = " AND ".join(_shape_sql(p) for p in self.predicates)
        return f"Filter [{rendered}] {self._est()}"


class NestedLoopJoin(PlanNode):
    """Re-run *inner* for every row the *outer* side emits."""

    kind = "nested_loop"

    def __init__(self, outer: PlanNode, inner: PlanNode) -> None:
        self.outer = outer
        self.inner = inner

    def children(self) -> tuple[PlanNode, ...]:
        return (self.outer, self.inner)

    def label(self) -> str:
        return f"NestedLoopJoin {self._est()}"


class HashJoin(PlanNode):
    """Build a transient hash table over *inner* once, probe per outer row.

    ``keys`` holds ``(conjunct, outer_expr, inner_expr)`` triples; rows
    whose inner key has a NULL component are never added to the build,
    and NULL probe keys find nothing (SQL equality).
    """

    kind = "hash_join"

    def __init__(self, outer: PlanNode, inner: PlanNode, keys: tuple) -> None:
        self.outer = outer
        self.inner = inner
        self.keys = keys

    def children(self) -> tuple[PlanNode, ...]:
        return (self.outer, self.inner)

    def label(self) -> str:
        rendered = " AND ".join(
            f"{_shape_sql(outer)} = {_shape_sql(inner)}"
            for _conjunct, outer, inner in self.keys
        )
        return f"HashJoin [{rendered}] {self._est()}"


class Sort(PlanNode):
    """Order the output on the rowid tuple of the original FROM clause,
    so results are independent of the join order chosen."""

    kind = "sort"

    def __init__(self, child: PlanNode, names: tuple[str, ...]) -> None:
        self.child = child
        self.names = names
        self.estimated_rows = child.estimated_rows

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Sort [rowid order: {', '.join(self.names)}] {self._est()}"


class Project(PlanNode):
    """Shape the output rows.

    ``mode`` is ``"star"`` (all columns, qualified on collisions),
    ``"columns"`` (an explicit SELECT list), ``"rowids"`` (the ROWID
    dictionaries probe queries ask for) or ``"rowid_list"`` (bare rowid
    integers — the ``find_rowids`` / ``select_rowids`` output).
    """

    kind = "project"

    def __init__(
        self,
        child: PlanNode,
        mode: str,
        from_items: Sequence[FromItem],
        columns: Optional[list[OutputColumn]] = None,
        include_rowids: bool = False,
    ) -> None:
        self.child = child
        self.mode = mode
        self.from_items = list(from_items)
        self.columns = columns
        self.include_rowids = include_rowids
        self.estimated_rows = child.estimated_rows

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        if self.mode == "star":
            what = "*"
        elif self.mode == "columns":
            what = ", ".join(column.output_name for column in self.columns)
        elif self.mode == "rowids":
            what = "ROWID"
        else:
            what = "rowid list"
        suffix = " +rowids" if self.include_rowids else ""
        return f"Project [{what}]{suffix} {self._est()}"


class Distinct(PlanNode):
    """Drop duplicate projected rows, keeping first occurrences."""

    kind = "distinct"

    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.estimated_rows = child.estimated_rows

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Distinct {self._est()}"


# ---------------------------------------------------------------------------
# lowering: logical plan -> physical operator tree
# ---------------------------------------------------------------------------

class _Lowering:
    """Tracks which conjuncts the tree walk has already assigned."""

    def __init__(self, db: Database, conjuncts: Sequence[Expr]) -> None:
        self.db = db
        self.infos = [ConjunctInfo(conjunct) for conjunct in conjuncts]
        self.consumed: set[int] = set()

    # -- conjunct bookkeeping -------------------------------------------------

    def _bindings(self, target: str, bound: set[str]) -> list[tuple]:
        """Equality bindings for *target*: (column, info, value_expr),
        first conjunct per column (mirrors the estimator)."""
        seen: set[str] = set()
        out = []
        for info in self.infos:
            if id(info) in self.consumed:
                continue
            binding = info.binding_for(target, bound)
            if binding is not None and binding[0] not in seen:
                seen.add(binding[0])
                out.append((binding[0], info, binding[1]))
        return out

    def _take_applicable(
        self, bound_after: set[str], already: set[frozenset]
    ) -> list[Expr]:
        """Consume conjuncts that become evaluable at *bound_after* but
        were not evaluable at any of the *already*-bound subsets."""
        taken: list[Expr] = []
        for info in self.infos:
            if id(info) in self.consumed or not info.qualified_only:
                continue
            if not (info.qualifiers <= bound_after):
                continue
            if any(info.qualifiers <= prior for prior in already):
                continue  # pragma: no cover - subtree walks consume first
            self.consumed.add(id(info))
            taken.append(info.expr)
        return taken

    def residual(self) -> list[Expr]:
        """Everything never assigned (e.g. unqualified references)."""
        out = []
        for info in self.infos:
            if id(info) not in self.consumed:
                self.consumed.add(id(info))
                out.append(info.expr)
        return out

    # -- access paths ---------------------------------------------------------

    @staticmethod
    def _inner_ref(info: ConjunctInfo, value_expr: Expr) -> Expr:
        """The target-side expression of a binding's conjunct."""
        expr = info.expr
        return expr.right if value_expr is expr.left else expr.left

    def _access_decision(
        self, item: FromItem, bound: set[str]
    ) -> tuple[list[tuple], Optional[Any]]:
        """The (bindings, covering index) pair for opening *item* —
        derived once, shared by the branch decision and the node build."""
        bindings = self._bindings(item.name, bound)
        index = (
            _choose_index(self.db, item.relation_name, {b[0] for b in bindings})
            if bindings
            else None
        )
        return bindings, index

    def access(
        self,
        item: FromItem,
        bound: set[str],
        est_rows: float,
        decision: Optional[tuple] = None,
    ) -> PlanNode:
        """Open *item* given the *bound* outer names: an
        :class:`IndexProbe` when the equality bindings pin an index, a
        :class:`HashJoin` build candidate or plain :class:`Scan`
        otherwise (the join wrapper is the caller's decision), with the
        relation's own predicates attached as a :class:`Filter`.
        *decision* carries a precomputed :meth:`_access_decision` so a
        caller that already branched on it never re-derives it."""
        target = item.name
        bindings, index = (
            decision if decision is not None
            else self._access_decision(item, bound)
        )
        node: PlanNode
        if index is not None:
            by_column = {column: (info, value) for column, info, value in bindings}
            keys = []
            for column in index.columns:
                info, value = by_column[column]
                self.consumed.add(id(info))
                keys.append((info.expr, value))
            node = IndexProbe(target, item.relation_name, index, tuple(keys))
        else:
            node = Scan(target, item.relation_name)
        node.estimated_rows = est_rows
        own = self._take_applicable({target}, already=set())
        if own:
            node = Filter(node, tuple(own))
            node.estimated_rows = est_rows
        return node

    def hash_keys(
        self, target_names: frozenset, bound: set[str]
    ) -> tuple:
        """Consume the equality conjuncts joining *bound* (or literals)
        to the *target_names* subtree; returns HashJoin key triples."""
        keys = []
        for info in self.infos:
            if id(info) in self.consumed:
                continue
            for qualifier, _column, value_expr, value_qualifier in info.eq_sides:
                if qualifier not in target_names:
                    continue
                if value_qualifier is not None and value_qualifier not in bound:
                    continue
                self.consumed.add(id(info))
                keys.append(
                    (info.expr, value_expr, self._inner_ref(info, value_expr))
                )
                break
        return tuple(keys)

    # -- tree walk ------------------------------------------------------------

    def lower_join(
        self, tree: JoinTree, from_items: Sequence[FromItem]
    ) -> tuple[PlanNode, set[str]]:
        if tree.is_leaf:
            node = self.access(tree.item, set(), tree.est_rows)
            return node, {tree.item.name}
        outer_node, outer_names = self.lower_join(tree.outer, from_items)
        if tree.inner.is_leaf:
            item = tree.inner.item
            target = item.name
            # what the DP priced for one instantiation of this inner —
            # the leaf's own est_rows is its standalone estimate
            inner_est = (
                tree.inner_emitted
                if tree.inner_emitted is not None
                else tree.inner.est_rows
            )
            bindings, index = self._access_decision(item, outer_names)
            if index is not None:
                inner_node = self.access(
                    item, outer_names, inner_est,
                    decision=(bindings, index),
                )
                node: PlanNode = NestedLoopJoin(outer_node, inner_node)
            elif bindings:
                # build side: the leaf with its own predicates applied
                # during the (single) build pass
                inner_node = self.access(item, set(), inner_est)
                keys = self.hash_keys(frozenset((target,)), outer_names)
                node = HashJoin(outer_node, inner_node, keys)
            else:
                inner_node = self.access(item, set(), inner_est)
                node = NestedLoopJoin(outer_node, inner_node)
            inner_names = {target}
        else:
            inner_node, inner_names = self.lower_join(tree.inner, from_items)
            keys = self.hash_keys(frozenset(inner_names), outer_names)
            node = HashJoin(outer_node, inner_node, keys)
        node.estimated_rows = tree.est_rows
        bound_after = outer_names | inner_names
        newly = self._take_applicable(
            bound_after, already={frozenset(outer_names), frozenset(inner_names)}
        )
        if newly:
            node = Filter(node, tuple(newly))
            node.estimated_rows = tree.est_rows
        return node, bound_after


def lower_select(db: Database, logical: LogicalPlan) -> tuple[PlanNode, JoinTree]:
    """Logical plan → physical operator tree (plus the join tree the
    enumerator chose, for the caller's bushy/reorder accounting)."""
    plan = logical.plan
    tree = enumerate_joins(db, plan.from_items, logical.conjuncts)
    lowering = _Lowering(db, logical.conjuncts)
    node, _bound = lowering.lower_join(tree, plan.from_items)
    residual = lowering.residual()
    if residual:
        node = Filter(node, tuple(residual))
        node.estimated_rows = tree.est_rows
    node = Sort(node, tuple(item.name for item in plan.from_items))
    if plan.select_rowids:
        mode = "rowids"
    elif plan.columns is None:
        mode = "star"
    else:
        mode = "columns"
    node = Project(
        node, mode, plan.from_items, plan.columns, plan.include_rowids
    )
    if plan.distinct:
        node = Distinct(node)
    _verify_lowered(db, node, tuple(item.name for item in plan.from_items))
    return node, tree


def lower_rowid_plan(
    db: Database, relation_name: str, conjuncts: Sequence[Expr]
) -> PlanNode:
    """The single-relation rowid paths' lowering: same IR, same NULL
    semantics, ``rowid_list`` projection (ascending rowids via Sort).

    Deliberately bypasses the statistics subsystem — a single relation
    has exactly one access decision (widest covering index or scan), and
    these plans compile on the constraint-check hot path where a lazy
    statistics build would charge DML for a planner-only scan.
    """
    item = FromItem(relation_name)
    lowering = _Lowering(db, conjuncts)
    node = lowering.access(item, set(), float(len(db.table(relation_name))))
    residual = lowering.residual()
    if residual:
        node = Filter(node, tuple(residual))
    node = Sort(node, (relation_name,))
    root = Project(node, "rowid_list", [item])
    _verify_lowered(db, root, (relation_name,))
    return root


def _verify_lowered(
    db: Database, root: PlanNode, expected_names: Sequence[str]
) -> None:
    """Debug hook: statically verify the lowered tree when the
    ``REPRO_PLAN_VERIFY`` environment variable arms it (lazy import —
    the verifier lives above the engine, in :mod:`repro.analysis`)."""
    if os.environ.get("REPRO_PLAN_VERIFY", "") in ("", "0"):
        return
    from ..analysis.planlint import verify_or_raise

    verify_or_raise(db, root, expected_names)


def _verify_vectorized(
    db: Database, root: PlanNode, compiled: "VectorizedPlan"
) -> None:
    """Debug hook: statically verify a vectorized lowering's stage list
    against its physical tree when ``REPRO_PLAN_VERIFY`` arms it."""
    if os.environ.get("REPRO_PLAN_VERIFY", "") in ("", "0"):
        return
    from ..analysis.planlint import verify_vector_or_raise

    verify_vector_or_raise(db, root, compiled)


#: executor counters the planning path mutates — EXPLAIN must not
_PLANNING_COUNTERS = ("plans_compiled", "plan_cache_hits", "reorders",
                      "bushy_plans", "replans_avoided", "vectorized_plans")


def explain_select(db: Database, plan: SelectPlan) -> str:
    """EXPLAIN: the (cached) physical tree a plan runs through.

    Observational for the execution counters: `plans_compiled`,
    `plan_cache_hits`, `reorders`, `bushy_plans` and `replans_avoided`
    track query *executions*, and an EXPLAIN is not one — planning work
    done here is not counted there (the compiled artifact still lands
    in the plan cache, so a later execution of the same shape skips
    planning).  `stats_rebuilds` is deliberately *excluded* from that
    contract: a lazy statistics build triggered by the enumerator is
    real, cached work the next planner access reuses, and restoring its
    counter would make it lie.  Plans the pipeline cannot lower —
    unknown expression nodes, or an uncompilable shape — report the
    interpreted fallback instead.
    """
    logical = LogicalPlan.build(plan)
    if logical is None:
        return (
            "Interpreted nested loop (shape has no structural signature; "
            "runs on the oracle executor)"
        )
    snapshot = {counter: db.stats[counter] for counter in _PLANNING_COUNTERS}
    try:
        compiled = _plan(db, plan, logical)
    finally:
        db.stats.update(snapshot)
    if compiled is None:
        return (
            "Interpreted nested loop (plan not compilable; "
            "runs on the oracle executor)"
        )
    return compiled.explain_text


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------

def execute_select(
    db: Database, plan: SelectPlan, optimize: bool = True
) -> list[Row]:
    """Run the plan; returns projected rows (dicts keyed by output name).

    ``optimize=False`` forces the interpreted FROM-order nested-loop
    executor — the pre-optimizer baseline benchmarks compare against.
    """
    db.stats["selects"] += 1
    for item in plan.from_items:
        if item.relation_name not in db.tables:
            raise SchemaError(f"unknown relation {item.relation_name!r}")
    names = [item.name for item in plan.from_items]
    if len(set(names)) != len(names):
        raise SchemaError("duplicate FROM aliases")

    if not plan.from_items:
        # degenerate no-FROM query: one empty row (the DP has no
        # relations to enumerate — the oracle defines the semantics)
        return _execute_interpreted(db, plan)
    if db.oracle_mode:
        optimize = False
    if optimize:
        logical = LogicalPlan.build(plan)
        if logical is not None:
            compiled = _plan(db, plan, logical)
            if compiled is not None:
                return compiled.run(db, logical.parameters())
    return _execute_interpreted(db, plan)


def _vectorize_forced() -> Optional[bool]:
    """The ``REPRO_VECTORIZE`` override: None (estimate-driven policy),
    False (``"0"``: force row-at-a-time) or True (force vectorized)."""
    value = os.environ.get("REPRO_VECTORIZE", "")
    if value == "":
        return None
    return value != "0"


def _scan_row_estimate(db: Database, node: PlanNode) -> int:
    """Summed row counts of the Scan leaves — the executor-choice
    estimate.  Index probes are excluded: they emit a bucket at a time,
    so batching has little interpreter overhead to amortize there."""
    if node.kind == "scan":
        return len(db.table(node.relation_name))
    if node.kind == "index_probe":
        return 0
    return sum(_scan_row_estimate(db, child) for child in node.children())


def _plan(
    db: Database, plan: SelectPlan, logical: LogicalPlan
) -> Optional[CompiledPlan | VectorizedPlan]:
    """Cache lookup → (lower + compile) → cache store.

    Executor choice happens here: when the Scan-leaf row estimate clears
    ``db.vectorize_threshold`` (or ``REPRO_VECTORIZE=1`` forces it), the
    shape compiles through the vectorized batch compiler, falling back
    to the row-at-a-time closures when that declines.  A cached artifact
    compiled the other way than a *forced* choice is recompiled (the
    cache put overwrites); under the default policy a cache hit is
    served as-is, whichever executor it compiled for.
    """
    forced = _vectorize_forced()
    entry = db.plan_cache.get(logical.signature, db)
    if entry is not None:
        compiled = entry.compiled
        if compiled is None or forced is None or compiled.vectorized == forced:
            if compiled is not None:
                db.stats["plan_cache_hits"] += 1
            return compiled
    root, tree = lower_select(db, logical)
    positions = tree.leaf_positions()
    reordered = positions != sorted(positions)
    bushy = tree.is_bushy()
    if forced is not None:
        vectorize = forced
    else:
        vectorize = _scan_row_estimate(db, root) >= db.vectorize_threshold
    compiled = None
    if vectorize:
        compiled = compile_tree_vectorized(
            db, root, logical.conjuncts, reordered=reordered, bushy=bushy
        )
        if compiled is not None:
            _verify_vectorized(db, root, compiled)
    if compiled is None:
        compiled = compile_tree(
            db, root, logical.conjuncts, reordered=reordered, bushy=bushy
        )
    relations = {item.relation_name for item in plan.from_items}
    db.plan_cache.put(logical.signature, db, compiled, relations)
    if compiled is not None:
        db.stats["plans_compiled"] += 1
        if compiled.vectorized:
            db.stats["vectorized_plans"] += 1
        if compiled.reordered:
            db.stats["reorders"] += 1
        if compiled.bushy:
            db.stats["bushy_plans"] += 1
    return compiled


def _execute_interpreted(db: Database, plan: SelectPlan) -> list[Row]:
    """FROM-order nested-loop execution, one ``Expr`` walk per row.

    Kept as the semantic oracle: the compiled executor must return the
    same rows (tests/property/test_prop_optimizer.py pins that down).
    """
    conjuncts = plan.where.conjuncts() if plan.where is not None else []
    names = tuple(item.name for item in plan.from_items)
    keyed_results: list[tuple[tuple, Row]] = []

    def recurse(position: int, env: dict[str, Row], rowids: dict[str, int],
                remaining: list[Expr]) -> None:
        if position == len(plan.from_items):
            if remaining:
                residual = conjoin(remaining)
                if residual is not None and residual.eval(env) is not True:
                    return
            key = tuple(rowids[name] for name in names)
            keyed_results.append((key, _project(db, plan, env, rowids)))
            return
        item = plan.from_items[position]
        bound = set(env)
        target = item.name
        # collect equality bindings usable for an index probe
        equalities: dict[str, Expr] = {}
        used: list[tuple[Expr, str]] = []
        deferred: list[Expr] = []
        for conjunct in remaining:
            binding = _binding_equalities(conjunct, target, bound)
            if binding is not None and binding[0] not in equalities:
                equalities[binding[0]] = binding[1]
                used.append((conjunct, binding[0]))
            else:
                deferred.append(conjunct)
        # evaluate now-applicable residual predicates for this level
        bound_after = bound | {target}
        applicable_now = [c for c in deferred if _applicable(c, bound_after)]
        still_remaining = [c for c in deferred if c not in applicable_now]

        table = db.table(item.relation_name)
        candidate_rowids = None
        if equalities:
            index = _choose_index(db, item.relation_name, set(equalities))
            if index is not None:
                key = tuple(equalities[column].eval(env) for column in index.columns)
                candidate_rowids = index.lookup_rowids(key)
                # equalities covered by the index are consumed; others filter
                covered = set(index.columns)
                applicable_now = applicable_now + [
                    conjunct for conjunct, column in used if column not in covered
                ]
            else:
                applicable_now = applicable_now + [conjunct for conjunct, _ in used]
        if candidate_rowids is None:
            iterator = table.scan()
        else:
            db.stats["index_joins"] += 1
            iterator = (
                (rowid, table.get(rowid))
                for rowid in candidate_rowids
                if rowid in table
            )
        # hoisted out of the row loop: one conjunction per level entry
        predicate = conjoin(applicable_now) if applicable_now else None
        for rowid, row in iterator:
            db.stats["rows_scanned"] += 1
            env[target] = row
            rowids[target] = rowid
            if predicate is not None and predicate.eval(env) is not True:
                del env[target]
                del rowids[target]
                continue
            recurse(position + 1, env, rowids, still_remaining)
            del env[target]
            del rowids[target]

    recurse(0, {}, {}, conjuncts)
    # deterministic output: rowid order of the original FROM clause,
    # established once here instead of sorting every index probe
    keyed_results.sort(key=lambda pair: pair[0])
    rows = [row for _, row in keyed_results]
    if plan.distinct:
        rows = dedup_rows(rows)
    return rows


def _project(
    db: Database, plan: SelectPlan, env: dict[str, Row], rowids: dict[str, int]
) -> Row:
    if plan.select_rowids:
        if len(plan.from_items) == 1:
            return {"ROWID": rowids[plan.from_items[0].name]}
        return {f"{name}.ROWID": rid for name, rid in rowids.items()}
    projected: Row = {}
    if plan.columns is None:
        for item in plan.from_items:
            row = env[item.name]
            for column, value in row.items():
                key = column if column not in projected else f"{item.name}.{column}"
                projected[key] = value
    else:
        for column in plan.columns:
            ref = ColumnRef(column.column, column.qualifier)
            projected[column.output_name] = ref.eval(env)
    if plan.include_rowids:
        for name, rowid in rowids.items():
            projected[f"{name}.ROWID"] = rowid
    return projected
