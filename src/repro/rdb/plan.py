"""SELECT execution: cost-aware join ordering + compiled evaluation.

``execute_select`` runs a :class:`SelectPlan` through three layers:

1. :mod:`repro.rdb.compiled` — a per-database **plan cache** keyed on a
   literal-agnostic structural signature.  Repeated probe shapes (the
   common case inside ``UpdateSession`` batches) skip both planning and
   compilation; entries are invalidated by DDL against the relations
   they read, while DML drift below the re-planning threshold
   (``db.replan_threshold``) keeps them alive.
2. :mod:`repro.rdb.optimizer` — on a cache miss, the FROM items are
   reordered greedy smallest-bound-first, every estimate drawn from
   the statistics subsystem (:mod:`repro.rdb.statistics`: distinct
   counts, equi-depth histograms, null fractions) plus
   equality-binding reachability, seeded by the most selective
   indexed relation.
3. compiled execution — index nested loops where an index covers the
   join columns, a transient **hash join** where equality conjuncts
   exist but no index does (what joins against unindexed temp-table
   materializations degrade to), scans otherwise; predicates and
   projections run as closures compiled once per plan shape.

Results are emitted in rowid order of the *original* FROM clause (one
sort at projection time), so the chosen join order never changes what
callers observe.  Plans the compiler does not understand — and every
call with ``optimize=False`` — run on the interpreted nested-loop
executor, which is kept as the semantic oracle for tests/benchmarks.

The executor maintains counters in ``db.stats``: ``selects``,
``rows_scanned``, ``index_joins``, plus the optimizer-layer counters
``plans_compiled``, ``plan_cache_hits``, ``hash_joins``, ``reorders``,
``stats_rebuilds`` and ``replans_avoided`` (see tests/README.md for
the full vocabulary).

Queries are represented programmatically (:class:`SelectPlan`); the
textual SQL layer (:mod:`repro.rdb.sql`) parses into the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..errors import SchemaError
from .compiled import CompiledPlan, compile_plan, plan_signature
from .database import Database
from .expr import ColumnRef, Expr, conjoin
from .optimizer import (
    applicable as _applicable,
    binding_equalities as _binding_equalities,
    choose_index as _choose_index,
    order_from_items,
)

__all__ = ["FromItem", "OutputColumn", "SelectPlan", "execute_select"]

Row = dict[str, Any]


@dataclass(frozen=True)
class FromItem:
    """One entry of the FROM clause: a relation with an optional alias."""

    relation_name: str
    alias: Optional[str] = None

    @property
    def name(self) -> str:
        return self.alias or self.relation_name


@dataclass(frozen=True)
class OutputColumn:
    """One entry of the SELECT list."""

    column: str
    qualifier: Optional[str] = None
    #: output name; defaults to the column name
    label: Optional[str] = None

    @property
    def output_name(self) -> str:
        return self.label or self.column


@dataclass
class SelectPlan:
    """A select-project-join query (no DISTINCT, no aggregates).

    ``columns=None`` means ``SELECT *`` (all columns of all FROM items,
    qualified names used on collisions).
    """

    from_items: list[FromItem]
    columns: Optional[list[OutputColumn]] = None
    where: Optional[Expr] = None
    #: special ROWID projection support (the paper's PQ4 selects ROWID)
    select_rowids: bool = False
    #: add "<alias>.ROWID" entries next to the projected columns —
    #: probe queries use this to feed translated DELETE statements
    include_rowids: bool = False

    def to_sql(self) -> str:
        if self.select_rowids:
            select_list = "ROWID"
        elif self.columns is None:
            select_list = "*"
        else:
            parts = []
            for column in self.columns:
                text = (
                    f"{column.qualifier}.{column.column}"
                    if column.qualifier
                    else column.column
                )
                if column.label and column.label != column.column:
                    text += f" AS {column.label}"
                parts.append(text)
            select_list = ", ".join(parts)
        from_list = ", ".join(
            f"{item.relation_name} {item.alias}" if item.alias else item.relation_name
            for item in self.from_items
        )
        sql = f"SELECT {select_list} FROM {from_list}"
        if self.where is not None:
            sql += f" WHERE {self.where.to_sql()}"
        return sql


def _split_conjuncts(where: Optional[Expr]) -> list[Expr]:
    if where is None:
        return []
    return where.conjuncts()


def execute_select(
    db: Database, plan: SelectPlan, optimize: bool = True
) -> list[Row]:
    """Run the plan; returns projected rows (dicts keyed by output name).

    ``optimize=False`` forces the interpreted FROM-order nested-loop
    executor — the pre-optimizer baseline benchmarks compare against.
    """
    db.stats["selects"] += 1
    for item in plan.from_items:
        if item.relation_name not in db.tables:
            raise SchemaError(f"unknown relation {item.relation_name!r}")
    names = [item.name for item in plan.from_items]
    if len(set(names)) != len(names):
        raise SchemaError("duplicate FROM aliases")

    if optimize:
        compiled = _plan(db, plan)
        if compiled is not None:
            return compiled.run(db, plan)
    return _execute_interpreted(db, plan)


def _plan(db: Database, plan: SelectPlan) -> Optional[CompiledPlan]:
    """Cache lookup → (order + compile) → cache store."""
    signature = plan_signature(plan)
    if signature is None:
        return None
    entry = db.plan_cache.get(signature, db)
    if entry is not None:
        if entry.compiled is not None:
            db.stats["plan_cache_hits"] += 1
        return entry.compiled
    conjuncts = _split_conjuncts(plan.where)
    if len(plan.from_items) > 1:
        order = order_from_items(db, plan.from_items, conjuncts)
    else:
        order = list(range(len(plan.from_items)))
    compiled = compile_plan(db, plan, order)
    relations = {item.relation_name for item in plan.from_items}
    db.plan_cache.put(signature, db, compiled, relations)
    if compiled is not None:
        db.stats["plans_compiled"] += 1
        if compiled.reordered:
            db.stats["reorders"] += 1
    return compiled


def _execute_interpreted(db: Database, plan: SelectPlan) -> list[Row]:
    """FROM-order nested-loop execution, one ``Expr`` walk per row.

    Kept as the semantic oracle: the compiled executor must return the
    same rows (tests/property/test_prop_optimizer.py pins that down).
    """
    conjuncts = _split_conjuncts(plan.where)
    names = tuple(item.name for item in plan.from_items)
    keyed_results: list[tuple[tuple, Row]] = []

    def recurse(position: int, env: dict[str, Row], rowids: dict[str, int],
                remaining: list[Expr]) -> None:
        if position == len(plan.from_items):
            if remaining:
                residual = conjoin(remaining)
                if residual is not None and residual.eval(env) is not True:
                    return
            key = tuple(rowids[name] for name in names)
            keyed_results.append((key, _project(db, plan, env, rowids)))
            return
        item = plan.from_items[position]
        bound = set(env)
        target = item.name
        # collect equality bindings usable for an index probe
        equalities: dict[str, Expr] = {}
        used: list[tuple[Expr, str]] = []
        deferred: list[Expr] = []
        for conjunct in remaining:
            binding = _binding_equalities(conjunct, target, bound)
            if binding is not None and binding[0] not in equalities:
                equalities[binding[0]] = binding[1]
                used.append((conjunct, binding[0]))
            else:
                deferred.append(conjunct)
        # evaluate now-applicable residual predicates for this level
        bound_after = bound | {target}
        applicable_now = [c for c in deferred if _applicable(c, bound_after)]
        still_remaining = [c for c in deferred if c not in applicable_now]

        table = db.table(item.relation_name)
        candidate_rowids = None
        if equalities:
            index = _choose_index(db, item.relation_name, set(equalities))
            if index is not None:
                key = tuple(equalities[column].eval(env) for column in index.columns)
                candidate_rowids = index.lookup_rowids(key)
                # equalities covered by the index are consumed; others filter
                covered = set(index.columns)
                applicable_now = applicable_now + [
                    conjunct for conjunct, column in used if column not in covered
                ]
            else:
                applicable_now = applicable_now + [conjunct for conjunct, _ in used]
        if candidate_rowids is None:
            iterator = table.scan()
        else:
            db.stats["index_joins"] += 1
            iterator = (
                (rowid, table.get(rowid))
                for rowid in candidate_rowids
                if rowid in table
            )
        # hoisted out of the row loop: one conjunction per level entry
        predicate = conjoin(applicable_now) if applicable_now else None
        for rowid, row in iterator:
            db.stats["rows_scanned"] += 1
            env[target] = row
            rowids[target] = rowid
            if predicate is not None and predicate.eval(env) is not True:
                del env[target]
                del rowids[target]
                continue
            recurse(position + 1, env, rowids, still_remaining)
            del env[target]
            del rowids[target]

    recurse(0, {}, {}, conjuncts)
    # deterministic output: rowid order of the original FROM clause,
    # established once here instead of sorting every index probe
    keyed_results.sort(key=lambda pair: pair[0])
    return [row for _, row in keyed_results]


def _project(
    db: Database, plan: SelectPlan, env: dict[str, Row], rowids: dict[str, int]
) -> Row:
    if plan.select_rowids:
        if len(plan.from_items) == 1:
            return {"ROWID": rowids[plan.from_items[0].name]}
        return {f"{name}.ROWID": rid for name, rid in rowids.items()}
    projected: Row = {}
    if plan.columns is None:
        for item in plan.from_items:
            row = env[item.name]
            for column, value in row.items():
                key = column if column not in projected else f"{item.name}.{column}"
                projected[key] = value
    else:
        for column in plan.columns:
            ref = ColumnRef(column.column, column.qualifier)
            projected[column.output_name] = ref.eval(env)
    if plan.include_rowids:
        for name, rowid in rowids.items():
            projected[f"{name}.ROWID"] = rowid
    return projected
