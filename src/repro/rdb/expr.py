"""Scalar and boolean expressions over relational tuples.

These expression trees serve three masters:

* CHECK constraints on a relation (``price > 0.00``),
* WHERE clauses of queries executed by the engine,
* the *probe queries* U-Filter composes in its data-driven step, which
  must also be renderable back into SQL text (``to_sql``).

An expression is evaluated against an *environment*: a mapping from
range-variable name (usually the relation name or an alias) to a row
mapping.  Single-relation expressions (CHECK constraints) may use bare
column references which resolve against the sole row in the environment.

SQL three-valued logic is honoured: comparisons involving NULL yield
``None`` (unknown), ``AND``/``OR``/``NOT`` propagate unknowns, and a
WHERE clause only keeps rows for which the predicate is truly ``True``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Optional

from ..errors import SchemaError
from .types import sql_literal

__all__ = [
    "Expr",
    "Literal",
    "ColumnRef",
    "Comparison",
    "And",
    "Or",
    "Not",
    "IsNull",
    "InSubquery",
    "COMPARATORS",
    "col",
    "lit",
    "conjoin",
]

Row = Mapping[str, Any]
Env = Mapping[str, Row]


def _cmp_eq(a: Any, b: Any) -> bool:
    return a == b


def _cmp_ne(a: Any, b: Any) -> bool:
    return a != b


def _cmp_lt(a: Any, b: Any) -> bool:
    return a < b


def _cmp_le(a: Any, b: Any) -> bool:
    return a <= b


def _cmp_gt(a: Any, b: Any) -> bool:
    return a > b


def _cmp_ge(a: Any, b: Any) -> bool:
    return a >= b


COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": _cmp_eq,
    "<>": _cmp_ne,
    "!=": _cmp_ne,
    "<": _cmp_lt,
    "<=": _cmp_le,
    ">": _cmp_gt,
    ">=": _cmp_ge,
}

#: logical negation of each comparison operator, used by the
#: satisfiability analysis in the core package.
NEGATED_OP = {
    "=": "<>",
    "<>": "=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


class Expr:
    """Base class of all expression nodes."""

    def eval(self, env: Env) -> Any:
        raise NotImplementedError

    def to_sql(self) -> str:
        raise NotImplementedError

    # structural identity for the plan-compilation cache -------------------

    def signature(self) -> Optional[tuple]:
        """A hashable structural key with runtime values abstracted away.

        Two expressions with the same signature differ at most in literal
        values and pre-materialized subquery sets — exactly what
        :meth:`collect_parameters` extracts.  ``None`` marks a node the
        compiled executor does not understand (the plan then runs
        interpreted).
        """
        return None

    def collect_parameters(self, out: list) -> None:
        """Append this tree's runtime values (literals, subquery sets) to
        *out* in a canonical order shared with the plan compiler."""

    def columns(self) -> set[tuple[Optional[str], str]]:
        """All ``(qualifier, column)`` references appearing in the tree."""
        out: set[tuple[Optional[str], str]] = set()
        self._collect_columns(out)
        return out

    def _collect_columns(self, out: set[tuple[Optional[str], str]]) -> None:
        pass

    # conjunction flattening, handy for predicate analysis ------------------

    def conjuncts(self) -> list["Expr"]:
        """Flatten top-level ANDs into a list of conjuncts."""
        return [self]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.to_sql()}>"


class Literal(Expr):
    """A constant value."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def eval(self, env: Env) -> Any:
        return self.value

    def to_sql(self) -> str:
        return sql_literal(self.value)

    def signature(self) -> tuple:
        return ("lit?",)

    def collect_parameters(self, out: list) -> None:
        out.append(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("lit", self.value))


class ColumnRef(Expr):
    """A (possibly qualified) column reference, e.g. ``book.pubid``."""

    def __init__(self, column: str, qualifier: Optional[str] = None) -> None:
        self.column = column
        self.qualifier = qualifier

    def eval(self, env: Env) -> Any:
        if self.qualifier is not None:
            row = env.get(self.qualifier)
            if row is None:
                raise SchemaError(f"unknown range variable {self.qualifier!r}")
            if self.column not in row:
                raise SchemaError(
                    f"relation {self.qualifier!r} has no column {self.column!r}"
                )
            return row[self.column]
        # Unqualified: resolve against the unique row that has the column.
        # An ambiguity is tolerated when every candidate agrees on the
        # value (the paper's PQ1 selects an unqualified ``bookid`` from a
        # book ⋈ review join where both sides carry equal values).
        hits = [row for row in env.values() if self.column in row]
        if not hits:
            raise SchemaError(f"unknown column {self.column!r}")
        values = {row[self.column] for row in hits}
        if len(values) > 1:
            raise SchemaError(f"ambiguous column {self.column!r}")
        return hits[0][self.column]

    def to_sql(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.column}"
        return self.column

    def _collect_columns(self, out: set[tuple[Optional[str], str]]) -> None:
        out.add((self.qualifier, self.column))

    def signature(self) -> tuple:
        return ("col", self.qualifier, self.column)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ColumnRef)
            and self.column == other.column
            and self.qualifier == other.qualifier
        )

    def __hash__(self) -> int:
        return hash(("col", self.qualifier, self.column))


class Comparison(Expr):
    """``left op right`` with SQL NULL semantics."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in COMPARATORS:
            raise SchemaError(f"unknown comparison operator {op!r}")
        self.op = "<>" if op == "!=" else op
        self.left = left
        self.right = right
        self._comparator = COMPARATORS[self.op]

    def eval(self, env: Env) -> Optional[bool]:
        lhs = self.left.eval(env)
        rhs = self.right.eval(env)
        if lhs is None or rhs is None:
            return None
        return self._comparator(lhs, rhs)

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.op} {self.right.to_sql()}"

    def _collect_columns(self, out: set[tuple[Optional[str], str]]) -> None:
        self.left._collect_columns(out)
        self.right._collect_columns(out)

    def negated(self) -> "Comparison":
        return Comparison(NEGATED_OP[self.op], self.left, self.right)

    def signature(self) -> Optional[tuple]:
        left = self.left.signature()
        right = self.right.signature()
        if left is None or right is None:
            return None
        return ("cmp", self.op, left, right)

    def collect_parameters(self, out: list) -> None:
        self.left.collect_parameters(out)
        self.right.collect_parameters(out)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("cmp", self.op, self.left, self.right))


class And(Expr):
    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def eval(self, env: Env) -> Optional[bool]:
        lhs = self.left.eval(env)
        if lhs is False:
            return False
        rhs = self.right.eval(env)
        if rhs is False:
            return False
        if lhs is None or rhs is None:
            return None
        return True

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} AND {self.right.to_sql()})"

    def _collect_columns(self, out: set[tuple[Optional[str], str]]) -> None:
        self.left._collect_columns(out)
        self.right._collect_columns(out)

    def conjuncts(self) -> list[Expr]:
        return self.left.conjuncts() + self.right.conjuncts()

    def signature(self) -> Optional[tuple]:
        left = self.left.signature()
        right = self.right.signature()
        if left is None or right is None:
            return None
        return ("and", left, right)

    def collect_parameters(self, out: list) -> None:
        self.left.collect_parameters(out)
        self.right.collect_parameters(out)


class Or(Expr):
    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def eval(self, env: Env) -> Optional[bool]:
        lhs = self.left.eval(env)
        if lhs is True:
            return True
        rhs = self.right.eval(env)
        if rhs is True:
            return True
        if lhs is None or rhs is None:
            return None
        return False

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} OR {self.right.to_sql()})"

    def _collect_columns(self, out: set[tuple[Optional[str], str]]) -> None:
        self.left._collect_columns(out)
        self.right._collect_columns(out)

    def signature(self) -> Optional[tuple]:
        left = self.left.signature()
        right = self.right.signature()
        if left is None or right is None:
            return None
        return ("or", left, right)

    def collect_parameters(self, out: list) -> None:
        self.left.collect_parameters(out)
        self.right.collect_parameters(out)


class Not(Expr):
    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def eval(self, env: Env) -> Optional[bool]:
        value = self.operand.eval(env)
        if value is None:
            return None
        return not value

    def to_sql(self) -> str:
        return f"(NOT {self.operand.to_sql()})"

    def _collect_columns(self, out: set[tuple[Optional[str], str]]) -> None:
        self.operand._collect_columns(out)

    def signature(self) -> Optional[tuple]:
        operand = self.operand.signature()
        if operand is None:
            return None
        return ("not", operand)

    def collect_parameters(self, out: list) -> None:
        self.operand.collect_parameters(out)


class IsNull(Expr):
    """``expr IS [NOT] NULL`` — never unknown."""

    def __init__(self, operand: Expr, negate: bool = False) -> None:
        self.operand = operand
        self.negate = negate

    def eval(self, env: Env) -> bool:
        value = self.operand.eval(env)
        result = value is None
        return not result if self.negate else result

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negate else "IS NULL"
        return f"{self.operand.to_sql()} {suffix}"

    def _collect_columns(self, out: set[tuple[Optional[str], str]]) -> None:
        self.operand._collect_columns(out)

    def signature(self) -> Optional[tuple]:
        operand = self.operand.signature()
        if operand is None:
            return None
        return ("isnull", self.negate, operand)

    def collect_parameters(self, out: list) -> None:
        self.operand.collect_parameters(out)


class InSubquery(Expr):
    """``expr IN (SELECT ...)`` with the subquery pre-materialized.

    The engine resolves the subquery into a set of values before
    evaluation; this node keeps the original SQL text so probe queries
    can still be displayed (e.g. U3/PQ4 in the paper).
    """

    def __init__(self, operand: Expr, values: Iterable[Any], sql_text: str) -> None:
        self.operand = operand
        self.values = set(values)
        self.sql_text = sql_text

    def eval(self, env: Env) -> Optional[bool]:
        value = self.operand.eval(env)
        if value is None:
            return None
        return value in self.values

    def to_sql(self) -> str:
        return f"{self.operand.to_sql()} IN ({self.sql_text})"

    def _collect_columns(self, out: set[tuple[Optional[str], str]]) -> None:
        self.operand._collect_columns(out)

    def signature(self) -> Optional[tuple]:
        operand = self.operand.signature()
        if operand is None:
            return None
        # the materialized value set is a runtime parameter, like a literal
        return ("insub", operand)

    def collect_parameters(self, out: list) -> None:
        self.operand.collect_parameters(out)
        # the set itself, not a copy — it is only probed for membership
        out.append(self.values)


# ---------------------------------------------------------------------------
# small construction helpers
# ---------------------------------------------------------------------------

def col(name: str) -> ColumnRef:
    """Build a column reference from ``"rel.attr"`` or ``"attr"``."""
    if "." in name:
        qualifier, column = name.split(".", 1)
        return ColumnRef(column, qualifier)
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    return Literal(value)


def conjoin(predicates: Iterable[Expr]) -> Optional[Expr]:
    """AND together a sequence of predicates (None for the empty sequence)."""
    result: Optional[Expr] = None
    for predicate in predicates:
        result = predicate if result is None else And(result, predicate)
    return result
