"""SQL value domains for the relational engine substrate.

The running example of the paper (Fig. 1) declares attributes as
``VARCHAR2(n)``, ``DOUBLE`` and ``DATE``; the TPC-H-like benchmark schema
additionally needs ``INTEGER``.  A :class:`SQLType` checks membership of a
Python value in its domain, coerces lexical (string) forms into canonical
Python values, and renders values back into SQL literals.

``NULL`` is represented by Python ``None`` and belongs to every domain;
NOT NULL is a *constraint*, not a type property (see
:mod:`repro.rdb.constraints`).
"""

from __future__ import annotations

import datetime
import re
from typing import Any

from ..errors import TypeMismatchError

__all__ = [
    "SQLType",
    "VarChar",
    "Integer",
    "Double",
    "Date",
    "type_from_name",
    "sql_literal",
]


class SQLType:
    """Abstract base for SQL domains."""

    #: canonical SQL spelling, e.g. ``VARCHAR2(10)``
    name: str = "ANY"

    def contains(self, value: Any) -> bool:
        """Return True iff *value* (NULL included) belongs to this domain."""
        raise NotImplementedError

    def coerce(self, value: Any) -> Any:
        """Coerce *value* into the canonical Python representation.

        Raises :class:`TypeMismatchError` when the value cannot belong to
        the domain.  ``None`` always passes through (nullability is a
        constraint, not a domain matter).
        """
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------

    def _reject(self, value: Any) -> TypeMismatchError:
        return TypeMismatchError(f"value {value!r} is not a {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SQLType) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)


class VarChar(SQLType):
    """``VARCHAR2(n)`` — strings up to *n* characters."""

    def __init__(self, max_length: int = 255) -> None:
        if max_length <= 0:
            raise ValueError("VARCHAR length must be positive")
        self.max_length = max_length
        self.name = f"VARCHAR2({max_length})"

    def contains(self, value: Any) -> bool:
        if value is None:
            return True
        return isinstance(value, str) and len(value) <= self.max_length

    def coerce(self, value: Any) -> Any:
        if value is None:
            return None
        if isinstance(value, (int, float)):
            value = str(value)
        if not isinstance(value, str):
            raise self._reject(value)
        if len(value) > self.max_length:
            raise TypeMismatchError(
                f"string of length {len(value)} exceeds {self.name}"
            )
        return value


class Integer(SQLType):
    """``INTEGER`` — Python ints (bools rejected)."""

    name = "INTEGER"

    def contains(self, value: Any) -> bool:
        if value is None:
            return True
        return isinstance(value, int) and not isinstance(value, bool)

    def coerce(self, value: Any) -> Any:
        if value is None:
            return None
        if isinstance(value, bool):
            raise self._reject(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value.strip())
            except ValueError as exc:
                raise self._reject(value) from exc
        raise self._reject(value)


class Double(SQLType):
    """``DOUBLE`` — floating point; ints are accepted and widened."""

    name = "DOUBLE"

    def contains(self, value: Any) -> bool:
        if value is None:
            return True
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    def coerce(self, value: Any) -> Any:
        if value is None:
            return None
        if isinstance(value, bool):
            raise self._reject(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError as exc:
                raise self._reject(value) from exc
        raise self._reject(value)


class Date(SQLType):
    """``DATE`` — stored as :class:`datetime.date`.

    For convenience (the paper's sample data uses bare years such as
    ``1997``) an integer year coerces to January 1st of that year, and
    ISO ``YYYY-MM-DD`` strings parse as usual.
    """

    name = "DATE"

    _iso = re.compile(r"^(\d{4})-(\d{2})-(\d{2})$")

    def contains(self, value: Any) -> bool:
        if value is None:
            return True
        return isinstance(value, datetime.date)

    def coerce(self, value: Any) -> Any:
        if value is None:
            return None
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, bool):
            raise self._reject(value)
        if isinstance(value, int):
            return datetime.date(value, 1, 1)
        if isinstance(value, str):
            text = value.strip()
            match = self._iso.match(text)
            if match:
                year, month, day = (int(g) for g in match.groups())
                return datetime.date(year, month, day)
            if text.isdigit() and len(text) == 4:
                return datetime.date(int(text), 1, 1)
            raise self._reject(value)
        raise self._reject(value)


_NAME_PATTERN = re.compile(
    r"^\s*(VARCHAR2?|INTEGER|INT|DOUBLE|FLOAT|DATE)\s*(?:\(\s*(\d+)\s*\))?\s*$",
    re.IGNORECASE,
)


def type_from_name(name: str) -> SQLType:
    """Parse a SQL type spelling (``VARCHAR2(10)``, ``DOUBLE``, ...)."""
    match = _NAME_PATTERN.match(name)
    if not match:
        raise TypeMismatchError(f"unknown SQL type: {name!r}")
    base = match.group(1).upper()
    arg = match.group(2)
    if base.startswith("VARCHAR"):
        return VarChar(int(arg) if arg else 255)
    if base in ("INTEGER", "INT"):
        return Integer()
    if base in ("DOUBLE", "FLOAT"):
        return Double()
    return Date()


def sql_literal(value: Any) -> str:
    """Render a Python value as a SQL literal (for display / probe queries)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, datetime.date):
        return f"DATE '{value.isoformat()}'"
    text = str(value).replace("'", "''")
    return f"'{text}'"
