"""Delta-driven incremental view maintenance for cached probe results.

Sessions used to *invalidate* every cached probe whose relation closure
an applied update touched, then recompute from scratch — under
write-heavy batches the recompute is the dominant cost.  This module
turns invalidation into maintenance:

* :class:`DeltaLog` — a per-database stream of row-level DML events
  (+row / −row / update), recorded by the physical primitives of
  :class:`~repro.rdb.database.Database` right next to the statistics
  and column-store hooks.  Savepoint rollbacks coalesce into one
  *bulk* marker per touched relation (exactly like the coalesced
  ``data_versions`` bumps), DDL records a bulk marker through
  ``_bump_schema_version``, and crash recovery discards the log
  outright — the recovery epoch already forces sessions to drop their
  caches.
* :func:`compile_maintenance` — lowers a probe's :class:`SelectPlan`
  into one :class:`DeltaRule` per FROM relation: the conjuncts the
  delta row can be filtered through directly, then a greedy join
  completion over the *other* relations using the same equality
  bindings (:class:`~repro.rdb.optimizer.ConjunctInfo`) the optimizer
  uses, served by ``Database.find_rowids`` index probes.
* :class:`IncrementalView` — a maintained result: a multiset keyed on
  the FROM-order rowid tuple (multiplicity counts, so deletes retract
  correctly through joins and DISTINCT) whose :meth:`render` output is
  byte-identical to re-running the plan — rows are built by the same
  projection the executors use, in the same rowid sort order.

Batch semantics: events apply in log order, and each event's delta
joins against the other relations *as they stood at that event* — the
current end state adjusted by reversing the batch's later events on
those relations.  That is what makes a single drain of a multi-relation
batch (insert a parent, then its child) count each new join result
exactly once.

Fallbacks (counted in ``db.stats['ivm_fallbacks']``): bulk markers
(rollback, DDL), plan shapes this compiler does not support
(self-joins, aliases, unqualified column refs), deltas larger than
``db.ivm_threshold``, and any multiplicity the maintained state cannot
absorb (:class:`IvmError` — never wrong results, always a recompute).
``REPRO_IVM=0`` forces the old invalidate-and-recompute path;
``REPRO_IVM=1`` forces maintenance regardless of the threshold.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Sequence

from ..errors import ReproError
from .compiled import dedup_rows
from .expr import Expr
from .optimizer import ConjunctInfo

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database
    from .plan import SelectPlan

__all__ = [
    "BULK",
    "DELETE",
    "DeltaEvent",
    "DeltaLog",
    "DeltaLevel",
    "DeltaRule",
    "INSERT",
    "IncrementalView",
    "IvmError",
    "MaintenancePlan",
    "UPDATE",
    "compile_maintenance",
    "ivm_forced",
]

Row = dict[str, Any]

#: event kinds
INSERT = "+"
DELETE = "-"
UPDATE = "~"
#: coarse marker: "this relation changed in a way the log did not
#: track row by row" (rollback replay, DDL, log overflow) — maintained
#: results over it must fall back to recompute
BULK = "!"


class IvmError(ReproError):
    """Maintenance cannot proceed (the caller falls back to recompute)."""


def ivm_forced() -> Optional[bool]:
    """The ``REPRO_IVM`` override: None (threshold-driven policy),
    False (``"0"``: force invalidate-and-recompute) or True (force
    maintenance regardless of ``db.ivm_threshold``)."""
    value = os.environ.get("REPRO_IVM", "")
    if value == "":
        return None
    return value != "0"


# ---------------------------------------------------------------------------
# the delta log
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DeltaEvent:
    """One row-level change (or a bulk marker) on one relation."""

    seq: int
    relation: str
    kind: str           # INSERT / DELETE / UPDATE / BULK
    rowid: int
    old: Optional[Row]  # pre-image (DELETE / UPDATE)
    new: Optional[Row]  # post-image (INSERT / UPDATE)

    def images(self) -> list[tuple[int, Row]]:
        """The signed delta rows of this event.

        An update retracts its pre-image before asserting its
        post-image, so a maintained multiset never sees the same rowid
        tuple twice at once.
        """
        if self.kind == INSERT:
            assert self.new is not None
            return [(1, self.new)]
        if self.kind == DELETE:
            assert self.old is not None
            return [(-1, self.old)]
        if self.kind == UPDATE:
            assert self.old is not None and self.new is not None
            return [(-1, self.old), (1, self.new)]
        raise IvmError(f"bulk markers carry no row images ({self.relation})")


class DeltaLog:
    """The per-database DML event stream feeding maintained probes.

    Recording is off until a session opts in (:meth:`enable`) — loads
    and engine-only workloads pay nothing.  ``seq`` is monotonic for
    the life of the database and never resets on :meth:`take`, so a
    cached result can remember the sequence point it was computed at
    and apply exactly the events after it.
    """

    __slots__ = ("events", "seq", "enabled", "capacity")

    def __init__(self, capacity: int = 20000) -> None:
        self.events: list[DeltaEvent] = []
        self.seq = 0
        self.enabled = False
        #: undrained events beyond this collapse into bulk markers —
        #: an unattended log degrades to coarse invalidation instead
        #: of growing without bound
        self.capacity = capacity

    def enable(self) -> None:
        self.enabled = True

    def record_insert(self, relation: str, rowid: int, row: Row) -> None:
        self._append(relation, INSERT, rowid, None, dict(row))

    def record_delete(self, relation: str, rowid: int, old: Row) -> None:
        self._append(relation, DELETE, rowid, dict(old), None)

    def record_update(
        self, relation: str, rowid: int, old: Row, new: Row
    ) -> None:
        self._append(relation, UPDATE, rowid, dict(old), dict(new))

    def record_bulk(self, relation: str) -> None:
        self._append(relation, BULK, 0, None, None)

    def _append(
        self,
        relation: str,
        kind: str,
        rowid: int,
        old: Optional[Row],
        new: Optional[Row],
    ) -> None:
        if len(self.events) >= self.capacity:
            # overflow: the detail is gone, the coarse fact remains —
            # markers inherit the current seq so every result computed
            # before them still sees them as "after me"
            relations = sorted({event.relation for event in self.events})
            self.events = [
                DeltaEvent(self.seq, name, BULK, 0, None, None)
                for name in relations
            ]
        self.seq += 1
        self.events.append(DeltaEvent(self.seq, relation, kind, rowid, old, new))

    def take(self) -> list[DeltaEvent]:
        """Drain the pending events (``seq`` keeps counting)."""
        events, self.events = self.events, []
        return events

    def __len__(self) -> int:
        return len(self.events)


# ---------------------------------------------------------------------------
# the maintenance compiler
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DeltaLevel:
    """One join-completion step against an untouched relation.

    ``bindings`` are the equality conjuncts that pin columns of this
    relation to already-bound values — served by an index probe through
    ``Database.find_rowids`` when one covers them.  Every conjunct
    assigned to the level (binding or residual) is re-checked on each
    candidate row, so duplicate bindings and SQL NULL semantics cost
    nothing extra to get right.
    """

    relation: str
    #: (column, value expression, original conjunct)
    bindings: tuple[tuple[str, Expr, Expr], ...]
    residuals: tuple[Expr, ...]

    def predicates(self) -> list[Expr]:
        return [expr for _, _, expr in self.bindings] + list(self.residuals)


@dataclass(frozen=True)
class DeltaRule:
    """How a delta row of one relation propagates into the result."""

    relation: str
    #: conjuncts referencing only the delta relation (or no relation):
    #: the delta row filters through these before any join work
    own: tuple[Expr, ...]
    #: join completion over the other FROM relations, in greedy
    #: binding-first order
    levels: tuple[DeltaLevel, ...]


@dataclass(frozen=True)
class MaintenancePlan:
    """A probe plan lowered into per-relation delta rules."""

    plan: "SelectPlan"
    names: tuple[str, ...]
    rules: dict[str, DeltaRule]

    def delta_for_event(
        self,
        db: "Database",
        event: DeltaEvent,
        later: Sequence[DeltaEvent],
    ) -> list[tuple[tuple, Row, int]]:
        """The signed result rows *event* contributes.

        *later* holds the remaining events of the batch being applied:
        join completion targets each other relation's state *at the
        event*, i.e. the current end state with those later events
        reversed.
        """
        from .plan import _project

        rule = self.rules[event.relation]
        out: list[tuple[tuple, Row, int]] = []
        for sign, image in event.images():
            env: dict[str, Row] = {event.relation: image}
            if not all(conjunct.eval(env) is True for conjunct in rule.own):
                continue
            rowids = {event.relation: event.rowid}

            def complete(index: int, multiplier: int) -> None:
                if index == len(rule.levels):
                    ordered_env = {name: env[name] for name in self.names}
                    ordered_ids = {name: rowids[name] for name in self.names}
                    key = tuple(ordered_ids[name] for name in self.names)
                    row = _project(db, self.plan, ordered_env, ordered_ids)
                    out.append((key, row, multiplier))
                    return
                level = rule.levels[index]
                for rowid, row in _candidates(db, level, env, later):
                    env[level.relation] = row
                    rowids[level.relation] = rowid
                    complete(index + 1, multiplier)
                    del env[level.relation]
                    del rowids[level.relation]

            complete(0, sign)
        return out


def _candidates(
    db: "Database",
    level: DeltaLevel,
    env: dict[str, Row],
    later: Sequence[DeltaEvent],
) -> list[tuple[int, Row]]:
    """Candidate rows of *level*'s relation as it stood at the event
    being propagated.

    The end state provides the base (index-probed via the bindings when
    possible); the batch's later events on this relation are then
    unwound latest-first over a rowid-keyed dict — a row inserted later
    was not there yet, a row deleted or updated later still showed its
    pre-image.  Keying on rowid makes opposing later events on the same
    row net out instead of surfacing as two signed images (a delete
    re-asserting a key another event already retracted would otherwise
    trip the multiplicity check).
    """
    eq: dict[str, Any] = {}
    for column, value_expr, _ in level.bindings:
        if column not in eq:
            eq[column] = value_expr.eval(env)
    table = db.table(level.relation)
    state: dict[int, Row] = {}
    if level.bindings:
        if any(value is None for value in eq.values()):
            base: Sequence[int] = ()  # SQL '=': NULL matches nothing
        else:
            base = sorted(db.find_rowids(level.relation, eq))
        for rowid in base:
            if rowid in table:
                state[rowid] = table.get(rowid)
    else:
        for rowid, row in table.scan():
            state[rowid] = row
    # later events on rows outside the index-probed base still unwind:
    # the predicates re-check every candidate, so over-approximating
    # the base never admits a wrong row
    for event in reversed(later):
        if event.relation != level.relation or event.kind == BULK:
            continue
        if event.old is not None:
            state[event.rowid] = event.old
        else:
            state.pop(event.rowid, None)
    predicates = level.predicates()
    matched: list[tuple[int, Row]] = []
    for rowid in sorted(state):
        row = state[rowid]
        db.stats["rows_scanned"] += 1
        env[level.relation] = row
        satisfied = all(p.eval(env) is True for p in predicates)
        del env[level.relation]
        if satisfied:
            matched.append((rowid, row))
    return matched


def compile_maintenance(
    db: "Database", plan: "SelectPlan"
) -> Optional[MaintenancePlan]:
    """Lower *plan* into per-relation delta rules, or ``None`` when the
    shape is unsupported (the caller falls back to recompute).

    Unsupported: aliases and self-joins (delta events are keyed by
    relation name, which must identify the FROM item), unqualified
    column references, and unknown relations.
    """
    names = tuple(item.name for item in plan.from_items)
    if not names or len(set(names)) != len(names):
        return None
    for item in plan.from_items:
        if item.alias is not None and item.alias != item.relation_name:
            return None
        if item.relation_name not in db.tables:
            return None
    conjuncts = plan.where.conjuncts() if plan.where is not None else []
    infos = [ConjunctInfo(conjunct) for conjunct in conjuncts]
    name_set = set(names)
    for info in infos:
        if not info.qualified_only or not info.qualifiers <= name_set:
            return None
    rules: dict[str, DeltaRule] = {}
    for delta_name in names:
        own = tuple(
            info.expr for info in infos if info.qualifiers <= {delta_name}
        )
        pending = [
            info for info in infos if not (info.qualifiers <= {delta_name})
        ]
        bound = {delta_name}
        remaining = [name for name in names if name != delta_name]
        levels: list[DeltaLevel] = []
        while remaining:
            pick = next(
                (
                    name for name in remaining
                    if any(
                        info.binding_for(name, bound) is not None
                        for info in pending
                    )
                ),
                remaining[0],
            )
            newly = bound | {pick}
            bindings: list[tuple[str, Expr, Expr]] = []
            residuals: list[Expr] = []
            still: list[ConjunctInfo] = []
            for info in pending:
                binding = info.binding_for(pick, bound)
                if binding is not None:
                    bindings.append((binding[0], binding[1], info.expr))
                elif info.qualifiers <= newly:
                    residuals.append(info.expr)
                else:
                    still.append(info)
            pending = still
            levels.append(
                DeltaLevel(pick, tuple(bindings), tuple(residuals))
            )
            bound = newly
            remaining.remove(pick)
        if pending:  # every conjunct is qualified over names; unreachable
            return None
        rules[delta_name] = DeltaRule(delta_name, own, tuple(levels))
    mplan = MaintenancePlan(plan=plan, names=names, rules=rules)
    from ..analysis.planlint import plan_verify_enabled, verify_maintenance_or_raise

    if plan_verify_enabled():
        verify_maintenance_or_raise(db, mplan)
    return mplan


# ---------------------------------------------------------------------------
# the maintained result
# ---------------------------------------------------------------------------

class IncrementalView:
    """A query result kept current by applying deltas instead of
    re-running the plan.

    State is a multiset keyed on the FROM-order rowid tuple of each
    join result.  Because every key identifies one base-tuple
    combination, a live key always has multiplicity one — signed deltas
    either add a new combination or retract an existing one, and
    anything else raises :class:`IvmError` (the caller recomputes).
    :meth:`render` reproduces the executors' output exactly: rows
    sorted by that rowid tuple, deduplicated when the plan is DISTINCT.
    """

    def __init__(
        self, mplan: MaintenancePlan, state: dict[tuple, Row], born_seq: int
    ) -> None:
        self.mplan = mplan
        self.plan = mplan.plan
        self.relations = frozenset(mplan.names)
        self._state = state
        self.born_seq = born_seq

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        db: "Database",
        plan: "SelectPlan",
        rows: Optional[Sequence[Row]] = None,
        born_seq: Optional[int] = None,
    ) -> Optional["IncrementalView"]:
        """A maintained view over *plan*, or ``None`` when the shape is
        unsupported.

        *rows* seeds the state from an already-computed result (its
        rows must carry rowids and the plan must not be DISTINCT —
        deduplicated rows have lost derivations a retraction could
        expose); *born_seq* is the log position that result reflects.
        Without *rows*, the state is seeded by running the plan now.
        """
        mplan = compile_maintenance(db, plan)
        if mplan is None:
            return None
        if rows is not None and not plan.distinct:
            state = cls._state_from_rows(plan, mplan.names, rows)
            if state is not None:
                seq = born_seq if born_seq is not None else db.deltas.seq
                return cls(mplan, state, seq)
        return cls._build_by_query(db, mplan)

    @staticmethod
    def _state_from_rows(
        plan: "SelectPlan", names: tuple[str, ...], rows: Sequence[Row]
    ) -> Optional[dict[tuple, Row]]:
        state: dict[tuple, Row] = {}
        for row in rows:
            if plan.select_rowids and len(names) == 1:
                key = (row.get("ROWID"),)
            else:
                key = tuple(row.get(f"{name}.ROWID") for name in names)
            if any(rowid is None for rowid in key):
                return None  # rowids not in the output: cannot seed
            if key in state:
                raise IvmError(f"duplicate rowid tuple {key} in seed rows")
            state[key] = row
        return state

    @classmethod
    def _build_by_query(
        cls, db: "Database", mplan: MaintenancePlan
    ) -> "IncrementalView":
        from .plan import SelectPlan, execute_select

        plan = mplan.plan
        born_seq = db.deltas.seq
        shadow = SelectPlan(
            from_items=plan.from_items,
            columns=plan.columns,
            where=plan.where,
            include_rowids=True,
        )
        state: dict[tuple, Row] = {}
        for row in execute_select(db, shadow):
            key = tuple(row[f"{name}.ROWID"] for name in mplan.names)
            if plan.select_rowids:
                if len(mplan.names) == 1:
                    stored: Row = {"ROWID": key[0]}
                else:
                    stored = {
                        f"{name}.ROWID": rowid
                        for name, rowid in zip(mplan.names, key)
                    }
            elif plan.include_rowids:
                stored = row
            else:
                added = {f"{name}.ROWID" for name in mplan.names}
                stored = {k: v for k, v in row.items() if k not in added}
            if key in state:
                raise IvmError(f"duplicate rowid tuple {key} seeding view")
            state[key] = stored
        return cls(mplan, state, born_seq)

    # -- maintenance ---------------------------------------------------

    def apply(
        self, db: "Database", events: Sequence[DeltaEvent]
    ) -> Optional[int]:
        """Stream *events* into the state.

        Returns the number of delta rows absorbed, or ``None`` when a
        bulk marker makes maintenance impossible (the caller must
        recompute).  Raises :class:`IvmError` if the deltas disagree
        with the maintained state — same remedy.
        """
        relevant = [
            event for event in events
            if event.relation in self.relations and event.seq > self.born_seq
        ]
        if any(event.kind == BULK for event in relevant):
            return None
        absorbed = 0
        for position, event in enumerate(relevant):
            later = relevant[position + 1:]
            for key, row, mult in self.mplan.delta_for_event(db, event, later):
                if mult == 1:
                    if key in self._state:
                        raise IvmError(
                            f"delta asserts live rowid tuple {key}"
                        )
                    self._state[key] = row
                elif mult == -1:
                    if key not in self._state:
                        raise IvmError(
                            f"delta retracts absent rowid tuple {key}"
                        )
                    del self._state[key]
                elif mult != 0:
                    raise IvmError(f"multiplicity {mult} at {key}")
            absorbed += 2 if event.kind == UPDATE else 1
        if relevant:
            self.born_seq = relevant[-1].seq
        return absorbed

    def render(self) -> list[Row]:
        """The plan's current result, byte-identical to re-running it."""
        rows = [self._state[key] for key in sorted(self._state)]
        if self.plan.distinct:
            rows = dedup_rows(rows)
        return rows

    def __len__(self) -> int:
        return len(self._state)
