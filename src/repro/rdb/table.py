"""Tuple storage with stable rowids.

A :class:`Table` stores tuples of a single relation as dicts keyed by a
monotonically increasing *rowid* — mirroring the ``ROWID`` pseudo-column
the paper's probe query PQ4 selects.  Iteration preserves insertion
order.  The table knows nothing about constraints; enforcement lives in
:class:`repro.rdb.database.Database`.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from ..errors import DatabaseError
from .faults import NULL_INJECTOR, FaultInjector

__all__ = ["Table"]

Row = dict[str, Any]


class Table:
    """Physical storage for one relation."""

    #: fault-injection registry; the owning Database replaces this with
    #: its own armed instance (standalone tables keep the shared no-op)
    faults: FaultInjector = NULL_INJECTOR

    def __init__(self, relation_name: str, columns: tuple[str, ...]) -> None:
        self.relation_name = relation_name
        self.columns = columns
        self._rows: dict[int, Row] = {}
        self._next_rowid = 1

    # -- mutation ------------------------------------------------------------

    def next_rowid(self) -> int:
        """The rowid the next :meth:`insert_row` will allocate.

        Allocation is deterministic (a bare increment), so callers that
        must journal an insert's undo image *before* the insert happens
        can pre-read the rowid it will get.
        """
        return self._next_rowid

    def insert_row(self, values: Mapping[str, Any]) -> int:
        """Store a fully-formed row; returns its rowid."""
        self.faults.hit("table.insert", self.relation_name)
        row = {column: values.get(column) for column in self.columns}
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = row
        return rowid

    def restore_row(self, rowid: int, values: Mapping[str, Any]) -> None:
        """Re-insert a previously deleted row under its old rowid (undo)."""
        self.faults.hit("table.restore", self.relation_name)
        if rowid in self._rows:
            raise DatabaseError(
                f"rowid {rowid} already present in {self.relation_name}"
            )
        self._rows[rowid] = {column: values.get(column) for column in self.columns}
        self._next_rowid = max(self._next_rowid, rowid + 1)

    def delete_row(self, rowid: int) -> Row:
        """Remove and return the row stored under *rowid*."""
        self.faults.hit("table.delete", self.relation_name)
        try:
            return self._rows.pop(rowid)
        except KeyError:
            raise DatabaseError(
                f"no row {rowid} in {self.relation_name}"
            ) from None

    def update_row(self, rowid: int, changes: Mapping[str, Any]) -> Row:
        """Apply *changes* in place; returns the previous image of the row."""
        self.faults.hit("table.update", self.relation_name)
        row = self.get(rowid)
        old = dict(row)
        for column, value in changes.items():
            if column not in self.columns:
                raise DatabaseError(
                    f"{self.relation_name} has no column {column!r}"
                )
            row[column] = value
        return old

    # -- access --------------------------------------------------------------

    def get(self, rowid: int) -> Row:
        try:
            return self._rows[rowid]
        except KeyError:
            raise DatabaseError(
                f"no row {rowid} in {self.relation_name}"
            ) from None

    def __contains__(self, rowid: int) -> bool:
        return rowid in self._rows

    def scan(self) -> Iterator[tuple[int, Row]]:
        """Yield ``(rowid, row)`` pairs in insertion order.

        Materializes the id list first so callers may delete during the
        scan (deleted rows simply stop appearing).
        """
        for rowid in list(self._rows):
            row = self._rows.get(rowid)
            if row is not None:
                yield rowid, row

    def rowids(self) -> list[int]:
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.relation_name}, {len(self)} rows)"
