"""The relational database engine: DML with full constraint enforcement.

This is the substrate standing in for Oracle 10g in the paper's
experiments.  It provides:

* typed tuple storage per relation (:class:`repro.rdb.table.Table`),
* automatic hash indexes on PRIMARY KEY / UNIQUE / FOREIGN KEY columns,
* INSERT / DELETE / UPDATE with NOT NULL, CHECK, unique and referential
  integrity enforcement,
* delete policies CASCADE, SET NULL and RESTRICT,
* single-level transactions with undo-log rollback.

Constraint violations raise the exceptions of :mod:`repro.errors`, which
is what the *hybrid* strategy of U-Filter's Step 3 catches — just as the
paper's hybrid strategy "waits for the error or success response" of the
relational engine.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence

from ..errors import (
    CheckViolation,
    DatabaseError,
    ForeignKeyViolation,
    NotNullViolation,
    PrimaryKeyViolation,
    ReproError,
    SchemaError,
    UniqueViolation,
)
from .compiled import (
    PlanCache,
    RowidPlanCache,
    compile_tree,
    extract_where_params,
    where_signature,
)
from .columnar import ColumnStoreManager
from .constraints import DeletePolicy, ForeignKey, PrimaryKey, Unique
from .expr import ColumnRef, Comparison, Expr, Literal
from .faults import FaultInjector
from .index import HashIndex
from .ivm import DeltaLog
from .schema import Attribute, Relation, Schema
from .statistics import StatisticsManager
from .table import Table
from .transactions import TransactionManager, UndoAction, UndoKind
from .wal import WriteAheadLog, decode_row

__all__ = ["Database", "RecoveryReport"]

Row = dict[str, Any]


@dataclass
class RecoveryReport:
    """What :meth:`Database.recover` found and did."""

    #: journal transaction ids that were incomplete (crashed mid-apply)
    transactions: list[int] = field(default_factory=list)
    #: undo records conditionally applied during rollback
    undo_applied: int = 0
    #: intent records of crashed transactions (durably planned updates
    #: whose apply never finished) — the caller may re-submit these
    pending_intents: list[dict[str, Any]] = field(default_factory=list)
    #: names of intents re-applied when ``recover(redo=True)``
    redone: list[str] = field(default_factory=list)
    #: names of intents whose redo failed (constraints re-raised)
    redo_failed: list[str] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """True iff there was crash damage to repair."""
        return bool(self.transactions)


class Database:
    """A populated instance of a :class:`Schema`."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.tables: dict[str, Table] = {}
        self.indexes: dict[str, list[HashIndex]] = {}
        self.txn = TransactionManager()
        #: engine statistics exposed to benchmarks and tests
        self.stats = {
            "inserts": 0,
            "deletes": 0,
            "updates": 0,
            "rows_scanned": 0,
            "rollbacks": 0,
            #: SELECT plans executed (probe accounting for batch sessions)
            "selects": 0,
            #: join levels served by an index lookup instead of a scan
            "index_joins": 0,
            #: join levels served by a transient hash table (built once
            #: per execution when equalities exist but no index covers them)
            "hash_joins": 0,
            #: SELECT plans compiled into closures (plan-cache misses)
            "plans_compiled": 0,
            #: SELECT executions served from the compiled-plan cache
            "plan_cache_hits": 0,
            #: compiled plans whose join order differs from FROM order
            "reorders": 0,
            #: statistics (re)builds — one scan per relation per build
            "stats_rebuilds": 0,
            #: rowid-path artifacts compiled (find_rowids access decisions
            #: + select_rowids predicate closures; cache misses)
            "rowid_plans_compiled": 0,
            #: find_rowids / select_rowids probes served from the
            #: compiled rowid-plan cache
            "rowid_cache_hits": 0,
            #: plan-cache validations that saw DML drift below the
            #: re-planning threshold and kept the cached plan
            "replans_avoided": 0,
            #: compiled plans whose join tree is bushy (some join's
            #: build side is itself a join) — the DP enumerator found a
            #: tree no left-deep order could express
            "bushy_plans": 0,
            #: crash recoveries performed (incomplete journal txns repaired)
            "recoveries": 0,
            #: SELECT plans compiled by the vectorized (batch-at-a-time)
            #: compiler — a subset of ``plans_compiled``
            "vectorized_plans": 0,
            #: vectorized operator activations (one batch through one
            #: scan / probe / filter / join / finalize stage)
            "batches_processed": 0,
            #: vectorized-plan subtrees executed through the
            #: row-at-a-time closures (per-subtree fallback activations)
            "vector_fallbacks": 0,
            #: cached probe results kept current by applying DML deltas
            #: (one maintenance pass per entry per drain)
            "ivm_maintained": 0,
            #: maintained entries dropped to full recompute (bulk
            #: markers, unsupported plan shapes, oversized deltas,
            #: multiplicity conflicts)
            "ivm_fallbacks": 0,
            #: signed delta rows streamed into maintained entries
            #: (an update counts as retract + assert)
            "ivm_delta_rows": 0,
        }
        #: deterministic fault-injection registry shared with every
        #: table and index of this database (disarmed: near-zero cost)
        self.faults = FaultInjector()
        #: write-ahead journal; ``None`` until :meth:`attach_wal` —
        #: journaling is opt-in so the pure in-memory paths stay free
        self.wal: Optional[WriteAheadLog] = None
        #: open journal transaction id (volatile bookkeeping)
        self._wal_txn: Optional[int] = None
        #: set while an undo log replays — replay mutations must not
        #: journal undo-of-undo records
        self._replaying = False
        #: bumped by every :meth:`recover` that repaired damage, so
        #: sessions can notice and drop volatile caches (probe results)
        self.recovery_epoch = 0
        #: compiled SELECT plans keyed on structural signature
        self.plan_cache = PlanCache()
        #: compiled single-relation rowid paths (find_rowids access
        #: decisions, select_rowids predicate closures)
        self.rowid_plans = RowidPlanCache()
        #: per-relation statistics (row counts, distinct counts,
        #: equi-depth histograms, null fractions) feeding the planner
        self.statistics = StatisticsManager(self)
        #: lazily built column-major mirrors of the row tables, feeding
        #: the vectorized executor and sampled statistics builds
        self.columns = ColumnStoreManager(self)
        #: estimate-driven executor choice: a SELECT compiles vectorized
        #: when the summed row count of its Scan leaves clears this (the
        #: ``REPRO_VECTORIZE`` environment variable overrides per run)
        self.vectorize_threshold = 512
        #: row-level DML event stream feeding incremental probe
        #: maintenance (:mod:`repro.rdb.ivm`); recording starts when a
        #: session opts in, so loads and engine-only workloads pay nothing
        self.deltas = DeltaLog()
        #: maintenance cost ceiling: a cached probe whose pending delta
        #: exceeds this many rows recomputes instead (the ``REPRO_IVM``
        #: environment variable overrides per run)
        self.ivm_threshold = 256
        #: bumped when the FK graph can change (CREATE/DROP of non-temp
        #: relations) — sessions key their cascade-closure memo on it;
        #: temp-table churn must not thrash that memo
        self.fk_epoch = 0
        #: re-planning threshold: a cached plan survives DML drift of up
        #: to ``max(replan_min_ops, replan_threshold × rows-at-compile)``
        #: modified rows per read relation before the join order is
        #: declared stale (setting BOTH knobs to 0 restores the old
        #: "any DML recompiles" rule)
        self.replan_threshold = 0.2
        self.replan_min_ops = 2
        #: force every query path onto the interpreted executors
        #: (``execute_select(optimize=False)`` and ``find_rowids`` /
        #: ``select_rowids(compiled=False)``) — the semantic-oracle
        #: switch the translation QA scenario generator flips on a clone
        #: to cross-check compiled results end to end
        self.oracle_mode = False
        #: set while an undo log replays so per-row version bumps can be
        #: coalesced into one bump per relation per rollback
        self._coalesce_versions = False
        #: per-relation DDL counters (CREATE/DROP TABLE, CREATE INDEX) —
        #: compiled plans referencing stale schema objects are discarded,
        #: while temp-table churn leaves unrelated cached plans alone
        self.schema_versions: dict[str, int] = {}
        #: per-relation DML counters — a cached join order never outlives
        #: the cardinalities that justified it
        self.data_versions: dict[str, int] = {}
        for relation in schema:
            self.tables[relation.name] = self._adopt(
                Table(relation.name, relation.attribute_names)
            )
            self.indexes[relation.name] = [
                self._adopt(index) for index in self._build_indexes(relation)
            ]

    def _adopt(self, storage: Any) -> Any:
        """Share this database's fault injector with a table/index."""
        storage.faults = self.faults
        return storage

    @staticmethod
    def _build_indexes(relation: Relation) -> Iterator[HashIndex]:
        seen: set[tuple[str, ...]] = set()
        counter = 0
        for constraint in relation.constraints:
            if isinstance(constraint, Unique):
                columns = tuple(constraint.columns)
                unique = True
            elif isinstance(constraint, ForeignKey):
                columns = tuple(constraint.columns)
                unique = False
            else:
                continue
            if columns in seen:
                continue
            seen.add(columns)
            counter += 1
            prefix = "pk" if isinstance(constraint, PrimaryKey) else (
                "uq" if unique else "fk"
            )
            yield HashIndex(
                name=f"{prefix}_{relation.name}_{counter}",
                relation_name=relation.name,
                columns=columns,
                unique=unique,
            )

    # ------------------------------------------------------------------
    # DDL after construction
    # ------------------------------------------------------------------

    def add_relation(self, relation: Relation) -> None:
        """CREATE TABLE: register a new relation with its indexes."""
        self.schema.add_relation(relation)
        self.schema._validate_foreign_keys()
        self.tables[relation.name] = self._adopt(
            Table(relation.name, relation.attribute_names)
        )
        self.indexes[relation.name] = [
            self._adopt(index) for index in self._build_indexes(relation)
        ]
        self.fk_epoch += 1
        self._bump_schema_version(relation.name)

    def create_temp_table(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Mapping[str, Any]] = (),
        index_columns: Sequence[Sequence[str]] = (),
    ) -> None:
        """Materialize a probe-query result as a temp table.

        This models the paper's ``TAB_book`` materialized view.  By
        default the table carries no indexes — the outside strategy's
        joins against it fall back to scans, the asymmetry behind
        Fig. 16.  ``index_columns`` lifts that limitation: each entry
        names a column list to cover with an ad-hoc hash index, turning
        those joins into index nested loops.
        """
        from .types import VarChar

        if name in self.tables:
            self.drop_table(name)
        relation = Relation(name, [Attribute(c, VarChar(4000)) for c in columns])
        relation.temp = True
        self.schema.add_relation(relation)
        self.tables[name] = self._adopt(Table(name, relation.attribute_names))
        self.indexes[name] = []
        table = self.tables[name]
        self._bump_schema_version(name)
        for row in rows:
            table.insert_row(row)
        for column_list in index_columns:
            self.create_index(name, column_list)

    def create_index(
        self,
        relation_name: str,
        columns: Sequence[str],
        unique: bool = False,
        name: Optional[str] = None,
    ) -> HashIndex:
        """CREATE INDEX: build an ad-hoc hash index over existing rows.

        Unlike the automatic PK/UNIQUE/FK indexes built at CREATE TABLE
        time, ad-hoc indexes can be added later — in particular on
        materialized probe results, whose join columns the schema knows
        nothing about.
        """
        table = self.table(relation_name)
        known = set(self.relation(relation_name).attribute_names)
        unknown = set(columns) - known
        if unknown:
            raise SchemaError(
                f"cannot index unknown column(s) {sorted(unknown)} "
                f"of {relation_name!r}"
            )
        index = self._adopt(HashIndex(
            name=name or f"adhoc_{relation_name}_{len(self.indexes[relation_name]) + 1}",
            relation_name=relation_name,
            columns=tuple(columns),
            unique=unique,
        ))
        for rowid, row in table.scan():
            index.add(rowid, row)
        self.indexes[relation_name].append(index)
        self._bump_schema_version(relation_name)
        return index

    def drop_table(self, name: str) -> None:
        relation = self.schema.relations.get(name)
        if relation is not None and not getattr(relation, "temp", False):
            self.fk_epoch += 1
        self.schema.relations.pop(name, None)
        self.tables.pop(name, None)
        self.indexes.pop(name, None)
        self.statistics.forget(name)
        self.columns.forget(name)
        self._bump_schema_version(name)

    def _bump_schema_version(self, relation_name: str) -> None:
        self.schema_versions[relation_name] = (
            self.schema_versions.get(relation_name, 0) + 1
        )
        # DDL invalidates any maintained result over the relation the
        # same way it invalidates compiled plans
        if self.deltas.enabled:
            self.deltas.record_bulk(relation_name)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def table(self, relation_name: str) -> Table:
        try:
            return self.tables[relation_name]
        except KeyError:
            raise SchemaError(f"unknown relation {relation_name!r}") from None

    def relation(self, relation_name: str) -> Relation:
        return self.schema.relation(relation_name)

    def row(self, relation_name: str, rowid: int) -> Row:
        return dict(self.table(relation_name).get(rowid))

    def count(self, relation_name: str) -> int:
        return len(self.table(relation_name))

    def rows(self, relation_name: str) -> list[Row]:
        return [dict(row) for _, row in self.table(relation_name).scan()]

    def index_on(self, relation_name: str, columns: Iterable[str]) -> Optional[HashIndex]:
        """An index covering exactly *columns*, if one exists."""
        wanted = set(columns)
        for index in self.indexes.get(relation_name, ()):
            if index.matches(wanted):
                return index
        return None

    def analyze(self, relation_name: Optional[str] = None) -> int:
        """ANALYZE: rebuild planner statistics eagerly, now.

        Statistics normally build lazily on first planner access and
        rebuild lazily once DML drift crosses the staleness threshold —
        which means the first probe after heavy DML pays the rebuild
        scan.  Call this after bulk loads (benchmark setup does) to move
        that cost off the query path.  Returns the number of relations
        analyzed.
        """
        return self.statistics.analyze(relation_name)

    def find_rowids(
        self,
        relation_name: str,
        equalities: Mapping[str, Any],
        compiled: bool = True,
    ) -> set[int]:
        """Rowids whose columns equal *equalities* (index-assisted).

        The equality dictionary lowers to the shared plan IR
        (:func:`repro.rdb.plan.lower_rowid_plan`: one ``col = ?``
        conjunct per column) and compiles once per (relation,
        column-set) signature, cached until DDL touches the relation; a
        probe that is one covering index lookup is served straight from
        the bucket.  SQL NULL semantics hold on every path: a
        NULL-valued probe matches nothing.  ``compiled=False`` forces
        the interpreted per-call decision, kept as the semantic oracle.
        """
        table = self.table(relation_name)
        if not equalities:
            return set(table.rowids())
        if not compiled or self.oracle_mode:
            return self._find_rowids_interpreted(table, equalities)
        columns = frozenset(equalities)
        key = ("access", relation_name, columns)
        entry = self.rowid_plans.get(key, self, relation_name)
        if entry is not None:
            plan = entry.payload
            if plan is not None:
                self.stats["rowid_cache_hits"] += 1
        else:
            plan = self._compile_rowid_equalities(relation_name, columns)
        if plan is None:
            return self._find_rowids_interpreted(table, equalities)
        params = tuple(equalities[column] for column in sorted(columns))
        return plan.run_rowid_set(self, params)

    def _compile_rowid_equalities(
        self, relation_name: str, columns: frozenset
    ) -> Optional[Any]:
        from .plan import lower_rowid_plan

        conjuncts: list[Expr] = [
            Comparison("=", ColumnRef(column, relation_name), Literal(None))
            for column in sorted(columns)
        ]
        root = lower_rowid_plan(self, relation_name, conjuncts)
        plan = compile_tree(self, root, conjuncts, count_index_joins=False)
        self.rowid_plans.put(
            ("access", relation_name, columns), self, relation_name, plan
        )
        if plan is not None:
            self.stats["rowid_plans_compiled"] += 1
        return plan

    def _find_rowids_interpreted(
        self, table: Table, equalities: Mapping[str, Any]
    ) -> set[int]:
        """The pre-compilation scan: per-call index pick, dict-driven
        residual checks.  The oracle compiled lookups must agree with."""
        if any(value is None for value in equalities.values()):
            # SQL equality (defined once in the IR's predicate lowering,
            # repro.rdb.plan): NULL matches nothing, on every path
            return set()
        relation_name = table.relation_name
        index = self.index_on(relation_name, equalities.keys())
        if index is not None:
            key = tuple(equalities[column] for column in index.columns)
            return index.lookup(key)
        candidates: Optional[set[int]] = None
        for index in self.indexes.get(relation_name, ()):
            if set(index.columns) <= set(equalities):
                key = tuple(equalities[column] for column in index.columns)
                candidates = index.lookup(key)
                break
        result = set()
        if candidates is not None:
            for rowid in candidates:
                row = table.get(rowid)
                self.stats["rows_scanned"] += 1
                if all(row.get(c) == v for c, v in equalities.items()):
                    result.add(rowid)
            return result
        for rowid, row in table.scan():
            self.stats["rows_scanned"] += 1
            if all(row.get(c) == v for c, v in equalities.items()):
                result.add(rowid)
        return result

    def select_rowids(
        self,
        relation_name: str,
        predicate: Optional[Expr],
        compiled: bool = True,
    ) -> list[int]:
        """Rowids satisfying a predicate over this single relation.

        The predicate lowers to the shared plan IR and compiles once
        per literal-agnostic signature into closures (an index probe
        when literal equalities pin an indexed column set) cached until
        DDL touches the relation; constants travel as a parameter
        vector, so repeated same-shape probes skip both analysis and
        compilation.  ``compiled=False`` (and shapes the compiler does
        not understand) runs the interpreted per-row ``Expr`` walk —
        the semantic oracle.

        Rowids come back in ascending order on every path: insertion
        (scan) order drifts once undo restores re-append old rowids,
        so sorting is the one ordering both executors can agree on.
        """
        from .plan import lower_rowid_plan

        table = self.table(relation_name)
        if predicate is None or not compiled or self.oracle_mode:
            return self._select_rowids_interpreted(table, relation_name, predicate)
        signature = where_signature(predicate)
        if signature is None:
            return self._select_rowids_interpreted(table, relation_name, predicate)
        key = ("predicate", relation_name, signature)
        entry = self.rowid_plans.get(key, self, relation_name)
        if entry is None:
            conjuncts = predicate.conjuncts()
            root = lower_rowid_plan(self, relation_name, conjuncts)
            plan = compile_tree(self, root, conjuncts, count_index_joins=False)
            self.rowid_plans.put(key, self, relation_name, plan)
            if plan is not None:
                self.stats["rowid_plans_compiled"] += 1
        else:
            plan = entry.payload
            if plan is not None:
                self.stats["rowid_cache_hits"] += 1
        if plan is None:
            return self._select_rowids_interpreted(table, relation_name, predicate)
        return plan.run(self, extract_where_params(predicate))

    def _select_rowids_interpreted(
        self, table: Table, relation_name: str, predicate: Optional[Expr]
    ) -> list[int]:
        matched = []
        for rowid, row in table.scan():
            self.stats["rows_scanned"] += 1
            env = {relation_name: row}
            if predicate is None or predicate.eval(env) is True:
                matched.append(rowid)
        matched.sort()
        return matched

    # ------------------------------------------------------------------
    # constraint checking helpers
    # ------------------------------------------------------------------

    def _coerce(self, relation: Relation, values: Mapping[str, Any]) -> Row:
        row: Row = {}
        for name, attribute in relation.attributes.items():
            row[name] = attribute.sql_type.coerce(values.get(name))
        unknown = set(values) - set(relation.attributes)
        if unknown:
            raise SchemaError(
                f"unknown column(s) {sorted(unknown)} for {relation.name!r}"
            )
        return row

    def _check_not_null(self, relation: Relation, row: Row) -> None:
        for column in relation.not_null_columns():
            if row.get(column) is None:
                raise NotNullViolation(
                    f"{relation.name}.{column} may not be NULL"
                )

    def _check_checks(self, relation: Relation, row: Row) -> None:
        env = {relation.name: row}
        for check in relation.check_constraints:
            if check.expression.eval(env) is False:
                raise CheckViolation(
                    f"{relation.name}: CHECK ({check.expression.to_sql()}) "
                    f"violated by {row!r}"
                )

    def _check_unique(
        self, relation: Relation, row: Row, ignore: Optional[int] = None
    ) -> None:
        for index in self.indexes[relation.name]:
            if index.would_conflict(row, ignore=ignore):
                message = (
                    f"{relation.name}: duplicate key "
                    f"({', '.join(index.columns)}) = "
                    f"{tuple(row.get(c) for c in index.columns)!r}"
                )
                if index.name.startswith("pk_"):
                    raise PrimaryKeyViolation(message)
                raise UniqueViolation(message)

    def _check_foreign_keys(self, relation: Relation, row: Row) -> None:
        for fk in relation.foreign_keys:
            key = tuple(row.get(column) for column in fk.columns)
            if any(component is None for component in key):
                continue  # NULL FK components never violate (SQL MATCH SIMPLE)
            parents = self.find_rowids(
                fk.ref_relation, dict(zip(fk.ref_columns, key))
            )
            if not parents:
                raise ForeignKeyViolation(
                    f"{relation.name}({', '.join(fk.columns)}) = {key!r} has "
                    f"no parent in {fk.ref_relation}"
                )

    # ------------------------------------------------------------------
    # physical operations (index maintenance only, no constraints)
    # ------------------------------------------------------------------

    def _bump_data_version(self, relation_name: str) -> None:
        if self._coalesce_versions:
            return  # one bump per relation per rollback (see _replay_undo)
        self.data_versions[relation_name] = (
            self.data_versions.get(relation_name, 0) + 1
        )

    def _journal_undo(
        self,
        kind: str,
        relation_name: str,
        rowid: int,
        old_values: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Write one undo image to the journal *before* the mutation.

        Undo-of-undo is never journaled: rollback replays are repaired
        after a crash by re-running the journal's original records
        (conditional application makes that idempotent).
        """
        if self.wal is None or self._wal_txn is None or self._replaying:
            return
        self.faults.hit("wal.record", relation_name)
        self.wal.log_undo(self._wal_txn, kind, relation_name, rowid, old_values)

    def _physical_insert(
        self, relation_name: str, row: Row, rowid: Optional[int] = None
    ) -> int:
        self._bump_data_version(relation_name)
        table = self.table(relation_name)
        self._journal_undo(
            "insert",
            relation_name,
            rowid if rowid is not None else table.next_rowid(),
        )
        # table + statistics form the primitive's atomic core (no
        # injection site between them); index maintenance comes last so
        # a transient fault mid-loop leaves a tear the conditional undo
        # fully repairs — re-adding a present entry and removing an
        # absent one are both no-ops
        if rowid is None:
            rowid = table.insert_row(row)
        else:
            table.restore_row(rowid, row)
        stored = table.get(rowid)
        self.statistics.on_insert(relation_name, stored)
        self.columns.on_insert(relation_name, rowid, stored)
        for index in self.indexes[relation_name]:
            index.add(rowid, stored)
        # recorded only once the mutation fully landed: a fault above
        # leaves no event, and the rollback that repairs the tear
        # records a bulk marker instead (see _replay_undo)
        if self.deltas.enabled and not self._replaying:
            self.deltas.record_insert(relation_name, rowid, stored)
        return rowid

    def _physical_delete(self, relation_name: str, rowid: int) -> Row:
        self._bump_data_version(relation_name)
        table = self.table(relation_name)
        self._journal_undo(
            "delete", relation_name, rowid, dict(table.get(rowid))
        )
        removed = table.delete_row(rowid)
        self.statistics.on_delete(relation_name, removed)
        self.columns.on_delete(relation_name, rowid)
        for index in self.indexes[relation_name]:
            index.remove(rowid, removed)
        if self.deltas.enabled and not self._replaying:
            self.deltas.record_delete(relation_name, rowid, removed)
        return removed

    def _physical_update(
        self, relation_name: str, rowid: int, changes: Mapping[str, Any]
    ) -> Row:
        self._bump_data_version(relation_name)
        table = self.table(relation_name)
        row = table.get(rowid)
        self._journal_undo(
            "update",
            relation_name,
            rowid,
            {column: row.get(column) for column in changes},
        )
        old = table.update_row(rowid, changes)
        self.statistics.on_update(relation_name, old, changes)
        self.columns.on_update(relation_name, rowid, dict(changes))
        current = table.get(rowid)
        for index in self.indexes[relation_name]:
            index.remove(rowid, old)
            index.add(rowid, current)
        if self.deltas.enabled and not self._replaying:
            self.deltas.record_update(relation_name, rowid, old, current)
        return old

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    @contextmanager
    def _autocommit_journal(self) -> Iterator[None]:
        """Give a statement outside any transaction its own journal txn.

        An auto-commit statement can still be multi-mutation (cascaded
        deletes, SET NULL fixups): a crash in the middle must be as
        recoverable as one inside an explicit transaction.  An ordinary
        exception means the engine kept control — the journal txn is
        marked resolved and statement semantics stay exactly what they
        were; only a :class:`~repro.rdb.faults.SimulatedCrash`
        (``BaseException``) leaves the txn endless for recovery.
        """
        if self.wal is None or self.txn.active or self._wal_txn is not None \
                or self._replaying:
            yield
            return
        self._wal_txn = self.wal.begin_txn()
        try:
            yield
        # repro: allow[REP003] — deliberately blind to SimulatedCrash:
        # only an *engine-controlled* failure may mark the journal txn
        # aborted; a crash (BaseException) must leave it endless so
        # recovery sees it.  Re-raises, never swallows.
        except Exception:
            self.wal.end_txn(self._wal_txn, "abort")
            raise
        else:
            self.wal.end_txn(self._wal_txn, "commit")
            self.wal.checkpoint()
        finally:
            self._wal_txn = None

    def insert(self, relation_name: str, values: Mapping[str, Any]) -> int:
        """INSERT a tuple, enforcing every constraint.  Returns the rowid."""
        relation = self.relation(relation_name)
        row = self._coerce(relation, values)
        self._check_not_null(relation, row)
        self._check_checks(relation, row)
        self._check_unique(relation, row)
        self._check_foreign_keys(relation, row)
        with self._autocommit_journal():
            # undo is recorded *before* the mutation (the rowid the
            # table will allocate is deterministic): a fault inside the
            # physical insert leaves a row the rollback can still find
            rowid = self.table(relation_name).next_rowid()
            self.txn.record(UndoAction(UndoKind.INSERT, relation_name, rowid))
            allocated = self._physical_insert(relation_name, row)
            assert allocated == rowid
        self.stats["inserts"] += 1
        return rowid

    def delete(self, relation_name: str, rowids: Iterable[int]) -> int:
        """DELETE the given rows, honouring each FK's delete policy.

        Returns the total number of rows removed (cascades included).
        """
        removed = 0
        with self._autocommit_journal():
            for rowid in list(rowids):
                if rowid in self.table(relation_name):
                    removed += self._delete_one(relation_name, rowid)
        return removed

    def delete_where(self, relation_name: str, predicate: Optional[Expr]) -> int:
        return self.delete(
            relation_name, self.select_rowids(relation_name, predicate)
        )

    def _delete_one(self, relation_name: str, rowid: int) -> int:
        table = self.table(relation_name)
        row = dict(table.get(rowid))
        removed = 0
        # resolve children first so RESTRICT fires before the parent dies
        for fk in self.schema.foreign_keys_into(relation_name):
            referrer = fk.relation_name
            key = tuple(row.get(column) for column in fk.ref_columns)
            if any(component is None for component in key):
                continue
            children = self.find_rowids(referrer, dict(zip(fk.columns, key)))
            if not children:
                continue
            if fk.on_delete is DeletePolicy.RESTRICT:
                raise ForeignKeyViolation(
                    f"cannot delete from {relation_name}: {len(children)} "
                    f"row(s) in {referrer} still reference it"
                )
            if fk.on_delete is DeletePolicy.CASCADE:
                for child in children:
                    if child in self.table(referrer):
                        removed += self._delete_one(referrer, child)
            else:  # SET NULL
                nulls = {column: None for column in fk.columns}
                for child in children:
                    if child in self.table(referrer):
                        self.update(referrer, child, nulls)
        if rowid not in table:  # a cascade cycle already removed it
            return removed
        image = dict(table.get(rowid))
        self.txn.record(UndoAction(UndoKind.DELETE, relation_name, rowid, image))
        self._physical_delete(relation_name, rowid)
        self.stats["deletes"] += 1
        return removed + 1

    def update(
        self, relation_name: str, rowid: int, changes: Mapping[str, Any]
    ) -> None:
        """UPDATE one row, enforcing constraints on the new image."""
        relation = self.relation(relation_name)
        table = self.table(relation_name)
        current = dict(table.get(rowid))
        coerced_changes = {}
        for column, value in changes.items():
            attribute = relation.attribute(column)
            coerced_changes[column] = attribute.sql_type.coerce(value)
        new_row = dict(current)
        new_row.update(coerced_changes)
        self._check_not_null(relation, new_row)
        self._check_checks(relation, new_row)
        self._check_unique(relation, new_row, ignore=rowid)
        self._check_foreign_keys(relation, new_row)
        self._forbid_orphaning_update(relation, current, coerced_changes)
        old_changed = {column: current.get(column) for column in coerced_changes}
        with self._autocommit_journal():
            self.txn.record(
                UndoAction(UndoKind.UPDATE, relation_name, rowid, old_changed)
            )
            self._physical_update(relation_name, rowid, coerced_changes)
        self.stats["updates"] += 1

    def _forbid_orphaning_update(
        self, relation: Relation, current: Row, changes: Mapping[str, Any]
    ) -> None:
        """Reject updates of referenced key columns that still have children."""
        for fk in self.schema.foreign_keys_into(relation.name):
            touched = set(fk.ref_columns) & set(changes)
            if not touched:
                continue
            unchanged = all(
                changes.get(column, current.get(column)) == current.get(column)
                for column in touched
            )
            if unchanged:
                continue
            key = tuple(current.get(column) for column in fk.ref_columns)
            children = self.find_rowids(
                fk.relation_name, dict(zip(fk.columns, key))
            )
            if children:
                raise ForeignKeyViolation(
                    f"cannot update referenced key of {relation.name}: "
                    f"{len(children)} row(s) in {fk.relation_name} reference it"
                )

    def update_where(
        self, relation_name: str, predicate: Optional[Expr], changes: Mapping[str, Any]
    ) -> int:
        rowids = self.select_rowids(relation_name, predicate)
        with self._autocommit_journal():
            for rowid in rowids:
                self.update(relation_name, rowid, changes)
        return len(rowids)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def begin(self) -> None:
        self.txn.begin()
        if self.wal is not None:
            self._wal_txn = self.wal.begin_txn()

    def commit(self) -> None:
        # the fault site fires before the in-memory commit: a transient
        # failure writing the commit marker leaves the transaction
        # active (still rollbackable), and a crash here is recovered by
        # rolling back — the durable marker *is* the commit point
        if self.wal is not None and self._wal_txn is not None:
            self.faults.hit("wal.commit")
        self.txn.commit()
        if self.wal is not None and self._wal_txn is not None:
            wal_txn, self._wal_txn = self._wal_txn, None
            self.wal.end_txn(wal_txn, "commit")
            self.wal.checkpoint()

    def log_intent(self, name: str, ops: Sequence[Mapping[str, Any]]) -> None:
        """Journal a checked update's planned operations durably,
        before any of them executes (no-op without a journal txn)."""
        if self.wal is None or self._wal_txn is None:
            return
        self.faults.hit("wal.intent")
        self.wal.log_intent(self._wal_txn, name, ops)

    def rollback(self) -> int:
        """Undo every change of the active transaction.

        Returns the number of undo records replayed (the cost Fig. 14
        charges the no-checking baseline with).  An exception
        mid-replay leaves the unconsumed tail staged; calling
        :meth:`rollback` again resumes it (conditional application
        skips whatever already succeeded).
        """
        log = self.txn.take_rollback_log()
        self._replay_undo(log, site="undo.rollback")
        self.stats["rollbacks"] += 1
        if self.wal is not None and self._wal_txn is not None:
            wal_txn, self._wal_txn = self._wal_txn, None
            self.wal.end_txn(wal_txn, "abort")
            self.wal.checkpoint()
        return len(log)

    def savepoint(self) -> int:
        """Mark the undo-log position of the active transaction."""
        return self.txn.savepoint()

    def rollback_to(self, mark: int) -> int:
        """Undo changes made after :meth:`savepoint`'s *mark*; the
        transaction stays open.  Returns the records replayed.

        Replays the staged pending tail, not just the fresh one — so
        calling :meth:`rollback_to` again after a failure mid-replay
        resumes the interrupted undo instead of abandoning it.
        """
        self.txn.take_rollback_to(mark)
        log = self.txn.take_pending()
        self._replay_undo(log, site="undo.savepoint")
        if log:
            self.stats["rollbacks"] += 1
        return len(log)

    def _replay_undo(
        self, log: Sequence[UndoAction], site: str = "undo.rollback"
    ) -> None:
        """Replay undo actions with coalesced version bumps.

        A rolled-back batch update can undo thousands of rows; bumping
        ``data_versions`` once per undone row costs one write (plus
        statistics bookkeeping) per row mid-replay.  The per-row bumps
        are suspended and replaced by a single per-relation write once
        the replay completes — advancing the version by the number of
        undone rows, so the re-planning threshold still sees the true
        drift magnitude (a 10k-row rollback must not masquerade as one
        statement of drift).

        Each action is applied *conditionally* (delete-if-present /
        restore-if-absent / set-old-values) and confirmed back to the
        transaction manager as it succeeds, which makes replay both
        idempotent and resumable: a failure mid-replay abandons nothing
        — the staged tail replays on the next rollback call.
        """
        touched: dict[str, int] = {}
        for action in log:
            touched[action.relation_name] = (
                touched.get(action.relation_name, 0) + 1
            )
        self._coalesce_versions = True
        self._replaying = True
        try:
            for action in log:
                self.faults.hit(site, action.relation_name)
                self._undo_apply(action)
                self.txn.confirm_undone(action)
        finally:
            # bump even when a replay step raises: the prefix already
            # mutated these relations, and cached plans must see it
            self._coalesce_versions = False
            self._replaying = False
            for relation_name in sorted(touched):
                self.data_versions[relation_name] = (
                    self.data_versions.get(relation_name, 0)
                    + touched[relation_name]
                )
                # the delta log coalesces with rollback exactly like the
                # version bumps: no per-row compensation events replayed,
                # one bulk marker per touched relation instead
                if self.deltas.enabled:
                    self.deltas.record_bulk(relation_name)

    def _undo_apply(self, action: UndoAction) -> None:
        """Apply one undo action conditionally (idempotent)."""
        table = self.table(action.relation_name)
        if action.kind is UndoKind.INSERT:
            if action.rowid in table:
                self._physical_delete(action.relation_name, action.rowid)
        elif action.kind is UndoKind.DELETE:
            if action.rowid not in table:
                self._physical_insert(
                    action.relation_name, action.old_values, action.rowid
                )
        else:
            if action.rowid in table:
                self._physical_update(
                    action.relation_name, action.rowid, action.old_values
                )

    # ------------------------------------------------------------------
    # durability: journal attachment, crash recovery, integrity audit
    # ------------------------------------------------------------------

    def attach_wal(self, wal: Optional[WriteAheadLog] = None) -> WriteAheadLog:
        """Attach a write-ahead journal (a fresh in-memory one by
        default).  From here on, every mutation inside a transaction —
        explicit or auto-commit — journals its undo image first, and
        :meth:`recover` can repair a crash mid-apply."""
        self.wal = wal if wal is not None else WriteAheadLog()
        return self.wal

    def recover(self, redo: bool = False) -> RecoveryReport:
        """Repair crash damage from the journal (idempotent).

        The volatile transaction state died with the process, so it is
        discarded outright; the journal's valid prefix is the only
        witness.  Every transaction without an end marker is rolled
        back by applying its undo records newest-first — conditionally,
        so recovering twice (or crashing *during* recovery and
        recovering again) is safe.  Derived state is then rebuilt
        wholesale rather than trusted: every index is recomputed from
        its table, statistics are dropped, and compiled plans are
        invalidated via a schema-version bump.

        ``redo=True`` additionally re-submits the durable intents of
        crashed transactions (the "replay" half of replay-or-rollback):
        each pending intent re-executes in its own transaction, rolled
        back individually if its constraints no longer hold.
        """
        report = RecoveryReport()
        if self.wal is None:
            return report
        with self.faults.suspended():
            # RAM is gone: the in-memory undo log, the open journal txn
            # and any half-finished replay state did not survive
            self.txn.hard_reset()
            self._wal_txn = None
            self._replaying = False
            self._coalesce_versions = False
            incomplete = self.wal.incomplete_txns()
            report.pending_intents = self.wal.pending_intents()
            if incomplete:
                report.transactions = sorted(incomplete)
                for txn_id in report.transactions:
                    undo_records = [
                        r for r in incomplete[txn_id] if r.get("t") == "undo"
                    ]
                    for record in reversed(undo_records):
                        self._recover_undo(record)
                        report.undo_applied += 1
                for relation_name, table in self.tables.items():
                    for index in self.indexes.get(relation_name, ()):
                        index.rebuild(table)
                    self.statistics.forget(relation_name)
                    self.columns.forget(relation_name)
                    self._bump_schema_version(relation_name)
                    self._bump_data_version(relation_name)
                for txn_id in report.transactions:
                    self.wal.end_txn(txn_id, "abort")
                self.recovery_epoch += 1
                self.stats["recoveries"] += 1
                # the crashed transaction's events (and the bulk markers
                # the repair loop just recorded) describe state that no
                # longer exists; the epoch bump makes every session drop
                # its probe cache, so the log restarts empty
                self.deltas.take()
            self.wal.checkpoint()
        if redo:
            self._redo_intents(report)
        return report

    # Raw undo application: recover() bumps both versions wholesale (and
    # rebuilds indexes/statistics) after every undo image has landed, so
    # a per-image bump here would be redundant.
    # repro: allow[REP004]
    def _recover_undo(self, record: Mapping[str, Any]) -> None:
        """Apply one journaled undo image straight to tuple storage.

        Indexes and statistics are not maintained here — they are
        rebuilt from scratch once every undo image has landed.
        """
        table = self.tables.get(record["rel"])
        if table is None:
            return  # the relation (a temp table, typically) is gone
        rowid = record["rid"]
        kind = record["k"]
        if kind == "insert":
            if rowid in table:
                table.delete_row(rowid)
        elif kind == "delete":
            if rowid not in table:
                table.restore_row(rowid, decode_row(record.get("old") or {}))
        else:
            if rowid in table:
                table.update_row(rowid, decode_row(record.get("old") or {}))

    def _redo_intents(self, report: RecoveryReport) -> None:
        """Re-submit recovered intents, one transaction each."""
        for intent in report.pending_intents:
            name = intent.get("name", "?")
            self.begin()
            try:
                for op in intent.get("ops", ()):
                    self._redo_op(op)
            except ReproError:
                self.rollback()
                report.redo_failed.append(name)
            else:
                self.commit()
                report.redone.append(name)

    def _redo_op(self, op: Mapping[str, Any]) -> None:
        kind = op.get("op")
        relation_name = op["rel"]
        if kind == "insert":
            self.insert(relation_name, decode_row(op.get("values") or {}))
        elif kind == "delete":
            self.delete(relation_name, op.get("rowids") or ())
        elif kind == "update":
            changes = decode_row(op.get("changes") or {})
            for rowid in op.get("rowids") or ():
                if rowid in self.table(relation_name):
                    self.update(relation_name, rowid, changes)
        else:
            raise DatabaseError(f"unknown journaled op kind {kind!r}")

    def verify_integrity(self) -> list[str]:
        """Audit every cross-structure invariant; returns violations.

        The single-source-of-truth is tuple storage; everything derived
        from it is recomputed and compared:

        * every index's buckets against a from-scratch recomputation,
          and its incremental size counter against its bucket contents;
        * uniqueness within unique-index buckets;
        * NOT NULL columns, scanning rows directly;
        * foreign-key closure, resolving parents by direct scan (an
          index lying about parents must not hide a dangling child);
        * current-generation column-store mirrors (rowid/row arrays,
          the position map, materialized column arrays) against the
          row storage;
        * the exact statistics counters (``row_count``/``null_counts``)
          of every relation that has built statistics;
        * rowid allocation monotonicity (no stored rowid at or past the
          allocator's next value).
        """
        violations: list[str] = []
        for relation_name, table in self.tables.items():
            rows = {rowid: row for rowid, row in table.scan()}
            if rows and max(rows) >= table.next_rowid():
                violations.append(
                    f"{relation_name}: stored rowid {max(rows)} >= next "
                    f"allocation {table.next_rowid()}"
                )
            for index in self.indexes.get(relation_name, ()):
                expected: dict[tuple, set[int]] = {}
                for rowid, row in rows.items():
                    key = index.key_of(row)
                    if key is not None:
                        expected.setdefault(key, set()).add(rowid)
                actual = index.entries()
                if actual != expected:
                    missing = sum(
                        len(b - actual.get(k, set())) for k, b in expected.items()
                    )
                    phantom = sum(
                        len(b - expected.get(k, set())) for k, b in actual.items()
                    )
                    violations.append(
                        f"index {index.name}: diverges from {relation_name} "
                        f"({missing} missing, {phantom} phantom entries)"
                    )
                if len(index) != index.counted_size():
                    violations.append(
                        f"index {index.name}: size counter {len(index)} != "
                        f"{index.counted_size()} bucket entries"
                    )
                if index.unique:
                    for key, bucket in actual.items():
                        if len(bucket) > 1:
                            violations.append(
                                f"unique index {index.name}: key {key!r} "
                                f"held by {len(bucket)} rows"
                            )
            relation = self.schema.relations.get(relation_name)
            if relation is None:
                violations.append(f"{relation_name}: table without a relation")
                continue
            for column in relation.not_null_columns():
                for rowid, row in rows.items():
                    if row.get(column) is None:
                        violations.append(
                            f"{relation_name} rowid {rowid}: NULL in NOT NULL "
                            f"column {column}"
                        )
            for fk in relation.foreign_keys:
                parent = self.tables.get(fk.ref_relation)
                if parent is None:
                    violations.append(
                        f"{relation_name}: FK parent {fk.ref_relation} missing"
                    )
                    continue
                parent_keys = {
                    tuple(prow.get(c) for c in fk.ref_columns)
                    for _, prow in parent.scan()
                }
                for rowid, row in rows.items():
                    key = tuple(row.get(c) for c in fk.columns)
                    if any(component is None for component in key):
                        continue
                    if key not in parent_keys:
                        violations.append(
                            f"{relation_name} rowid {rowid}: "
                            f"({', '.join(fk.columns)}) = {key!r} dangles "
                            f"(no parent in {fk.ref_relation})"
                        )
            store = self.columns.peek(relation_name)
            if store is not None:
                mirrored = dict(zip(store.rowids, store.rows))
                if mirrored != rows:
                    violations.append(
                        f"{relation_name}: column store mirrors "
                        f"{len(mirrored)} rows != {len(rows)} stored"
                    )
                if store._positions != {
                    rowid: position
                    for position, rowid in enumerate(store.rowids)
                }:
                    violations.append(
                        f"{relation_name}: column store position map "
                        f"disagrees with its rowid array"
                    )
                for column, values in store.columns.items():
                    if values != [row[column] for row in store.rows]:
                        violations.append(
                            f"{relation_name}.{column}: materialized column "
                            f"array diverges from the mirrored rows"
                        )
            cached = self.statistics.peek(relation_name)
            if cached is not None:
                if cached.row_count != len(rows):
                    violations.append(
                        f"{relation_name}: statistics row_count "
                        f"{cached.row_count} != {len(rows)} stored rows"
                    )
                for column, claimed in cached.null_counts.items():
                    real = sum(
                        1 for row in rows.values() if row.get(column) is None
                    )
                    if claimed != real:
                        violations.append(
                            f"{relation_name}.{column}: statistics null count "
                            f"{claimed} != {real} NULLs stored"
                        )
        return violations

    # ------------------------------------------------------------------
    # bulk loading / cloning
    # ------------------------------------------------------------------

    def load(self, relation_name: str, rows: Sequence[Mapping[str, Any]]) -> list[int]:
        """Insert many rows (constraints enforced row by row)."""
        return [self.insert(relation_name, row) for row in rows]

    def clone(self) -> "Database":
        """A deep copy sharing the schema: same rows under the same rowids.

        Used by the rectangle-rule verifier, which needs to apply a
        translation to a copy and compare the recomputed views.
        """
        copy = Database(self.schema)
        copy.oracle_mode = self.oracle_mode
        for relation_name, table in self.tables.items():
            if relation_name not in copy.tables:  # temp tables
                copy.create_temp_table(relation_name, table.columns)
            for rowid, row in table.scan():
                copy._physical_insert(relation_name, dict(row), rowid)
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = ", ".join(f"{n}={len(t)}" for n, t in self.tables.items())
        return f"Database({sizes})"
