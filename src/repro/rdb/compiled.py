"""Compiled SELECT plans: closures instead of per-row ``Expr`` walks.

``execute_select`` used to re-interpret the WHERE tree for every row of
every join level — the paper's Fig. 15/16 inefficiencies amplified by
the executor itself.  This module compiles a plan **once** into:

* per-level *access methods* — index probe, transient **hash join**
  (built over the inner relation's join columns when equality conjuncts
  exist but no index covers them, exactly what joins against unindexed
  temp-table materializations degrade to), or scan;
* per-level *filter closures* for the residual predicates that become
  applicable at that level;
* a *projection closure* emitting output rows with the same key order
  the interpreted executor produced.

Literals and pre-materialized ``IN`` sets are lifted out as a parameter
vector, so the compiled artifact is shared by every plan with the same
structural :func:`plan_signature` — the common case inside
``UpdateSession`` batches, where probe shapes repeat with different
predicate constants.  :class:`PlanCache` stores compiled plans per
database and invalidates them on DDL (schema version) and DML (per
relation data versions).

Anything the compiler does not understand (unknown expression nodes,
unresolvable column references) falls back to the interpreted executor
in :mod:`repro.rdb.plan`; the negative result is cached too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from .expr import (
    COMPARATORS,
    And,
    ColumnRef,
    Comparison,
    Expr,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
)
from .optimizer import applicable, binding_equalities, choose_index

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (plan -> compiled)
    from .database import Database
    from .index import HashIndex
    from .plan import SelectPlan

__all__ = ["CompiledPlan", "CompiledRowidPredicate", "PlanCache",
           "RowidAccess", "RowidPlanCache", "Uncompilable", "compile_plan",
           "compile_rowid_predicate", "extract_params",
           "extract_where_params", "plan_signature", "where_signature"]

Row = dict[str, Any]
Env = dict[str, Row]
Params = tuple
EvalFn = Callable[[Env, Params], Any]


class Uncompilable(Exception):
    """Raised internally when a plan must run interpreted."""


# ---------------------------------------------------------------------------
# plan signatures and parameter extraction
# ---------------------------------------------------------------------------

def where_signature(predicate: Expr) -> Optional[tuple]:
    """Literal-agnostic structural key of a WHERE tree, one entry per
    conjunct (None: some node the compiled executors don't understand).

    Shared by the SELECT plan cache and the single-relation rowid-path
    cache, so both layers always agree on what counts as the same shape.
    """
    conjunct_sigs = []
    for conjunct in predicate.conjuncts():
        sig = conjunct.signature()
        if sig is None:
            return None
        conjunct_sigs.append(sig)
    return tuple(conjunct_sigs)


def extract_where_params(predicate: Expr) -> Params:
    """A WHERE tree's runtime values, in the compiler's slot order."""
    out: list = []
    for conjunct in predicate.conjuncts():
        conjunct.collect_parameters(out)
    return tuple(out)


def plan_signature(plan: "SelectPlan") -> Optional[tuple]:
    """Literal-agnostic structural key of a plan (None: don't cache)."""
    if plan.columns is None:
        columns_part: Optional[tuple] = None
    else:
        columns_part = tuple(
            (column.column, column.qualifier, column.label)
            for column in plan.columns
        )
    if plan.where is None:
        where_part: Optional[tuple] = None
    else:
        where_part = where_signature(plan.where)
        if where_part is None:
            return None
    return (
        tuple((item.relation_name, item.alias) for item in plan.from_items),
        columns_part,
        where_part,
        plan.select_rowids,
        plan.include_rowids,
    )


def extract_params(plan: "SelectPlan") -> Params:
    """The plan's runtime values, in the compiler's slot order."""
    if plan.where is None:
        return ()
    return extract_where_params(plan.where)


# ---------------------------------------------------------------------------
# expression compiler
# ---------------------------------------------------------------------------

class _ExprCompiler:
    """Compiles ``Expr`` trees into ``fn(env, params)`` closures.

    Parameter slots are assigned in the traversal order
    :meth:`Expr.collect_parameters` uses, so one compiled plan can be
    re-run with the parameter vector of any same-signature plan.
    """

    def __init__(self, columns_of: dict[str, set[str]]) -> None:
        #: FROM-item name -> attribute names of its relation
        self.columns_of = columns_of
        self.slots = 0

    def compile(self, expr: Expr) -> EvalFn:
        if isinstance(expr, Literal):
            slot = self.slots
            self.slots += 1
            return lambda env, params: params[slot]
        if isinstance(expr, ColumnRef):
            return self._compile_column(expr)
        if isinstance(expr, Comparison):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            return _make_comparison(left, right, COMPARATORS[expr.op])
        if isinstance(expr, And):
            left = self.compile(expr.left)
            right = self.compile(expr.right)

            def and_fn(env: Env, params: Params) -> Optional[bool]:
                lhs = left(env, params)
                if lhs is False:
                    return False
                rhs = right(env, params)
                if rhs is False:
                    return False
                if lhs is None or rhs is None:
                    return None
                return True

            return and_fn
        if isinstance(expr, Or):
            left = self.compile(expr.left)
            right = self.compile(expr.right)

            def or_fn(env: Env, params: Params) -> Optional[bool]:
                lhs = left(env, params)
                if lhs is True:
                    return True
                rhs = right(env, params)
                if rhs is True:
                    return True
                if lhs is None or rhs is None:
                    return None
                return False

            return or_fn
        if isinstance(expr, Not):
            operand = self.compile(expr.operand)

            def not_fn(env: Env, params: Params) -> Optional[bool]:
                value = operand(env, params)
                if value is None:
                    return None
                return not value

            return not_fn
        if isinstance(expr, IsNull):
            operand = self.compile(expr.operand)
            negate = expr.negate

            def is_null_fn(env: Env, params: Params) -> bool:
                result = operand(env, params) is None
                return not result if negate else result

            return is_null_fn
        if isinstance(expr, InSubquery):
            operand = self.compile(expr.operand)
            slot = self.slots
            self.slots += 1

            def in_fn(env: Env, params: Params) -> Optional[bool]:
                value = operand(env, params)
                if value is None:
                    return None
                return value in params[slot]

            return in_fn
        raise Uncompilable(f"unknown expression node {type(expr).__name__}")

    def _compile_column(self, ref: ColumnRef) -> EvalFn:
        qualifier, column = ref.qualifier, ref.column
        if qualifier is not None:
            known = self.columns_of.get(qualifier)
            if known is None or column not in known:
                # the interpreted executor reports this lazily (and only
                # for rows it actually reaches) — preserve that
                raise Uncompilable(f"unresolvable reference {ref.to_sql()}")
            return lambda env, params: env[qualifier][column]
        candidates = [
            name for name, columns in self.columns_of.items() if column in columns
        ]
        if len(candidates) == 1:
            name = candidates[0]
            return lambda env, params: env[name][column]
        if not candidates:
            raise Uncompilable(f"unknown column {column!r}")
        # ambiguity is tolerated when every candidate agrees — keep the
        # interpreted resolution for that rare case
        return lambda env, params: ref.eval(env)


def _make_comparison(left: EvalFn, right: EvalFn, op) -> EvalFn:
    def comparison(env: Env, params: Params) -> Optional[bool]:
        lhs = left(env, params)
        rhs = right(env, params)
        if lhs is None or rhs is None:
            return None
        return op(lhs, rhs)

    return comparison


# ---------------------------------------------------------------------------
# compiled plan
# ---------------------------------------------------------------------------

SCAN, INDEX, HASH = "scan", "index", "hash"


class _Level:
    """One join level of a compiled plan."""

    __slots__ = (
        "name", "relation_name", "kind", "index", "key_fns",
        "build_columns", "build_filters", "filters",
    )

    def __init__(self, name: str, relation_name: str) -> None:
        self.name = name
        self.relation_name = relation_name
        self.kind = SCAN
        self.index: Optional["HashIndex"] = None
        self.key_fns: tuple[EvalFn, ...] = ()
        self.build_columns: tuple[str, ...] = ()
        #: predicates over the inner relation only — applied while the
        #: hash table is built, shrinking every bucket
        self.build_filters: tuple[EvalFn, ...] = ()
        self.filters: tuple[EvalFn, ...] = ()


class _Conjunct:
    __slots__ = ("expr", "fn", "left_fn", "right_fn")

    def __init__(self, expr, fn, left_fn=None, right_fn=None) -> None:
        self.expr = expr
        self.fn = fn
        self.left_fn = left_fn
        self.right_fn = right_fn


def _compile_conjuncts(
    compiler: _ExprCompiler, conjuncts: list[Expr]
) -> list["_Conjunct"]:
    """Compile conjuncts in canonical order so parameter slots line up
    with the ``collect_parameters`` traversal; comparisons keep their
    side closures so an equality can later serve as an index/hash key
    function.  Shared by the SELECT plan compiler and the
    single-relation rowid-predicate compiler."""
    compiled: list[_Conjunct] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, Comparison):
            left_fn = compiler.compile(conjunct.left)
            right_fn = compiler.compile(conjunct.right)
            fn = _make_comparison(left_fn, right_fn, COMPARATORS[conjunct.op])
            compiled.append(_Conjunct(conjunct, fn, left_fn, right_fn))
        else:
            compiled.append(_Conjunct(conjunct, compiler.compile(conjunct)))
    return compiled


def _binding_value_fn(conjunct: "_Conjunct", value_expr: Expr) -> EvalFn:
    """The side closure evaluating a binding's value expression."""
    return (
        conjunct.left_fn
        if value_expr is conjunct.expr.left
        else conjunct.right_fn
    )


class CompiledPlan:
    """Closures + access methods for one plan shape."""

    def __init__(
        self,
        order: list[int],
        levels: list[_Level],
        residual_filters: tuple[EvalFn, ...],
        project: Callable[[Env, dict[str, int], Params], Row],
        original_names: tuple[str, ...],
    ) -> None:
        self.order = order
        self.levels = levels
        self.residual_filters = residual_filters
        self.project = project
        #: names in FROM order — result rows sort on this rowid tuple so
        #: output order is independent of the join order chosen
        self.original_names = original_names
        self.reordered = order != sorted(order)

    def run(self, db: "Database", plan: "SelectPlan") -> list[Row]:
        params = extract_params(plan)
        stats = db.stats
        levels = self.levels
        tables = [db.table(level.relation_name) for level in levels]
        hash_tables: list[Optional[dict]] = [None] * len(levels)
        depth = len(levels)
        env: Env = {}
        rowids: dict[str, int] = {}
        keyed_results: list[tuple[tuple, Row]] = []
        residual = self.residual_filters
        project = self.project
        sort_names = self.original_names

        def recurse(position: int) -> None:
            if position == depth:
                for predicate in residual:
                    if predicate(env, params) is not True:
                        return
                key = tuple(rowids[name] for name in sort_names)
                keyed_results.append((key, project(env, rowids, params)))
                return
            level = levels[position]
            table = tables[position]
            name = level.name
            if level.kind is SCAN:
                candidates = table.scan()
            elif level.kind is INDEX:
                stats["index_joins"] += 1
                key = tuple(fn(env, params) for fn in level.key_fns)
                candidates = (
                    (rowid, table.get(rowid))
                    for rowid in level.index.lookup_rowids(key)
                    if rowid in table
                )
            else:  # HASH
                build = hash_tables[position]
                if build is None:
                    build = hash_tables[position] = _build_hash_table(
                        db, table, level, params
                    )
                key = tuple(fn(env, params) for fn in level.key_fns)
                try:
                    candidates = build.get(key, ())
                except TypeError:  # unhashable probe value: no match
                    candidates = ()
            filters = level.filters
            for rowid, row in candidates:
                stats["rows_scanned"] += 1
                env[name] = row
                rowids[name] = rowid
                for predicate in filters:
                    if predicate(env, params) is not True:
                        break
                else:
                    recurse(position + 1)
                del env[name]
                del rowids[name]

        recurse(0)
        keyed_results.sort(key=lambda pair: pair[0])
        return [row for _, row in keyed_results]


def _build_hash_table(
    db: "Database", table, level: _Level, params: Params
) -> dict:
    """Transient hash table over the inner relation's join columns."""
    db.stats["hash_joins"] += 1
    mapping: dict = {}
    columns = level.build_columns
    build_filters = level.build_filters
    name = level.name
    probe_env: Env = {}
    for rowid, row in table.scan():
        db.stats["rows_scanned"] += 1
        if build_filters:
            probe_env[name] = row
            kept = all(fn(probe_env, params) is True for fn in build_filters)
            probe_env.clear()
            if not kept:
                continue
        key = tuple(row[column] for column in columns)
        if any(component is None for component in key):
            continue  # SQL equality: NULL never joins
        mapping.setdefault(key, []).append((rowid, row))
    return mapping


# ---------------------------------------------------------------------------
# plan compilation
# ---------------------------------------------------------------------------

def compile_plan(
    db: "Database", plan: "SelectPlan", order: list[int]
) -> Optional[CompiledPlan]:
    """Compile *plan* with join levels in *order*; None → run interpreted."""
    try:
        return _compile(db, plan, order)
    except Uncompilable:
        return None


def _compile(db: "Database", plan: "SelectPlan", order: list[int]) -> CompiledPlan:
    columns_of = {
        item.name: set(db.relation(item.relation_name).attribute_names)
        for item in plan.from_items
    }
    compiler = _ExprCompiler(columns_of)

    conjuncts = plan.where.conjuncts() if plan.where is not None else []
    compiled_conjuncts = _compile_conjuncts(compiler, conjuncts)

    levels: list[_Level] = []
    bound: set[str] = set()
    remaining = list(compiled_conjuncts)
    for position in order:
        item = plan.from_items[position]
        target = item.name
        level = _Level(target, item.relation_name)

        equalities: dict[str, EvalFn] = {}
        used: list[tuple[_Conjunct, str]] = []
        deferred: list[_Conjunct] = []
        for conjunct in remaining:
            binding = binding_equalities(conjunct.expr, target, bound)
            if binding is not None and binding[0] not in equalities:
                column, value_expr = binding
                equalities[column] = _binding_value_fn(conjunct, value_expr)
                used.append((conjunct, column))
            else:
                deferred.append(conjunct)

        bound_after = bound | {target}
        applicable_now = [
            conjunct for conjunct in deferred if applicable(conjunct.expr, bound_after)
        ]
        applicable_ids = {id(conjunct) for conjunct in applicable_now}
        remaining = [
            conjunct for conjunct in deferred if id(conjunct) not in applicable_ids
        ]

        if equalities:
            index = choose_index(db, item.relation_name, set(equalities))
            if index is not None:
                level.kind = INDEX
                level.index = index
                level.key_fns = tuple(equalities[c] for c in index.columns)
                covered = set(index.columns)
                applicable_now.extend(
                    conjunct for conjunct, column in used if column not in covered
                )
            elif bound:
                level.kind = HASH
                build_columns = tuple(sorted(equalities))
                level.build_columns = build_columns
                level.key_fns = tuple(equalities[c] for c in build_columns)
            else:
                # outermost level: it is entered exactly once, so a hash
                # build can never amortize — scan and filter instead
                applicable_now.extend(conjunct for conjunct, _ in used)

        filters: list[EvalFn] = []
        build_filters: list[EvalFn] = []
        for conjunct in applicable_now:
            refs = {qualifier for qualifier, _ in conjunct.expr.columns()}
            if level.kind is HASH and refs <= {target}:
                build_filters.append(conjunct.fn)
            else:
                filters.append(conjunct.fn)
        level.filters = tuple(filters)
        level.build_filters = tuple(build_filters)
        levels.append(level)
        bound = bound_after

    residual_filters = tuple(conjunct.fn for conjunct in remaining)
    project = _compile_projection(db, plan, compiler)
    return CompiledPlan(
        order=order,
        levels=levels,
        residual_filters=residual_filters,
        project=project,
        original_names=tuple(item.name for item in plan.from_items),
    )


def _compile_projection(
    db: "Database", plan: "SelectPlan", compiler: _ExprCompiler
) -> Callable[[Env, dict[str, int], Params], Row]:
    names = tuple(item.name for item in plan.from_items)
    if plan.select_rowids:
        if len(names) == 1:
            only = names[0]
            return lambda env, rowids, params: {"ROWID": rowids[only]}
        return lambda env, rowids, params: {
            f"{name}.ROWID": rowids[name] for name in names
        }
    if plan.columns is None:
        # SELECT *: precompute output keys with the interpreted
        # executor's collision rule (qualified name on clashes)
        entries: list[tuple[str, str, str]] = []
        existing: set[str] = set()
        for item in plan.from_items:
            for column in db.table(item.relation_name).columns:
                out_key = (
                    column if column not in existing else f"{item.name}.{column}"
                )
                existing.add(out_key)
                entries.append((item.name, column, out_key))

        def project_star(env: Env, rowids: dict[str, int], params: Params) -> Row:
            return {key: env[name][column] for name, column, key in entries}

        base = project_star
    else:
        getters = [
            (column.output_name, compiler.compile(ColumnRef(column.column, column.qualifier)))
            for column in plan.columns
        ]

        def project_columns(env: Env, rowids: dict[str, int], params: Params) -> Row:
            return {label: fn(env, params) for label, fn in getters}

        base = project_columns
    if not plan.include_rowids:
        return base

    def with_rowids(env: Env, rowids: dict[str, int], params: Params) -> Row:
        row = base(env, rowids, params)
        for name in names:
            row[f"{name}.ROWID"] = rowids[name]
        return row

    return with_rowids


# ---------------------------------------------------------------------------
# compiled single-relation rowid paths (find_rowids / select_rowids)
# ---------------------------------------------------------------------------

class RowidAccess:
    """Cached access decision for ``Database.find_rowids``.

    For one (relation, equality-column-set) signature: the widest index
    whose columns the equalities pin (chosen through
    :func:`repro.rdb.optimizer.choose_index`, so the most selective
    covering index narrows the scan), plus the residual columns the
    probe must still verify per candidate row.  ``index=None`` means a
    full scan is unavoidable.
    """

    __slots__ = ("index", "residual")

    def __init__(
        self, index: Optional["HashIndex"], residual: tuple[str, ...]
    ) -> None:
        self.index = index
        self.residual = residual


def compile_rowid_access(
    db: "Database", relation_name: str, columns: frozenset
) -> RowidAccess:
    """Pick the access path for an equality lookup over *columns*."""
    index = choose_index(db, relation_name, set(columns))
    if index is None:
        return RowidAccess(None, tuple(sorted(columns)))
    residual = tuple(sorted(columns - set(index.columns)))
    return RowidAccess(index, residual)


class CompiledRowidPredicate:
    """A single-relation WHERE clause compiled into closures.

    The artifact is literal-agnostic: predicate constants travel in the
    parameter vector (same slot order as :meth:`Expr.collect_parameters`),
    so one compiled predicate serves every same-shape probe.  When
    literal equalities pin an indexed column set, candidates come from
    one index probe instead of a scan; the remaining conjuncts run as
    compiled filters.
    """

    __slots__ = ("name", "index", "key_fns", "filters")

    def __init__(
        self,
        name: str,
        index: Optional["HashIndex"],
        key_fns: tuple[EvalFn, ...],
        filters: tuple[EvalFn, ...],
    ) -> None:
        self.name = name
        self.index = index
        self.key_fns = key_fns
        self.filters = filters

    def run(self, db: "Database", table, params: Params) -> list[int]:
        stats = db.stats
        name = self.name
        env: Env = {}
        matched: list[int] = []
        filters = self.filters
        if self.index is not None:
            try:
                key = tuple(fn(env, params) for fn in self.key_fns)
                rowids = self.index.lookup_rowids(key)
            except TypeError:  # unhashable probe value: no match
                rowids = ()
            candidates = (
                (rowid, table.get(rowid)) for rowid in rowids if rowid in table
            )
        else:
            candidates = table.scan()
        for rowid, row in candidates:
            stats["rows_scanned"] += 1
            env[name] = row
            for fn in filters:
                if fn(env, params) is not True:
                    break
            else:
                matched.append(rowid)
        # select_rowids returns ascending rowids on every path: scan
        # order drifts once undo restores re-append old rowids, and the
        # index bucket order is arbitrary — sorting is the one ordering
        # compiled and interpreted can always agree on
        matched.sort()
        return matched


def compile_rowid_predicate(
    db: "Database", relation_name: str, predicate: Expr
) -> Optional[CompiledRowidPredicate]:
    """Compile a single-relation predicate; None → run interpreted."""
    try:
        return _compile_rowid_predicate(db, relation_name, predicate)
    except Uncompilable:
        return None


def _compile_rowid_predicate(
    db: "Database", relation_name: str, predicate: Expr
) -> CompiledRowidPredicate:
    columns_of = {
        relation_name: set(db.relation(relation_name).attribute_names)
    }
    compiler = _ExprCompiler(columns_of)
    compiled_conjuncts = _compile_conjuncts(compiler, predicate.conjuncts())
    # literal equalities can pin an index (bound set is empty: there is
    # only one relation, so column-to-column equalities never qualify)
    equalities: dict[str, tuple[_Conjunct, EvalFn]] = {}
    for conjunct in compiled_conjuncts:
        binding = binding_equalities(conjunct.expr, relation_name, set())
        if binding is not None and binding[0] not in equalities:
            column, value_expr = binding
            equalities[column] = (
                conjunct, _binding_value_fn(conjunct, value_expr)
            )
    index = None
    key_fns: tuple[EvalFn, ...] = ()
    filters = compiled_conjuncts
    if equalities:
        index = choose_index(db, relation_name, set(equalities))
        if index is not None:
            key_fns = tuple(equalities[c][1] for c in index.columns)
            consumed = {id(equalities[c][0]) for c in index.columns}
            filters = [c for c in compiled_conjuncts if id(c) not in consumed]
    return CompiledRowidPredicate(
        name=relation_name,
        index=index,
        key_fns=key_fns,
        filters=tuple(conjunct.fn for conjunct in filters),
    )


class _RowidEntry:
    __slots__ = ("schema_version", "payload")

    def __init__(self, schema_version: int, payload: Any) -> None:
        self.schema_version = schema_version
        self.payload = payload


class RowidPlanCache:
    """Compiled rowid-path artifacts, one cache per database.

    Holds both :class:`RowidAccess` decisions (``find_rowids``) and
    :class:`CompiledRowidPredicate` closures (``select_rowids``), keyed
    on literal-agnostic signatures.  Entries are pinned to the owning
    relation's schema version: CREATE INDEX / DROP TABLE / temp-table
    recreation invalidates them, while DML never does — the artifacts
    read live tables and indexes, so data drift cannot make them wrong,
    only DDL can.  ``payload=None`` remembers that a predicate shape
    must run interpreted.
    """

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._entries: dict[tuple, _RowidEntry] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, key: tuple, db: "Database", relation_name: str) -> Optional[_RowidEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if db.schema_versions.get(relation_name, 0) != entry.schema_version:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: tuple, db: "Database", relation_name: str, payload: Any) -> None:
        if len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = _RowidEntry(
            db.schema_versions.get(relation_name, 0), payload
        )

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------------
# plan cache
# ---------------------------------------------------------------------------

class _Entry:
    __slots__ = ("schema_versions", "data_versions", "row_counts", "compiled")

    def __init__(
        self,
        schema_versions: dict[str, int],
        data_versions: dict[str, int],
        row_counts: dict[str, int],
        compiled: Optional[CompiledPlan],
    ) -> None:
        self.schema_versions = schema_versions
        self.data_versions = data_versions
        self.row_counts = row_counts
        self.compiled = compiled


class PlanCache:
    """Compiled plans keyed on :func:`plan_signature`.

    Entries are validated against the per-relation schema versions (DDL:
    CREATE/DROP TABLE, CREATE INDEX) and data versions (DML) of the
    relations the plan reads — while DDL/DML against *unrelated*
    relations (e.g. the outside strategy's temp-table churn) leaves the
    entry untouched.

    DDL always invalidates (a compiled plan may hold a dropped index).
    DML is judged by the **re-planning threshold**: a cached join order
    survives while the accumulated DML drift per relation stays within
    ``max(db.replan_min_ops, db.replan_threshold × rows-at-compile-time)``
    — compiled plans read live tables and indexes, so small drift only
    risks a stale *order*, never a wrong *result*.  Past the threshold
    the cardinalities that justified the order are declared stale and
    the plan recompiles against fresh statistics.  ``compiled=None``
    entries remember that a shape must run interpreted.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: dict[tuple, _Entry] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: validations that saw DML drift below the threshold and kept
        #: the cached plan (the "any DML recompiles" rule would not have)
        self.drift_survivals = 0

    def get(self, signature: tuple, db: "Database") -> Optional[_Entry]:
        entry = self._entries.get(signature)
        if entry is None:
            self.misses += 1
            return None
        if any(
            db.schema_versions.get(relation, 0) != version
            for relation, version in entry.schema_versions.items()
        ):
            return self._invalidate(signature)
        drifted = False
        for relation, version in entry.data_versions.items():
            delta = db.data_versions.get(relation, 0) - version
            if delta == 0:
                continue
            allowed = max(
                db.replan_min_ops,
                int(db.replan_threshold * entry.row_counts.get(relation, 0)),
            )
            if delta > allowed:
                return self._invalidate(signature)
            drifted = True
        if drifted:
            self.drift_survivals += 1
            db.stats["replans_avoided"] += 1
        self.hits += 1
        return entry

    def _invalidate(self, signature: tuple) -> None:
        del self._entries[signature]
        self.invalidations += 1
        self.misses += 1
        return None

    def put(self, signature: tuple, db: "Database",
            compiled: Optional[CompiledPlan],
            relations: set[str]) -> None:
        if len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[signature] = _Entry(
            {relation: db.schema_versions.get(relation, 0) for relation in relations},
            {relation: db.data_versions.get(relation, 0) for relation in relations},
            {
                relation: len(db.tables[relation]) if relation in db.tables else 0
                for relation in relations
            },
            compiled,
        )

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
