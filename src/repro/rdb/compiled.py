"""Compiled physical plans: operator trees lowered into nested closures.

The plan IR in :mod:`repro.rdb.plan` describes *what* to run (Scan /
IndexProbe / Filter / NestedLoopJoin / HashJoin / Sort / Project /
Distinct); this module turns one tree into *how*: every operator
compiles to a closure in continuation-passing style — a node receives
the compiled continuation of everything downstream and bakes it in, so
executing a plan is one chain of direct calls with no per-row dispatch,
no ``Expr`` walks and no intermediate row materialization outside hash
builds.

Literals and pre-materialized ``IN`` sets are lifted out as a parameter
vector (slot order = the logical plan's canonical conjunct order), so
one compiled artifact serves every query with the same structural
signature — the common case inside ``UpdateSession`` batches, where
probe shapes repeat with different predicate constants.

Two caches hold compiled artifacts per database:

* :class:`PlanCache` — SELECT plans keyed on the logical plan
  signature, invalidated by DDL and by DML drift past the re-planning
  threshold;
* :class:`RowidPlanCache` — the single-relation ``find_rowids`` /
  ``select_rowids`` plans, keyed on cheap per-call signatures and
  pinned to the owning relation's schema version.

Anything the compiler does not understand (unknown expression nodes,
unresolvable column references) falls back to the interpreted executor
in :mod:`repro.rdb.plan`; the negative result is cached too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from .expr import (
    COMPARATORS,
    And,
    ColumnRef,
    Comparison,
    Expr,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (plan -> compiled)
    from .database import Database
    from .plan import (
        Filter,
        HashJoin,
        IndexProbe,
        PlanNode,
        Project,
        Scan,
    )

__all__ = ["CompiledPlan", "PlanCache", "RowidPlanCache", "Uncompilable",
           "compile_tree", "dedup_rows", "extract_where_params",
           "where_signature"]

Row = dict[str, Any]
Env = dict[str, Row]
Params = tuple
EvalFn = Callable[[Env, Params], Any]


class Uncompilable(Exception):
    """Raised internally when a plan must run interpreted."""


# ---------------------------------------------------------------------------
# predicate signatures and parameter extraction
# ---------------------------------------------------------------------------

def where_signature(predicate: Expr) -> Optional[tuple]:
    """Literal-agnostic structural key of a WHERE tree, one entry per
    conjunct (None: some node the compiled executors don't understand).

    This is the cheap per-call key of the rowid-path cache; the SELECT
    plan cache keys on the richer :class:`repro.rdb.plan.LogicalPlan`
    signature, which canonicalizes conjunct order on top of this.
    """
    conjunct_sigs = []
    for conjunct in predicate.conjuncts():
        sig = conjunct.signature()
        if sig is None:
            return None
        conjunct_sigs.append(sig)
    return tuple(conjunct_sigs)


def extract_where_params(predicate: Expr) -> Params:
    """A WHERE tree's runtime values, in the compiler's slot order."""
    out: list = []
    for conjunct in predicate.conjuncts():
        conjunct.collect_parameters(out)
    return tuple(out)


def dedup_rows(rows: list[Row]) -> list[Row]:
    """DISTINCT: drop duplicate rows, keeping the first occurrence.

    Every row of one projection shares the same keys, so the dedup
    column order is computed once, not per row.
    """
    if not rows:
        return rows
    key_columns = sorted(rows[0])
    seen: set[tuple] = set()
    unique_rows = []
    for row in rows:
        key = tuple(row[column] for column in key_columns)
        if key not in seen:
            seen.add(key)
            unique_rows.append(row)
    return unique_rows


# ---------------------------------------------------------------------------
# expression compiler
# ---------------------------------------------------------------------------

class _ExprCompiler:
    """Compiles ``Expr`` trees into ``fn(env, params)`` closures.

    Parameter slots are assigned in the traversal order
    :meth:`Expr.collect_parameters` uses, so one compiled plan can be
    re-run with the parameter vector of any same-signature plan.
    """

    def __init__(self, columns_of: dict[str, set[str]]) -> None:
        #: FROM-item name -> attribute names of its relation
        self.columns_of = columns_of
        self.slots = 0

    def compile(self, expr: Expr) -> EvalFn:
        if isinstance(expr, Literal):
            slot = self.slots
            self.slots += 1
            return lambda env, params: params[slot]
        if isinstance(expr, ColumnRef):
            return self._compile_column(expr)
        if isinstance(expr, Comparison):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            return _make_comparison(left, right, COMPARATORS[expr.op])
        if isinstance(expr, And):
            left = self.compile(expr.left)
            right = self.compile(expr.right)

            def and_fn(env: Env, params: Params) -> Optional[bool]:
                lhs = left(env, params)
                if lhs is False:
                    return False
                rhs = right(env, params)
                if rhs is False:
                    return False
                if lhs is None or rhs is None:
                    return None
                return True

            return and_fn
        if isinstance(expr, Or):
            left = self.compile(expr.left)
            right = self.compile(expr.right)

            def or_fn(env: Env, params: Params) -> Optional[bool]:
                lhs = left(env, params)
                if lhs is True:
                    return True
                rhs = right(env, params)
                if rhs is True:
                    return True
                if lhs is None or rhs is None:
                    return None
                return False

            return or_fn
        if isinstance(expr, Not):
            operand = self.compile(expr.operand)

            def not_fn(env: Env, params: Params) -> Optional[bool]:
                value = operand(env, params)
                if value is None:
                    return None
                return not value

            return not_fn
        if isinstance(expr, IsNull):
            operand = self.compile(expr.operand)
            negate = expr.negate

            def is_null_fn(env: Env, params: Params) -> bool:
                result = operand(env, params) is None
                return not result if negate else result

            return is_null_fn
        if isinstance(expr, InSubquery):
            operand = self.compile(expr.operand)
            slot = self.slots
            self.slots += 1

            def in_fn(env: Env, params: Params) -> Optional[bool]:
                value = operand(env, params)
                if value is None:
                    return None
                return value in params[slot]

            return in_fn
        raise Uncompilable(f"unknown expression node {type(expr).__name__}")

    def _compile_column(self, ref: ColumnRef) -> EvalFn:
        qualifier, column = ref.qualifier, ref.column
        if qualifier is not None:
            known = self.columns_of.get(qualifier)
            if known is None or column not in known:
                # the interpreted executor reports this lazily (and only
                # for rows it actually reaches) — preserve that
                raise Uncompilable(f"unresolvable reference {ref.to_sql()}")
            return lambda env, params: env[qualifier][column]
        candidates = [
            name for name, columns in self.columns_of.items() if column in columns
        ]
        if len(candidates) == 1:
            name = candidates[0]
            return lambda env, params: env[name][column]
        if not candidates:
            raise Uncompilable(f"unknown column {column!r}")
        # ambiguity is tolerated when every candidate agrees — keep the
        # interpreted resolution for that rare case
        return lambda env, params: ref.eval(env)


def _make_comparison(
    left: EvalFn, right: EvalFn, op: Callable[[Any, Any], bool]
) -> EvalFn:
    def comparison(env: Env, params: Params) -> Optional[bool]:
        lhs = left(env, params)
        rhs = right(env, params)
        if lhs is None or rhs is None:
            return None
        return op(lhs, rhs)

    return comparison


class _Conjunct:
    __slots__ = ("expr", "fn", "left_fn", "right_fn")

    def __init__(
        self,
        expr: Expr,
        fn: EvalFn,
        left_fn: Optional[EvalFn] = None,
        right_fn: Optional[EvalFn] = None,
    ) -> None:
        self.expr = expr
        self.fn = fn
        self.left_fn = left_fn
        self.right_fn = right_fn


def _compile_conjuncts(
    compiler: _ExprCompiler, conjuncts: list[Expr]
) -> dict[int, _Conjunct]:
    """Compile conjuncts in canonical order so parameter slots line up
    with the logical plan's :meth:`parameters` extraction; comparisons
    keep their side closures so an equality can serve as an index or
    hash key function without consuming fresh slots."""
    compiled: dict[int, _Conjunct] = {}
    for conjunct in conjuncts:
        if isinstance(conjunct, Comparison):
            left_fn = compiler.compile(conjunct.left)
            right_fn = compiler.compile(conjunct.right)
            fn = _make_comparison(left_fn, right_fn, COMPARATORS[conjunct.op])
            compiled[id(conjunct)] = _Conjunct(conjunct, fn, left_fn, right_fn)
        else:
            compiled[id(conjunct)] = _Conjunct(
                conjunct, compiler.compile(conjunct)
            )
    return compiled


# ---------------------------------------------------------------------------
# runtime context
# ---------------------------------------------------------------------------

class _Ctx:
    """Per-execution state threaded through the compiled closures."""

    __slots__ = ("stats", "env", "rowids", "params", "tables", "hashes",
                 "results")

    def __init__(
        self,
        stats: dict[str, int],
        params: Params,
        tables: list,
        hash_count: int,
    ) -> None:
        self.stats = stats
        self.env: Env = {}
        self.rowids: dict[str, int] = {}
        self.params = params
        self.tables = tables
        self.hashes: list[Optional[dict]] = [None] * hash_count
        self.results: list = []


RunFn = Callable[[_Ctx], None]


# ---------------------------------------------------------------------------
# compiled plan
# ---------------------------------------------------------------------------

class CompiledPlan:
    """One physical plan tree, compiled into nested closures."""

    __slots__ = (
        "root_run", "leaf_relations", "hash_count", "mode", "distinct",
        "reordered", "bushy", "index_only", "_explain_root", "_explain_text",
    )

    def __init__(
        self,
        root_run: RunFn,
        leaf_relations: list[str],
        hash_count: int,
        mode: str,
        distinct: bool,
        reordered: bool,
        bushy: bool,
        explain_root: "PlanNode",
        index_only: Optional[tuple] = None,
    ) -> None:
        self.root_run = root_run
        self.leaf_relations = leaf_relations
        self.hash_count = hash_count
        self.mode = mode
        self.distinct = distinct
        self.reordered = reordered
        self.bushy = bushy
        #: the physical tree, kept for :attr:`explain_text` — rendering
        #: is lazy so the rowid-path compiles on the constraint-check
        #: hot path (which never surface EXPLAIN) pay nothing
        self._explain_root = explain_root
        self._explain_text: Optional[str] = None
        #: ``(index, key_fns)`` when the whole plan is one covering
        #: index lookup emitting rowids — served straight from the
        #: bucket, no row fetch, no scan accounting (the ``find_rowids``
        #: constraint-check hot path)
        self.index_only = index_only

    @property
    def explain_text(self) -> str:
        """The rendered operator tree (memoized on first read)."""
        if self._explain_text is None:
            self._explain_text = self._explain_root.explain()
        return self._explain_text

    def _execute(self, db: "Database", params: Params) -> list:
        ctx = _Ctx(
            db.stats,
            params,
            [db.table(name) for name in self.leaf_relations],
            self.hash_count,
        )
        self.root_run(ctx)
        return ctx.results

    def run(self, db: "Database", params: Params) -> list:
        if self.index_only is not None:
            index, key_fns = self.index_only
            try:
                key = tuple(fn({}, params) for fn in key_fns)
                return sorted(index.lookup(key))
            except TypeError:  # unhashable probe value: no match
                return []
        results = self._execute(db, params)
        if self.mode == "rowid_list":
            # ascending rowids on every path: scan order drifts once
            # undo restores re-append old rowids, and index bucket
            # order is arbitrary — sorting is the one ordering the
            # compiled and interpreted executors can always agree on
            results.sort()
            return results
        # deterministic output: rowid order of the original FROM clause
        results.sort(key=_sort_key)
        rows = [row for _, row in results]
        if self.distinct:
            rows = dedup_rows(rows)
        return rows

    def run_rowid_set(self, db: "Database", params: Params) -> set:
        """``find_rowids``' contract: membership only, no ordering —
        skips the ascending sort :meth:`run` pays for ``select_rowids``."""
        if self.index_only is not None:
            index, key_fns = self.index_only
            try:
                key = tuple(fn({}, params) for fn in key_fns)
                return index.lookup(key)
            except TypeError:  # unhashable probe value: no match
                return set()
        return set(self._execute(db, params))


def _sort_key(pair: tuple) -> tuple:
    return pair[0]


# ---------------------------------------------------------------------------
# tree compilation
# ---------------------------------------------------------------------------

def compile_tree(
    db: "Database",
    root: "PlanNode",
    conjuncts: list[Expr],
    count_index_joins: bool = True,
    reordered: bool = False,
    bushy: bool = False,
) -> Optional[CompiledPlan]:
    """Compile a physical plan tree; None → the plan runs interpreted.

    *conjuncts* is the canonical conjunct list of the owning logical
    plan — every ``Filter`` predicate and every index/hash key in the
    tree references one of these expressions, and compiling them first
    (in order) pins the parameter slot layout.

    *reordered* / *bushy* are the enumerator's verdicts about the join
    tree this physical plan lowered from (``JoinTree.leaf_positions`` /
    ``JoinTree.is_bushy``) — the compiler records them for the
    ``reorders`` / ``bushy_plans`` counters rather than re-deriving its
    own notion from the lowered tree.

    ``count_index_joins=False`` suppresses the ``index_joins`` counter —
    the single-relation rowid paths never counted their probes as join
    levels, and constraint checks would otherwise dominate the metric.
    """
    try:
        return _TreeCompiler(
            db, root, conjuncts, count_index_joins, reordered, bushy
        ).compile()
    except Uncompilable:
        return None


def _leaf_nodes(node: "PlanNode") -> list:
    if node.kind in ("scan", "index_probe"):
        return [node]
    return [child for sub in node.children() for child in _leaf_nodes(sub)]


class _TreeCompiler:
    def __init__(
        self,
        db: "Database",
        root: "PlanNode",
        conjuncts: list[Expr],
        count_index_joins: bool,
        reordered: bool,
        bushy: bool,
    ) -> None:
        self.db = db
        self.root = root
        self.count_index_joins = count_index_joins
        self.reordered = reordered
        self.bushy = bushy
        leaves = _leaf_nodes(root)
        self.leaf_relations = [leaf.relation_name for leaf in leaves]
        self.leaf_slots = {id(leaf): slot for slot, leaf in enumerate(leaves)}
        self.hash_count = 0
        columns_of = {
            leaf.name: set(db.relation(leaf.relation_name).attribute_names)
            for leaf in leaves
        }
        self.expr_compiler = _ExprCompiler(columns_of)
        self.conjunct_map = _compile_conjuncts(self.expr_compiler, conjuncts)

    # -- helpers -------------------------------------------------------------

    def _side_fn(self, conjunct: Expr, side: Expr) -> EvalFn:
        """The compiled closure of one side of an equality conjunct —
        reused from the conjunct's compilation so parameter slots stay
        aligned with the logical plan's extraction order."""
        compiled = self.conjunct_map[id(conjunct)]
        return compiled.left_fn if side is conjunct.left else compiled.right_fn

    def _predicate_fns(self, predicates: tuple[Expr, ...]) -> tuple[EvalFn, ...]:
        return tuple(self.conjunct_map[id(p)].fn for p in predicates)

    # -- node compilation (continuation-passing) -----------------------------

    def compile(self) -> CompiledPlan:
        node = self.root
        distinct = False
        if node.kind == "distinct":
            distinct = True
            node = node.child
        if node.kind != "project":
            raise Uncompilable(f"unexpected root {node.kind}")
        project_node = node
        sort_node = project_node.child
        if sort_node.kind != "sort":
            raise Uncompilable(f"unexpected project child {sort_node.kind}")
        join_root = sort_node.child
        mode = project_node.mode

        index_only = self._index_only(mode, join_root)
        if index_only is not None:
            return CompiledPlan(
                root_run=lambda ctx: None,
                leaf_relations=[],
                hash_count=0,
                mode=mode,
                distinct=distinct,
                reordered=False,
                bushy=False,
                explain_root=self.root,
                index_only=index_only,
            )

        if mode == "rowid_list":
            only_name = sort_node.names[0]

            def collect(ctx: _Ctx) -> None:
                ctx.results.append(ctx.rowids[only_name])
        else:
            project = self._compile_projection(project_node)
            sort_names = sort_node.names

            def collect(ctx: _Ctx) -> None:
                rowids = ctx.rowids
                ctx.results.append(
                    (
                        tuple(rowids[name] for name in sort_names),
                        project(ctx.env, rowids, ctx.params),
                    )
                )

        root_run = self._compile_node(join_root, collect)
        return CompiledPlan(
            root_run=root_run,
            leaf_relations=self.leaf_relations,
            hash_count=self.hash_count,
            mode=mode,
            distinct=distinct,
            reordered=self.reordered,
            bushy=self.bushy,
            explain_root=self.root,
        )

    def _index_only(self, mode: str, join_root: "PlanNode") -> Optional[tuple]:
        """``rowid_list`` plans that are one covering index lookup with
        literal keys and no residual predicates skip execution entirely:
        the bucket *is* the answer."""
        if mode != "rowid_list" or join_root.kind != "index_probe":
            return None
        if not all(
            isinstance(value, Literal) for _conjunct, value in join_root.keys
        ):
            return None
        key_fns = tuple(
            self._side_fn(conjunct, value) for conjunct, value in join_root.keys
        )
        return (join_root.index, key_fns)

    def _compile_node(self, node: "PlanNode", emit: RunFn) -> RunFn:
        kind = node.kind
        if kind == "scan":
            return self._compile_scan(node, emit)
        if kind == "index_probe":
            return self._compile_index_probe(node, emit)
        if kind == "filter":
            return self._compile_filter(node, emit)
        if kind == "nested_loop":
            inner = self._compile_node(node.inner, emit)
            return self._compile_node(node.outer, inner)
        if kind == "hash_join":
            return self._compile_hash_join(node, emit)
        raise Uncompilable(f"unknown plan node {kind}")

    def _compile_scan(self, node: "Scan", emit: RunFn) -> RunFn:
        slot = self.leaf_slots[id(node)]
        name = node.name

        def run(ctx: _Ctx) -> None:
            stats = ctx.stats
            env = ctx.env
            rowids = ctx.rowids
            for rowid, row in ctx.tables[slot].scan():
                stats["rows_scanned"] += 1
                env[name] = row
                rowids[name] = rowid
                emit(ctx)
            env.pop(name, None)
            rowids.pop(name, None)

        return run

    def _compile_index_probe(self, node: "IndexProbe", emit: RunFn) -> RunFn:
        slot = self.leaf_slots[id(node)]
        name = node.name
        index = node.index
        key_fns = tuple(
            self._side_fn(conjunct, value) for conjunct, value in node.keys
        )
        count_probes = self.count_index_joins

        def run(ctx: _Ctx) -> None:
            stats = ctx.stats
            if count_probes:
                stats["index_joins"] += 1
            env = ctx.env
            params = ctx.params
            try:
                key = tuple(fn(env, params) for fn in key_fns)
                bucket = index.lookup_rowids(key)
            except TypeError:  # unhashable probe value: no match
                bucket = ()
            table = ctx.tables[slot]
            rowids = ctx.rowids
            for rowid in bucket:
                if rowid not in table:
                    continue
                stats["rows_scanned"] += 1
                env[name] = table.get(rowid)
                rowids[name] = rowid
                emit(ctx)
            env.pop(name, None)
            rowids.pop(name, None)

        return run

    def _compile_filter(self, node: "Filter", emit: RunFn) -> RunFn:
        fns = self._predicate_fns(node.predicates)

        def check(ctx: _Ctx) -> None:
            env = ctx.env
            params = ctx.params
            for fn in fns:
                if fn(env, params) is not True:
                    return
            emit(ctx)

        return self._compile_node(node.child, check)

    def _compile_hash_join(self, node: "HashJoin", emit: RunFn) -> RunFn:
        inner_names = tuple(
            sorted(leaf.name for leaf in _leaf_nodes(node.inner))
        )
        outer_key_fns = tuple(
            self._side_fn(conjunct, outer) for conjunct, outer, _inner in node.keys
        )
        inner_key_fns = tuple(
            self._side_fn(conjunct, inner) for conjunct, _outer, inner in node.keys
        )
        hash_slot = self.hash_count
        self.hash_count += 1

        def build_collect(ctx: _Ctx) -> None:
            env = ctx.env
            key = tuple(fn(env, ctx.params) for fn in inner_key_fns)
            if any(component is None for component in key):
                return  # SQL equality: NULL never joins
            snapshot = tuple(
                (name, env[name], ctx.rowids[name]) for name in inner_names
            )
            ctx.hashes[hash_slot].setdefault(key, []).append(snapshot)

        build_run = self._compile_node(node.inner, build_collect)

        def probe(ctx: _Ctx) -> None:
            build = ctx.hashes[hash_slot]
            if build is None:
                # built lazily on the first probe, once per execution
                ctx.stats["hash_joins"] += 1
                build = ctx.hashes[hash_slot] = {}
                build_run(ctx)
            env = ctx.env
            params = ctx.params
            try:
                key = tuple(fn(env, params) for fn in outer_key_fns)
                bucket = build.get(key, ())
            except TypeError:  # unhashable probe value: no match
                bucket = ()
            stats = ctx.stats
            rowids = ctx.rowids
            for snapshot in bucket:
                stats["rows_scanned"] += 1
                for name, row, rowid in snapshot:
                    env[name] = row
                    rowids[name] = rowid
                emit(ctx)
            for name in inner_names:
                env.pop(name, None)
                rowids.pop(name, None)

        return self._compile_node(node.outer, probe)

    # -- projection ----------------------------------------------------------

    def _compile_projection(
        self, node: "Project"
    ) -> Callable[[Env, dict[str, int], Params], Row]:
        names = tuple(item.name for item in node.from_items)
        if node.mode == "rowids":
            if len(names) == 1:
                only = names[0]
                return lambda env, rowids, params: {"ROWID": rowids[only]}
            return lambda env, rowids, params: {
                f"{name}.ROWID": rowids[name] for name in names
            }
        if node.mode == "star":
            # SELECT *: precompute output keys with the interpreted
            # executor's collision rule (qualified name on clashes)
            entries: list[tuple[str, str, str]] = []
            existing: set[str] = set()
            for item in node.from_items:
                for column in self.db.table(item.relation_name).columns:
                    out_key = (
                        column if column not in existing else f"{item.name}.{column}"
                    )
                    existing.add(out_key)
                    entries.append((item.name, column, out_key))

            def project_star(env: Env, rowids: dict[str, int], params: Params) -> Row:
                return {key: env[name][column] for name, column, key in entries}

            base = project_star
        else:
            getters = [
                (
                    column.output_name,
                    self.expr_compiler.compile(
                        ColumnRef(column.column, column.qualifier)
                    ),
                )
                for column in node.columns
            ]

            def project_columns(env: Env, rowids: dict[str, int], params: Params) -> Row:
                return {label: fn(env, params) for label, fn in getters}

            base = project_columns
        if not node.include_rowids:
            return base

        def with_rowids(env: Env, rowids: dict[str, int], params: Params) -> Row:
            row = base(env, rowids, params)
            for name in names:
                row[f"{name}.ROWID"] = rowids[name]
            return row

        return with_rowids


# ---------------------------------------------------------------------------
# rowid-path plan cache (find_rowids / select_rowids)
# ---------------------------------------------------------------------------

class _RowidEntry:
    __slots__ = ("schema_version", "payload")

    def __init__(self, schema_version: int, payload: Any) -> None:
        self.schema_version = schema_version
        self.payload = payload


class RowidPlanCache:
    """Compiled rowid-path plans, one cache per database.

    Holds the :class:`CompiledPlan` artifacts of ``find_rowids``
    (equality lookups keyed per column set) and ``select_rowids``
    (predicate closures keyed per :func:`where_signature`).  Entries are
    pinned to the owning relation's schema version: CREATE INDEX / DROP
    TABLE / temp-table recreation invalidates them, while DML never does
    — the artifacts read live tables and indexes, so data drift cannot
    make them wrong, only DDL can.  ``payload=None`` remembers that a
    predicate shape must run interpreted.
    """

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._entries: dict[tuple, _RowidEntry] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, key: tuple, db: "Database", relation_name: str) -> Optional[_RowidEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if db.schema_versions.get(relation_name, 0) != entry.schema_version:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: tuple, db: "Database", relation_name: str, payload: Any) -> None:
        if len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = _RowidEntry(
            db.schema_versions.get(relation_name, 0), payload
        )

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------------
# plan cache
# ---------------------------------------------------------------------------

class _Entry:
    __slots__ = ("schema_versions", "data_versions", "row_counts", "compiled")

    def __init__(
        self,
        schema_versions: dict[str, int],
        data_versions: dict[str, int],
        row_counts: dict[str, int],
        compiled: Optional[CompiledPlan],
    ) -> None:
        self.schema_versions = schema_versions
        self.data_versions = data_versions
        self.row_counts = row_counts
        self.compiled = compiled


class PlanCache:
    """Compiled plans keyed on the logical plan signature.

    Entries are validated against the per-relation schema versions (DDL:
    CREATE/DROP TABLE, CREATE INDEX) and data versions (DML) of the
    relations the plan reads — while DDL/DML against *unrelated*
    relations (e.g. the outside strategy's temp-table churn) leaves the
    entry untouched.

    DDL always invalidates (a compiled plan may hold a dropped index).
    DML is judged by the **re-planning threshold**: a cached join order
    survives while the accumulated DML drift per relation stays within
    ``max(db.replan_min_ops, db.replan_threshold × rows-at-compile-time)``
    — compiled plans read live tables and indexes, so small drift only
    risks a stale *order*, never a wrong *result*.  Past the threshold
    the cardinalities that justified the order are declared stale and
    the plan recompiles against fresh statistics.  ``compiled=None``
    entries remember that a shape must run interpreted.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: dict[tuple, _Entry] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: validations that saw DML drift below the threshold and kept
        #: the cached plan (the "any DML recompiles" rule would not have)
        self.drift_survivals = 0

    def get(self, signature: tuple, db: "Database") -> Optional[_Entry]:
        entry = self._entries.get(signature)
        if entry is None:
            self.misses += 1
            return None
        if any(
            db.schema_versions.get(relation, 0) != version
            for relation, version in entry.schema_versions.items()
        ):
            return self._invalidate(signature)
        drifted = False
        for relation, version in entry.data_versions.items():
            delta = db.data_versions.get(relation, 0) - version
            if delta == 0:
                continue
            allowed = max(
                db.replan_min_ops,
                int(db.replan_threshold * entry.row_counts.get(relation, 0)),
            )
            if delta > allowed:
                return self._invalidate(signature)
            drifted = True
        if drifted:
            self.drift_survivals += 1
            db.stats["replans_avoided"] += 1
        self.hits += 1
        return entry

    def _invalidate(self, signature: tuple) -> None:
        del self._entries[signature]
        self.invalidations += 1
        self.misses += 1
        return None

    def put(self, signature: tuple, db: "Database",
            compiled: Optional[CompiledPlan],
            relations: set[str]) -> None:
        if len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[signature] = _Entry(
            {relation: db.schema_versions.get(relation, 0) for relation in relations},
            {relation: db.data_versions.get(relation, 0) for relation in relations},
            {
                relation: len(db.tables[relation]) if relation in db.tables else 0
                for relation in relations
            },
            compiled,
        )

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
