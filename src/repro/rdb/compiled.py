"""Compiled physical plans: operator trees lowered into nested closures.

The plan IR in :mod:`repro.rdb.plan` describes *what* to run (Scan /
IndexProbe / Filter / NestedLoopJoin / HashJoin / Sort / Project /
Distinct); this module turns one tree into *how*: every operator
compiles to a closure in continuation-passing style — a node receives
the compiled continuation of everything downstream and bakes it in, so
executing a plan is one chain of direct calls with no per-row dispatch,
no ``Expr`` walks and no intermediate row materialization outside hash
builds.

Literals and pre-materialized ``IN`` sets are lifted out as a parameter
vector (slot order = the logical plan's canonical conjunct order), so
one compiled artifact serves every query with the same structural
signature — the common case inside ``UpdateSession`` batches, where
probe shapes repeat with different predicate constants.

Two caches hold compiled artifacts per database:

* :class:`PlanCache` — SELECT plans keyed on the logical plan
  signature, invalidated by DDL and by DML drift past the re-planning
  threshold;
* :class:`RowidPlanCache` — the single-relation ``find_rowids`` /
  ``select_rowids`` plans, keyed on cheap per-call signatures and
  pinned to the owning relation's schema version.

Anything the compiler does not understand (unknown expression nodes,
unresolvable column references) falls back to the interpreted executor
in :mod:`repro.rdb.plan`; the negative result is cached too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from .columnar import ColumnBatch
from .expr import (
    COMPARATORS,
    And,
    ColumnRef,
    Comparison,
    Expr,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (plan -> compiled)
    from .database import Database
    from .plan import (
        Filter,
        HashJoin,
        IndexProbe,
        PlanNode,
        Project,
        Scan,
    )

__all__ = ["CompiledPlan", "PlanCache", "RowidPlanCache", "Uncompilable",
           "VectorizedPlan", "compile_tree", "compile_tree_vectorized",
           "dedup_rows", "extract_where_params", "where_signature"]

Row = dict[str, Any]
Env = dict[str, Row]
Params = tuple
EvalFn = Callable[[Env, Params], Any]


class Uncompilable(Exception):
    """Raised internally when a plan must run interpreted."""


# ---------------------------------------------------------------------------
# predicate signatures and parameter extraction
# ---------------------------------------------------------------------------

def where_signature(predicate: Expr) -> Optional[tuple]:
    """Literal-agnostic structural key of a WHERE tree, one entry per
    conjunct (None: some node the compiled executors don't understand).

    This is the cheap per-call key of the rowid-path cache; the SELECT
    plan cache keys on the richer :class:`repro.rdb.plan.LogicalPlan`
    signature, which canonicalizes conjunct order on top of this.
    """
    conjunct_sigs = []
    for conjunct in predicate.conjuncts():
        sig = conjunct.signature()
        if sig is None:
            return None
        conjunct_sigs.append(sig)
    return tuple(conjunct_sigs)


def extract_where_params(predicate: Expr) -> Params:
    """A WHERE tree's runtime values, in the compiler's slot order."""
    out: list = []
    for conjunct in predicate.conjuncts():
        conjunct.collect_parameters(out)
    return tuple(out)


def dedup_rows(rows: list[Row]) -> list[Row]:
    """DISTINCT: drop duplicate rows, keeping the first occurrence.

    Every row of one projection shares the same keys, so the dedup
    column order is computed once, not per row.
    """
    if not rows:
        return rows
    key_columns = sorted(rows[0])
    seen: set[tuple] = set()
    unique_rows = []
    for row in rows:
        key = tuple(row[column] for column in key_columns)
        if key not in seen:
            seen.add(key)
            unique_rows.append(row)
    return unique_rows


# ---------------------------------------------------------------------------
# expression compiler
# ---------------------------------------------------------------------------

class _ExprCompiler:
    """Compiles ``Expr`` trees into ``fn(env, params)`` closures.

    Parameter slots are assigned in the traversal order
    :meth:`Expr.collect_parameters` uses, so one compiled plan can be
    re-run with the parameter vector of any same-signature plan.
    """

    def __init__(self, columns_of: dict[str, set[str]]) -> None:
        #: FROM-item name -> attribute names of its relation
        self.columns_of = columns_of
        self.slots = 0

    def compile(self, expr: Expr) -> EvalFn:
        if isinstance(expr, Literal):
            slot = self.slots
            self.slots += 1
            return lambda env, params: params[slot]
        if isinstance(expr, ColumnRef):
            return self._compile_column(expr)
        if isinstance(expr, Comparison):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            return _make_comparison(left, right, COMPARATORS[expr.op])
        if isinstance(expr, And):
            left = self.compile(expr.left)
            right = self.compile(expr.right)

            def and_fn(env: Env, params: Params) -> Optional[bool]:
                lhs = left(env, params)
                if lhs is False:
                    return False
                rhs = right(env, params)
                if rhs is False:
                    return False
                if lhs is None or rhs is None:
                    return None
                return True

            return and_fn
        if isinstance(expr, Or):
            left = self.compile(expr.left)
            right = self.compile(expr.right)

            def or_fn(env: Env, params: Params) -> Optional[bool]:
                lhs = left(env, params)
                if lhs is True:
                    return True
                rhs = right(env, params)
                if rhs is True:
                    return True
                if lhs is None or rhs is None:
                    return None
                return False

            return or_fn
        if isinstance(expr, Not):
            operand = self.compile(expr.operand)

            def not_fn(env: Env, params: Params) -> Optional[bool]:
                value = operand(env, params)
                if value is None:
                    return None
                return not value

            return not_fn
        if isinstance(expr, IsNull):
            operand = self.compile(expr.operand)
            negate = expr.negate

            def is_null_fn(env: Env, params: Params) -> bool:
                result = operand(env, params) is None
                return not result if negate else result

            return is_null_fn
        if isinstance(expr, InSubquery):
            operand = self.compile(expr.operand)
            slot = self.slots
            self.slots += 1

            def in_fn(env: Env, params: Params) -> Optional[bool]:
                value = operand(env, params)
                if value is None:
                    return None
                return value in params[slot]

            return in_fn
        raise Uncompilable(f"unknown expression node {type(expr).__name__}")

    def _compile_column(self, ref: ColumnRef) -> EvalFn:
        qualifier, column = ref.qualifier, ref.column
        if qualifier is not None:
            known = self.columns_of.get(qualifier)
            if known is None or column not in known:
                # the interpreted executor reports this lazily (and only
                # for rows it actually reaches) — preserve that
                raise Uncompilable(f"unresolvable reference {ref.to_sql()}")
            return lambda env, params: env[qualifier][column]
        candidates = [
            name for name, columns in self.columns_of.items() if column in columns
        ]
        if len(candidates) == 1:
            name = candidates[0]
            return lambda env, params: env[name][column]
        if not candidates:
            raise Uncompilable(f"unknown column {column!r}")
        # ambiguity is tolerated when every candidate agrees — keep the
        # interpreted resolution for that rare case
        return lambda env, params: ref.eval(env)


def _make_comparison(
    left: EvalFn, right: EvalFn, op: Callable[[Any, Any], bool]
) -> EvalFn:
    def comparison(env: Env, params: Params) -> Optional[bool]:
        lhs = left(env, params)
        rhs = right(env, params)
        if lhs is None or rhs is None:
            return None
        return op(lhs, rhs)

    return comparison


class _Conjunct:
    __slots__ = ("expr", "fn", "left_fn", "right_fn")

    def __init__(
        self,
        expr: Expr,
        fn: EvalFn,
        left_fn: Optional[EvalFn] = None,
        right_fn: Optional[EvalFn] = None,
    ) -> None:
        self.expr = expr
        self.fn = fn
        self.left_fn = left_fn
        self.right_fn = right_fn


def _compile_conjuncts(
    compiler: _ExprCompiler, conjuncts: list[Expr]
) -> dict[int, _Conjunct]:
    """Compile conjuncts in canonical order so parameter slots line up
    with the logical plan's :meth:`parameters` extraction; comparisons
    keep their side closures so an equality can serve as an index or
    hash key function without consuming fresh slots."""
    compiled: dict[int, _Conjunct] = {}
    for conjunct in conjuncts:
        if isinstance(conjunct, Comparison):
            left_fn = compiler.compile(conjunct.left)
            right_fn = compiler.compile(conjunct.right)
            fn = _make_comparison(left_fn, right_fn, COMPARATORS[conjunct.op])
            compiled[id(conjunct)] = _Conjunct(conjunct, fn, left_fn, right_fn)
        else:
            compiled[id(conjunct)] = _Conjunct(
                conjunct, compiler.compile(conjunct)
            )
    return compiled


# ---------------------------------------------------------------------------
# runtime context
# ---------------------------------------------------------------------------

class _Ctx:
    """Per-execution state threaded through the compiled closures."""

    __slots__ = ("stats", "env", "rowids", "params", "tables", "hashes",
                 "results")

    def __init__(
        self,
        stats: dict[str, int],
        params: Params,
        tables: list,
        hash_count: int,
    ) -> None:
        self.stats = stats
        self.env: Env = {}
        self.rowids: dict[str, int] = {}
        self.params = params
        self.tables = tables
        self.hashes: list[Optional[dict]] = [None] * hash_count
        self.results: list = []


RunFn = Callable[[_Ctx], None]


# ---------------------------------------------------------------------------
# compiled plan
# ---------------------------------------------------------------------------

class CompiledPlan:
    """One physical plan tree, compiled into nested closures."""

    #: executor discriminator — :class:`VectorizedPlan` overrides this,
    #: and the planner uses it to honor a forced executor choice against
    #: a cached artifact compiled the other way
    vectorized = False

    __slots__ = (
        "root_run", "leaf_relations", "hash_count", "mode", "distinct",
        "reordered", "bushy", "index_only", "_explain_root", "_explain_text",
    )

    def __init__(
        self,
        root_run: RunFn,
        leaf_relations: list[str],
        hash_count: int,
        mode: str,
        distinct: bool,
        reordered: bool,
        bushy: bool,
        explain_root: "PlanNode",
        index_only: Optional[tuple] = None,
    ) -> None:
        self.root_run = root_run
        self.leaf_relations = leaf_relations
        self.hash_count = hash_count
        self.mode = mode
        self.distinct = distinct
        self.reordered = reordered
        self.bushy = bushy
        #: the physical tree, kept for :attr:`explain_text` — rendering
        #: is lazy so the rowid-path compiles on the constraint-check
        #: hot path (which never surface EXPLAIN) pay nothing
        self._explain_root = explain_root
        self._explain_text: Optional[str] = None
        #: ``(index, key_fns)`` when the whole plan is one covering
        #: index lookup emitting rowids — served straight from the
        #: bucket, no row fetch, no scan accounting (the ``find_rowids``
        #: constraint-check hot path)
        self.index_only = index_only

    @property
    def explain_text(self) -> str:
        """The rendered operator tree (memoized on first read)."""
        if self._explain_text is None:
            self._explain_text = self._explain_root.explain()
        return self._explain_text

    def _execute(self, db: "Database", params: Params) -> list:
        ctx = _Ctx(
            db.stats,
            params,
            [db.table(name) for name in self.leaf_relations],
            self.hash_count,
        )
        self.root_run(ctx)
        return ctx.results

    def run(self, db: "Database", params: Params) -> list:
        if self.index_only is not None:
            index, key_fns = self.index_only
            try:
                key = tuple(fn({}, params) for fn in key_fns)
                return sorted(index.lookup(key))
            except TypeError:  # unhashable probe value: no match
                return []
        results = self._execute(db, params)
        if self.mode == "rowid_list":
            # ascending rowids on every path: scan order drifts once
            # undo restores re-append old rowids, and index bucket
            # order is arbitrary — sorting is the one ordering the
            # compiled and interpreted executors can always agree on
            results.sort()
            return results
        # deterministic output: rowid order of the original FROM clause
        results.sort(key=_sort_key)
        rows = [row for _, row in results]
        if self.distinct:
            rows = dedup_rows(rows)
        return rows

    def run_rowid_set(self, db: "Database", params: Params) -> set:
        """``find_rowids``' contract: membership only, no ordering —
        skips the ascending sort :meth:`run` pays for ``select_rowids``."""
        if self.index_only is not None:
            index, key_fns = self.index_only
            try:
                key = tuple(fn({}, params) for fn in key_fns)
                return index.lookup(key)
            except TypeError:  # unhashable probe value: no match
                return set()
        return set(self._execute(db, params))


def _sort_key(pair: tuple) -> Any:
    # a rowid tuple, or a bare rowid for single-relation plans — both
    # order identically to the interpreted executor's tuple keys
    return pair[0]


# ---------------------------------------------------------------------------
# tree compilation
# ---------------------------------------------------------------------------

def compile_tree(
    db: "Database",
    root: "PlanNode",
    conjuncts: list[Expr],
    count_index_joins: bool = True,
    reordered: bool = False,
    bushy: bool = False,
) -> Optional[CompiledPlan]:
    """Compile a physical plan tree; None → the plan runs interpreted.

    *conjuncts* is the canonical conjunct list of the owning logical
    plan — every ``Filter`` predicate and every index/hash key in the
    tree references one of these expressions, and compiling them first
    (in order) pins the parameter slot layout.

    *reordered* / *bushy* are the enumerator's verdicts about the join
    tree this physical plan lowered from (``JoinTree.leaf_positions`` /
    ``JoinTree.is_bushy``) — the compiler records them for the
    ``reorders`` / ``bushy_plans`` counters rather than re-deriving its
    own notion from the lowered tree.

    ``count_index_joins=False`` suppresses the ``index_joins`` counter —
    the single-relation rowid paths never counted their probes as join
    levels, and constraint checks would otherwise dominate the metric.
    """
    try:
        return _TreeCompiler(
            db, root, conjuncts, count_index_joins, reordered, bushy
        ).compile()
    except Uncompilable:
        return None


def _leaf_nodes(node: "PlanNode") -> list:
    if node.kind in ("scan", "index_probe"):
        return [node]
    return [child for sub in node.children() for child in _leaf_nodes(sub)]


class _TreeCompiler:
    def __init__(
        self,
        db: "Database",
        root: "PlanNode",
        conjuncts: list[Expr],
        count_index_joins: bool,
        reordered: bool,
        bushy: bool,
    ) -> None:
        self.db = db
        self.root = root
        self.count_index_joins = count_index_joins
        self.reordered = reordered
        self.bushy = bushy
        leaves = _leaf_nodes(root)
        self.leaf_relations = [leaf.relation_name for leaf in leaves]
        self.leaf_slots = {id(leaf): slot for slot, leaf in enumerate(leaves)}
        self.hash_count = 0
        columns_of = {
            leaf.name: set(db.relation(leaf.relation_name).attribute_names)
            for leaf in leaves
        }
        self.expr_compiler = _ExprCompiler(columns_of)
        self.conjunct_map = _compile_conjuncts(self.expr_compiler, conjuncts)

    # -- helpers -------------------------------------------------------------

    def _side_fn(self, conjunct: Expr, side: Expr) -> EvalFn:
        """The compiled closure of one side of an equality conjunct —
        reused from the conjunct's compilation so parameter slots stay
        aligned with the logical plan's extraction order."""
        compiled = self.conjunct_map[id(conjunct)]
        return compiled.left_fn if side is conjunct.left else compiled.right_fn

    def _predicate_fns(self, predicates: tuple[Expr, ...]) -> tuple[EvalFn, ...]:
        return tuple(self.conjunct_map[id(p)].fn for p in predicates)

    # -- node compilation (continuation-passing) -----------------------------

    def compile(self) -> CompiledPlan:
        node = self.root
        distinct = False
        if node.kind == "distinct":
            distinct = True
            node = node.child
        if node.kind != "project":
            raise Uncompilable(f"unexpected root {node.kind}")
        project_node = node
        sort_node = project_node.child
        if sort_node.kind != "sort":
            raise Uncompilable(f"unexpected project child {sort_node.kind}")
        join_root = sort_node.child
        mode = project_node.mode

        index_only = self._index_only(mode, join_root)
        if index_only is not None:
            return CompiledPlan(
                root_run=lambda ctx: None,
                leaf_relations=[],
                hash_count=0,
                mode=mode,
                distinct=distinct,
                reordered=False,
                bushy=False,
                explain_root=self.root,
                index_only=index_only,
            )

        if mode == "rowid_list":
            only_name = sort_node.names[0]

            def collect(ctx: _Ctx) -> None:
                ctx.results.append(ctx.rowids[only_name])
        else:
            project = self._compile_projection(project_node)
            sort_names = sort_node.names
            # the sort key only has to order consistently with the
            # interpreted executor's rowid tuples — for the common one-
            # and two-relation shapes, skip the generic tuple() build
            # (this closure runs once per emitted row)
            if len(sort_names) == 1:
                only = sort_names[0]

                def collect(ctx: _Ctx) -> None:
                    rowids = ctx.rowids
                    ctx.results.append(
                        (rowids[only], project(ctx.env, rowids, ctx.params))
                    )
            elif len(sort_names) == 2:
                first, second = sort_names

                def collect(ctx: _Ctx) -> None:
                    rowids = ctx.rowids
                    ctx.results.append(
                        (
                            (rowids[first], rowids[second]),
                            project(ctx.env, rowids, ctx.params),
                        )
                    )
            else:

                def collect(ctx: _Ctx) -> None:
                    rowids = ctx.rowids
                    ctx.results.append(
                        (
                            tuple(rowids[name] for name in sort_names),
                            project(ctx.env, rowids, ctx.params),
                        )
                    )

        root_run = self._compile_node(join_root, collect)
        return CompiledPlan(
            root_run=root_run,
            leaf_relations=self.leaf_relations,
            hash_count=self.hash_count,
            mode=mode,
            distinct=distinct,
            reordered=self.reordered,
            bushy=self.bushy,
            explain_root=self.root,
        )

    def _index_only(self, mode: str, join_root: "PlanNode") -> Optional[tuple]:
        """``rowid_list`` plans that are one covering index lookup with
        literal keys and no residual predicates skip execution entirely:
        the bucket *is* the answer."""
        if mode != "rowid_list" or join_root.kind != "index_probe":
            return None
        if not all(
            isinstance(value, Literal) for _conjunct, value in join_root.keys
        ):
            return None
        key_fns = tuple(
            self._side_fn(conjunct, value) for conjunct, value in join_root.keys
        )
        return (join_root.index, key_fns)

    def _compile_node(self, node: "PlanNode", emit: RunFn) -> RunFn:
        kind = node.kind
        if kind == "scan":
            return self._compile_scan(node, emit)
        if kind == "index_probe":
            return self._compile_index_probe(node, emit)
        if kind == "filter":
            return self._compile_filter(node, emit)
        if kind == "nested_loop":
            inner = self._compile_node(node.inner, emit)
            return self._compile_node(node.outer, inner)
        if kind == "hash_join":
            return self._compile_hash_join(node, emit)
        raise Uncompilable(f"unknown plan node {kind}")

    def _compile_scan(self, node: "Scan", emit: RunFn) -> RunFn:
        slot = self.leaf_slots[id(node)]
        name = node.name

        def run(ctx: _Ctx) -> None:
            stats = ctx.stats
            env = ctx.env
            rowids = ctx.rowids
            for rowid, row in ctx.tables[slot].scan():
                stats["rows_scanned"] += 1
                env[name] = row
                rowids[name] = rowid
                emit(ctx)
            env.pop(name, None)
            rowids.pop(name, None)

        return run

    def _compile_index_probe(self, node: "IndexProbe", emit: RunFn) -> RunFn:
        slot = self.leaf_slots[id(node)]
        name = node.name
        index = node.index
        key_fns = tuple(
            self._side_fn(conjunct, value) for conjunct, value in node.keys
        )
        count_probes = self.count_index_joins

        def run(ctx: _Ctx) -> None:
            stats = ctx.stats
            if count_probes:
                stats["index_joins"] += 1
            env = ctx.env
            params = ctx.params
            try:
                key = tuple(fn(env, params) for fn in key_fns)
                bucket = index.lookup_rowids(key)
            except TypeError:  # unhashable probe value: no match
                bucket = ()
            table = ctx.tables[slot]
            present = table.__contains__
            fetch = table.get
            rowids = ctx.rowids
            for rowid in bucket:
                if not present(rowid):
                    continue
                stats["rows_scanned"] += 1
                env[name] = fetch(rowid)
                rowids[name] = rowid
                emit(ctx)
            env.pop(name, None)
            rowids.pop(name, None)

        return run

    def _compile_filter(self, node: "Filter", emit: RunFn) -> RunFn:
        fns = self._predicate_fns(node.predicates)

        def check(ctx: _Ctx) -> None:
            env = ctx.env
            params = ctx.params
            for fn in fns:
                if fn(env, params) is not True:
                    return
            emit(ctx)

        return self._compile_node(node.child, check)

    def _compile_hash_join(self, node: "HashJoin", emit: RunFn) -> RunFn:
        inner_names = tuple(
            sorted(leaf.name for leaf in _leaf_nodes(node.inner))
        )
        outer_key_fns = tuple(
            self._side_fn(conjunct, outer) for conjunct, outer, _inner in node.keys
        )
        inner_key_fns = tuple(
            self._side_fn(conjunct, inner) for conjunct, _outer, inner in node.keys
        )
        hash_slot = self.hash_count
        self.hash_count += 1
        # the dominant shape is a single-column equi-join against a
        # single-relation build side — specialize away the per-row key
        # tuple and snapshot tuple-of-tuples allocations for it
        single_key = len(node.keys) == 1
        single_inner = len(inner_names) == 1

        if single_key and single_inner:
            inner_key_fn = inner_key_fns[0]
            inner_name = inner_names[0]

            def build_collect(ctx: _Ctx) -> None:
                env = ctx.env
                key = inner_key_fn(env, ctx.params)
                if key is None:
                    return  # SQL equality: NULL never joins
                ctx.hashes[hash_slot].setdefault(key, []).append(
                    (env[inner_name], ctx.rowids[inner_name])
                )
        elif single_key:
            inner_key_fn = inner_key_fns[0]

            def build_collect(ctx: _Ctx) -> None:
                env = ctx.env
                key = inner_key_fn(env, ctx.params)
                if key is None:
                    return  # SQL equality: NULL never joins
                snapshot = tuple(
                    (name, env[name], ctx.rowids[name]) for name in inner_names
                )
                ctx.hashes[hash_slot].setdefault(key, []).append(snapshot)
        else:

            def build_collect(ctx: _Ctx) -> None:
                env = ctx.env
                key = tuple(fn(env, ctx.params) for fn in inner_key_fns)
                if any(component is None for component in key):
                    return  # SQL equality: NULL never joins
                snapshot = tuple(
                    (name, env[name], ctx.rowids[name]) for name in inner_names
                )
                ctx.hashes[hash_slot].setdefault(key, []).append(snapshot)

        build_run = self._compile_node(node.inner, build_collect)
        if single_key:
            outer_key_fn = outer_key_fns[0]

        def probe(ctx: _Ctx) -> None:
            build = ctx.hashes[hash_slot]
            if build is None:
                # built lazily on the first probe, once per execution
                ctx.stats["hash_joins"] += 1
                build = ctx.hashes[hash_slot] = {}
                build_run(ctx)
            env = ctx.env
            params = ctx.params
            try:
                if single_key:
                    bucket = build.get(outer_key_fn(env, params), ())
                else:
                    key = tuple(fn(env, params) for fn in outer_key_fns)
                    bucket = build.get(key, ())
            except TypeError:  # unhashable probe value: no match
                bucket = ()
            stats = ctx.stats
            rowids = ctx.rowids
            if single_key and single_inner:
                name = inner_names[0]
                for row, rowid in bucket:
                    stats["rows_scanned"] += 1
                    env[name] = row
                    rowids[name] = rowid
                    emit(ctx)
            else:
                for snapshot in bucket:
                    stats["rows_scanned"] += 1
                    for name, row, rowid in snapshot:
                        env[name] = row
                        rowids[name] = rowid
                    emit(ctx)
            for name in inner_names:
                env.pop(name, None)
                rowids.pop(name, None)

        return self._compile_node(node.outer, probe)

    # -- projection ----------------------------------------------------------

    def _compile_projection(
        self, node: "Project"
    ) -> Callable[[Env, dict[str, int], Params], Row]:
        names = tuple(item.name for item in node.from_items)
        if node.mode == "rowids":
            if len(names) == 1:
                only = names[0]
                return lambda env, rowids, params: {"ROWID": rowids[only]}
            return lambda env, rowids, params: {
                f"{name}.ROWID": rowids[name] for name in names
            }
        if node.mode == "star":
            # SELECT *: precompute output keys with the interpreted
            # executor's collision rule (qualified name on clashes)
            entries: list[tuple[str, str, str]] = []
            existing: set[str] = set()
            for item in node.from_items:
                for column in self.db.table(item.relation_name).columns:
                    out_key = (
                        column if column not in existing else f"{item.name}.{column}"
                    )
                    existing.add(out_key)
                    entries.append((item.name, column, out_key))

            def project_star(env: Env, rowids: dict[str, int], params: Params) -> Row:
                return {key: env[name][column] for name, column, key in entries}

            base = project_star
        else:
            getters = [
                (
                    column.output_name,
                    self.expr_compiler.compile(
                        ColumnRef(column.column, column.qualifier)
                    ),
                )
                for column in node.columns
            ]

            def project_columns(env: Env, rowids: dict[str, int], params: Params) -> Row:
                return {label: fn(env, params) for label, fn in getters}

            base = project_columns
        if not node.include_rowids:
            return base

        def with_rowids(env: Env, rowids: dict[str, int], params: Params) -> Row:
            row = base(env, rowids, params)
            for name in names:
                row[f"{name}.ROWID"] = rowids[name]
            return row

        return with_rowids


# ---------------------------------------------------------------------------
# vectorized tree compilation (batch-at-a-time over column arrays)
# ---------------------------------------------------------------------------

class _VCtx:
    """Per-execution state threaded through vectorized operators."""

    __slots__ = ("db", "stats", "params")

    def __init__(self, db: "Database", params: Params) -> None:
        self.db = db
        self.stats = db.stats
        self.params = params


BatchFn = Callable[[_VCtx], ColumnBatch]


class VectorizedPlan:
    """One physical plan tree, compiled to batch-at-a-time operators.

    Same ``run(db, params)`` contract (and byte-identical results) as
    :class:`CompiledPlan`; only SELECT projection modes are supported —
    the rowid paths stay row-at-a-time, where one index probe is the
    whole plan and batching has nothing to amortize.

    ``stages`` is the post-order stage-descriptor tuple the plan-IR
    verifier checks under ``REPRO_PLAN_VERIFY=1``; it is the vectorized
    lowering's analogue of the physical tree.
    """

    vectorized = True

    __slots__ = ("root_run", "mode", "distinct", "reordered", "bushy",
                 "stages", "_explain_root", "_explain_text")

    def __init__(
        self,
        root_run: Callable[[_VCtx], list],
        mode: str,
        distinct: bool,
        reordered: bool,
        bushy: bool,
        stages: tuple,
        explain_root: "PlanNode",
    ) -> None:
        self.root_run = root_run
        self.mode = mode
        self.distinct = distinct
        self.reordered = reordered
        self.bushy = bushy
        self.stages = stages
        self._explain_root = explain_root
        self._explain_text: Optional[str] = None

    @property
    def explain_text(self) -> str:
        if self._explain_text is None:
            self._explain_text = (
                "Vectorized (batch executor)\n" + self._explain_root.explain()
            )
        return self._explain_text

    def run(self, db: "Database", params: Params) -> list:
        return self.root_run(_VCtx(db, params))


def compile_tree_vectorized(
    db: "Database",
    root: "PlanNode",
    conjuncts: list[Expr],
    reordered: bool = False,
    bushy: bool = False,
) -> Optional[VectorizedPlan]:
    """Compile a physical tree to batch operators; None → not compilable.

    Unsupported *subtrees* (nested loops, correlated index probes) do
    not fail the compile — they run through the row-at-a-time closures
    and surface their output as a batch.  The compiler therefore fails
    exactly where :func:`compile_tree` fails (shared expression and
    projection compilation), never on shape: within the SELECT planning
    path, "vectorizable" and "compilable" are the same predicate, which
    keeps a forced executor choice from ping-ponging against the cache.
    """
    try:
        return _VectorCompiler(db, root, conjuncts, reordered, bushy).compile()
    except Uncompilable:
        return None


class _VectorCompiler:
    """Lowers a physical tree to :class:`ColumnBatch` operators.

    Wraps a :class:`_TreeCompiler` for everything expression-shaped —
    conjunct closures, parameter slots, projections — so both executors
    agree on slot layout by construction, and so unsupported subtrees
    can be handed to the row compiler wholesale.
    """

    def __init__(
        self,
        db: "Database",
        root: "PlanNode",
        conjuncts: list[Expr],
        reordered: bool,
        bushy: bool,
    ) -> None:
        self.db = db
        self.root = root
        self.row = _TreeCompiler(db, root, conjuncts, True, reordered, bushy)
        #: post-order stage descriptors for the plan-IR verifier
        self.stages: list[tuple] = []

    def compile(self) -> VectorizedPlan:
        node = self.root
        distinct = False
        if node.kind == "distinct":
            distinct = True
            node = node.child
        if node.kind != "project":
            raise Uncompilable(f"unexpected root {node.kind}")
        project_node = node
        sort_node = project_node.child
        if sort_node.kind != "sort":
            raise Uncompilable(f"unexpected project child {sort_node.kind}")
        if project_node.mode == "rowid_list":
            # single-probe plans: batching has nothing to amortize
            raise Uncompilable("rowid-list plans stay row-at-a-time")
        body_run = self._compile_node(sort_node.child)
        projector = self._compile_vprojection(project_node)
        sort_names = tuple(sort_node.names)
        self.stages.append(
            ("finalize", project_node.mode, sort_names, distinct)
        )

        if len(sort_names) == 1:
            only = sort_names[0]

            def order_of(batch: ColumnBatch) -> list[int]:
                rowid_array = batch.rowids[only]
                return sorted(batch.positions(), key=rowid_array.__getitem__)
        else:
            # lexicographic multi-key sort as a cascade of stable sorts
            # (least-significant key first): every pass uses the C-level
            # ``list.__getitem__`` key, which beats one sort with a
            # tuple-building Python lambda
            reversed_names = tuple(reversed(sort_names))

            def order_of(batch: ColumnBatch) -> list[int]:
                order = batch.positions()
                for name in reversed_names:
                    order = sorted(order, key=batch.rowids[name].__getitem__)
                return order

        def finalize(vctx: _VCtx) -> list:
            batch = body_run(vctx)
            vctx.stats["batches_processed"] += 1
            rows = projector(batch, order_of(batch), vctx)
            if distinct:
                rows = dedup_rows(rows)
            return rows

        return VectorizedPlan(
            root_run=finalize,
            mode=project_node.mode,
            distinct=distinct,
            reordered=self.row.reordered,
            bushy=self.row.bushy,
            stages=tuple(self.stages),
            explain_root=self.root,
        )

    # -- helpers -------------------------------------------------------------

    def _resolve_column(self, ref: Expr) -> Optional[tuple[str, str]]:
        """``(from-item name, column)`` of a ColumnRef, or None when the
        reference is not a plain unambiguous column (generic fallback)."""
        if not isinstance(ref, ColumnRef):
            return None
        qualifier, column = ref.qualifier, ref.column
        columns_of = self.row.expr_compiler.columns_of
        if qualifier is not None:
            known = columns_of.get(qualifier)
            if known is not None and column in known:
                return qualifier, column
            return None
        candidates = [
            name for name, columns in columns_of.items() if column in columns
        ]
        if len(candidates) == 1:
            return candidates[0], column
        return None

    # -- node compilation ----------------------------------------------------

    def _compile_node(self, node: "PlanNode") -> BatchFn:
        kind = node.kind
        if kind == "scan":
            return self._compile_scan(node)
        if kind == "index_probe":
            probe = self._try_index_probe(node)
            if probe is not None:
                return probe
            return self._fallback(node)
        if kind == "filter":
            return self._compile_filter(node)
        if kind == "hash_join":
            return self._compile_hash_join(node)
        if kind == "nested_loop":
            # correlated probing is inherently row-at-a-time — run the
            # whole subtree through the row closures
            return self._fallback(node)
        raise Uncompilable(f"unknown plan node {kind}")

    def _compile_scan(self, node: "Scan") -> BatchFn:
        name = node.name
        relation_name = node.relation_name
        self.stages.append(("scan", name, relation_name))

        def run(vctx: _VCtx) -> ColumnBatch:
            store = vctx.db.columns.store(relation_name)
            stats = vctx.stats
            stats["rows_scanned"] += len(store.rowids)
            stats["batches_processed"] += 1
            return ColumnBatch(
                names=(name,),
                length=len(store.rowids),
                rowids={name: store.rowids},
                rows={name: store.rows},
                stores={name: store},
            )

        return run

    def _try_index_probe(self, node: "IndexProbe") -> Optional[BatchFn]:
        """A leaf probe whose keys carry no column references (literal /
        parameter keys) — one lookup produces the whole batch."""
        if any(value.columns() for _conjunct, value in node.keys):
            return None
        name = node.name
        relation_name = node.relation_name
        index = node.index
        key_fns = tuple(
            self.row._side_fn(conjunct, value) for conjunct, value in node.keys
        )
        self.stages.append(("index_probe", name, relation_name, index.name))

        def run(vctx: _VCtx) -> ColumnBatch:
            stats = vctx.stats
            stats["index_joins"] += 1
            stats["batches_processed"] += 1
            params = vctx.params
            try:
                key = tuple(fn({}, params) for fn in key_fns)
                bucket = index.lookup_rowids(key)
            except TypeError:  # unhashable probe value: no match
                bucket = ()
            table = vctx.db.table(relation_name)
            present = table.__contains__
            fetch = table.get
            rowids: list[int] = []
            rows: list[Row] = []
            for rowid in bucket:
                if not present(rowid):
                    continue
                rowids.append(rowid)
                rows.append(fetch(rowid))
            stats["rows_scanned"] += len(rowids)
            return ColumnBatch(
                names=(name,),
                length=len(rowids),
                rowids={name: rowids},
                rows={name: rows},
            )

        return run

    def _compile_filter(self, node: "Filter") -> BatchFn:
        child = self._compile_node(node.child)
        predicates = tuple(
            self._compile_vpredicate(predicate)
            for predicate in node.predicates
        )
        names = tuple(leaf.name for leaf in _leaf_nodes(node.child))
        self.stages.append(("filter", names, len(node.predicates)))

        def run(vctx: _VCtx) -> ColumnBatch:
            batch = child(vctx)
            vctx.stats["batches_processed"] += 1
            for predicate in predicates:
                if batch.sel is not None and not batch.sel:
                    break  # already empty
                batch.sel = predicate(batch, vctx)
            return batch

        return run

    def _compile_vpredicate(
        self, expr: Expr
    ) -> Callable[[ColumnBatch, _VCtx], list[int]]:
        """One conjunct as a selection-vector narrowing function.

        Fast paths cover column-vs-value, column-vs-column and IS NULL
        shapes (one list comprehension over the batch, no env dicts);
        anything else evaluates the conjunct's row closure per selected
        position.  Three-valued logic matches the row executor: only a
        strict True survives, so a NULL operand filters the row.
        """
        compiled = self.row.conjunct_map[id(expr)]
        if isinstance(expr, Comparison):
            comparator = COMPARATORS[expr.op]
            left = self._resolve_column(expr.left)
            right = self._resolve_column(expr.right)
            if left is not None and right is not None:
                return _vpred_column_column(left, right, comparator)
            if left is not None and not expr.right.columns():
                return _vpred_column_value(
                    left, compiled.right_fn, comparator, flipped=False
                )
            if right is not None and not expr.left.columns():
                return _vpred_column_value(
                    right, compiled.left_fn, comparator, flipped=True
                )
        elif isinstance(expr, IsNull):
            target = self._resolve_column(expr.operand)
            if target is not None:
                return _vpred_is_null(target, expr.negate)
        return _vpred_generic(compiled.fn)

    def _compile_hash_join(self, node: "HashJoin") -> BatchFn:
        outer_run = self._compile_node(node.outer)
        inner_run = self._compile_node(node.inner)
        outer_names = tuple(leaf.name for leaf in _leaf_nodes(node.outer))
        inner_names = tuple(leaf.name for leaf in _leaf_nodes(node.inner))
        outer_keys = tuple(
            self._compile_varray(conjunct, outer)
            for conjunct, outer, _inner in node.keys
        )
        inner_keys = tuple(
            self._compile_varray(conjunct, inner)
            for conjunct, _outer, inner in node.keys
        )
        single_key = len(node.keys) == 1
        self.stages.append(
            ("hash_join", outer_names, inner_names, len(node.keys))
        )

        def run(vctx: _VCtx) -> ColumnBatch:
            outer_batch = outer_run(vctx)
            stats = vctx.stats
            stats["batches_processed"] += 1
            outer_positions = outer_batch.positions()
            out_outer: list[int] = []
            out_inner: list[int] = []
            inner_batch: Optional[ColumnBatch] = None
            if len(outer_positions):
                # row-executor parity: the build is lazy, so an empty
                # probe side never builds (or counts) the hash table
                stats["hash_joins"] += 1
                inner_batch = inner_run(vctx)
                build: dict = {}
                if single_key:
                    keys = inner_keys[0](inner_batch, vctx)
                    get_bucket = build.get
                    for i, key in _indexed(inner_batch.positions(), keys):
                        if key is None:
                            continue  # SQL equality: NULL never joins
                        bucket = get_bucket(key)
                        if bucket is None:
                            # get-then-insert beats setdefault: no empty
                            # list allocated per already-bucketed key
                            build[key] = [i]
                        else:
                            bucket.append(i)
                    probe_keys = outer_keys[0](outer_batch, vctx)
                    extend_inner = out_inner.extend
                    append_outer = out_outer.append
                    extend_outer = out_outer.extend
                    try:
                        for i, key in _indexed(outer_positions, probe_keys):
                            bucket = get_bucket(key)
                            if bucket:
                                extend_inner(bucket)
                                if len(bucket) == 1:
                                    append_outer(i)
                                else:
                                    extend_outer([i] * len(bucket))
                    except TypeError:
                        # an unhashable probe value matches nothing;
                        # rerun carefully, skipping the offenders
                        del out_outer[:], out_inner[:]
                        for i in outer_positions:
                            try:
                                bucket = get_bucket(probe_keys[i], ())
                            except TypeError:
                                continue
                            extend_inner(bucket)
                            extend_outer([i] * len(bucket))
                else:
                    key_arrays = [fn(inner_batch, vctx) for fn in inner_keys]
                    for i in inner_batch.positions():
                        key = tuple(array[i] for array in key_arrays)
                        if any(component is None for component in key):
                            continue  # SQL equality: NULL never joins
                        build.setdefault(key, []).append(i)
                    probe_arrays = [fn(outer_batch, vctx) for fn in outer_keys]
                    get_bucket = build.get
                    extend_inner = out_inner.extend
                    extend_outer = out_outer.extend
                    try:
                        for i in outer_positions:
                            key = tuple(array[i] for array in probe_arrays)
                            bucket = get_bucket(key)
                            if bucket:
                                extend_inner(bucket)
                                extend_outer([i] * len(bucket))
                    except TypeError:
                        del out_outer[:], out_inner[:]
                        for i in outer_positions:
                            try:
                                key = tuple(
                                    array[i] for array in probe_arrays
                                )
                                bucket = get_bucket(key, ())
                            except TypeError:
                                continue
                            extend_inner(bucket)
                            extend_outer([i] * len(bucket))
            stats["rows_scanned"] += len(out_outer)
            rowids: dict = {}
            rows: dict = {}
            for name in outer_names:
                source_rowids = outer_batch.rowids[name]
                source_rows = outer_batch.rows[name]
                rowids[name] = [source_rowids[i] for i in out_outer]
                rows[name] = [source_rows[i] for i in out_outer]
            for name in inner_names:
                if inner_batch is None:
                    rowids[name] = []
                    rows[name] = []
                else:
                    source_rowids = inner_batch.rowids[name]
                    source_rows = inner_batch.rows[name]
                    rowids[name] = [source_rowids[j] for j in out_inner]
                    rows[name] = [source_rows[j] for j in out_inner]
            return ColumnBatch(
                names=outer_names + inner_names,
                length=len(out_outer),
                rowids=rowids,
                rows=rows,
            )

        return run

    def _compile_varray(
        self, conjunct: Expr, side: Expr
    ) -> Callable[[ColumnBatch, _VCtx], list]:
        """One side of an equi-join key as a full-length value array."""
        resolved = self._resolve_column(side)
        if resolved is not None:
            name, column = resolved
            return lambda batch, vctx: batch.column(name, column)
        side_fn = self.row._side_fn(conjunct, side)

        def generic(batch: ColumnBatch, vctx: _VCtx) -> list:
            params = vctx.params
            names = batch.names
            rows = batch.rows
            out = []
            for i in range(batch.length):
                env = {n: rows[n][i] for n in names}
                out.append(side_fn(env, params))
            return out

        return generic

    # -- fallback ------------------------------------------------------------

    def _fallback(self, node: "PlanNode") -> BatchFn:
        """Run *node*'s subtree through the row-at-a-time closures and
        pivot the emitted rows into a batch."""
        names = tuple(leaf.name for leaf in _leaf_nodes(node))
        row_compiler = self.row

        def collect(ctx: _Ctx) -> None:
            rowids = ctx.rowids
            env = ctx.env
            ctx.results.append(
                (
                    tuple(rowids[name] for name in names),
                    tuple(env[name] for name in names),
                )
            )

        run_row = row_compiler._compile_node(node, collect)
        self.stages.append(("fallback", names, node.kind))

        def run(vctx: _VCtx) -> ColumnBatch:
            vctx.stats["vector_fallbacks"] += 1
            db = vctx.db
            # hash_count is read late: later-compiled fallback subtrees
            # may have grown it past this subtree's view at compile time
            ctx = _Ctx(
                vctx.stats,
                vctx.params,
                [db.table(relation) for relation in row_compiler.leaf_relations],
                row_compiler.hash_count,
            )
            run_row(ctx)
            results = ctx.results
            rowids: dict = {name: [] for name in names}
            rows: dict = {name: [] for name in names}
            appenders = [
                (rowids[name].append, rows[name].append) for name in names
            ]
            for rowid_tuple, row_tuple in results:
                for k, (add_rowid, add_row) in enumerate(appenders):
                    add_rowid(rowid_tuple[k])
                    add_row(row_tuple[k])
            return ColumnBatch(
                names=names, length=len(results), rowids=rowids, rows=rows
            )

        return run

    # -- projection ----------------------------------------------------------

    def _compile_vprojection(
        self, node: "Project"
    ) -> Callable[[ColumnBatch, list[int], _VCtx], list[Row]]:
        """Project ordered batch positions into output rows.

        Key order matches the row executor exactly (projection entries
        first, then ``<name>.ROWID`` keys in FROM order) so results stay
        byte-identical.
        """
        names = tuple(item.name for item in node.from_items)
        mode = node.mode
        if mode == "rowids":
            if len(names) == 1:
                only = names[0]

                def project_single(
                    batch: ColumnBatch, order: list[int], vctx: _VCtx
                ) -> list[Row]:
                    rowid_array = batch.rowids[only]
                    return [{"ROWID": rowid_array[i]} for i in order]

                return project_single

            assemble_rowids = _row_assembler(
                tuple(f"{name}.ROWID" for name in names)
            )

            def project_rowids(
                batch: ColumnBatch, order: list[int], vctx: _VCtx
            ) -> list[Row]:
                return assemble_rowids([
                    [array[i] for i in order]
                    for array in (batch.rowids[name] for name in names)
                ])

            return project_rowids

        base: Optional[Callable[[ColumnBatch, list[int], _VCtx], list[Row]]]
        base = None
        if mode == "star":
            entries: list[tuple[str, str, str]] = []
            existing: set[str] = set()
            for item in node.from_items:
                for column in self.db.table(item.relation_name).columns:
                    out_key = (
                        column if column not in existing else f"{item.name}.{column}"
                    )
                    existing.add(out_key)
                    entries.append((item.name, column, out_key))

            assemble_star = _row_assembler(
                tuple(key for _name, _column, key in entries)
            )

            def project_star(
                batch: ColumnBatch, order: list[int], vctx: _VCtx
            ) -> list[Row]:
                # gather each output column along `order`, then assemble
                # rows through the specialized dict-literal builder
                return assemble_star([
                    batch.gather(name, column, order)
                    for name, column, _key in entries
                ])

            base = project_star
        else:
            resolved = [
                (
                    column.output_name,
                    self._resolve_column(
                        ColumnRef(column.column, column.qualifier)
                    ),
                )
                for column in node.columns
            ]
            # non-empty guard: zip(*[]) would yield no rows, not empty rows
            if resolved and all(target is not None for _label, target in resolved):
                assemble_columns = _row_assembler(
                    tuple(label for label, _target in resolved)
                )

                def project_columns(
                    batch: ColumnBatch, order: list[int], vctx: _VCtx
                ) -> list[Row]:
                    return assemble_columns([
                        batch.gather(name, column, order)
                        for _label, (name, column) in resolved
                    ])

                base = project_columns

        if base is None:
            # ambiguous references: per-row env through the row
            # compiler's projection (which already appends rowid keys)
            project_row = self.row._compile_projection(node)

            def project_generic(
                batch: ColumnBatch, order: list[int], vctx: _VCtx
            ) -> list[Row]:
                params = vctx.params
                batch_names = batch.names
                rows = batch.rows
                rowid_arrays = {
                    name: batch.rowids[name] for name in batch_names
                }
                out = []
                for i in order:
                    env = {name: rows[name][i] for name in batch_names}
                    rowids = {
                        name: rowid_arrays[name][i] for name in batch_names
                    }
                    out.append(project_row(env, rowids, params))
                return out

            return project_generic
        if not node.include_rowids:
            return base
        inner_base = base

        def with_rowids(
            batch: ColumnBatch, order: list[int], vctx: _VCtx
        ) -> list[Row]:
            out = inner_base(batch, order, vctx)
            arrays = [(f"{name}.ROWID", batch.rowids[name]) for name in names]
            for position, i in enumerate(order):
                row = out[position]
                for key, array in arrays:
                    row[key] = array[i]
            return out

        return with_rowids


# -- vector predicate fast paths (module-level, shared across plans) --------

def _row_assembler(keys: tuple[str, ...]) -> Callable[[list], list]:
    """Specialized gathered-columns → row-dicts assembler.

    Generates ``[{'k0': v0, 'k1': v1, ...} for v0, v1, ... in
    zip(*gathered)]`` for this exact key tuple: the dict-literal
    BUILD_MAP opcode beats ``dict(zip(keys, values))``'s per-row
    iterator by ~2x, and projection is the largest fixed cost of every
    vectorized plan.  Keys come from the schema/plan and are
    repr-escaped, never interpolated raw.
    """
    if len(keys) == 1:
        only = keys[0]
        return lambda gathered: [{only: value} for value in gathered[0]]
    variables = [f"v{i}" for i in range(len(keys))]
    items = ", ".join(
        f"{key!r}: {var}" for key, var in zip(keys, variables)
    )
    heads = ", ".join(variables)
    source = (
        "def assemble(gathered):\n"
        f"    return [{{{items}}} for {heads} in zip(*gathered)]\n"
    )
    namespace: dict[str, Any] = {}
    exec(source, namespace)
    return namespace["assemble"]


def _indexed(positions, array):
    """(position, array[position]) pairs; C-speed enumerate when the
    selection covers the whole batch (positions() returned a range)."""
    if type(positions) is range:
        return enumerate(array)
    return ((i, array[i]) for i in positions)


def _vpred_column_value(
    target: tuple[str, str],
    value_fn: EvalFn,
    comparator: Callable[[Any, Any], bool],
    flipped: bool,
) -> Callable[[ColumnBatch, _VCtx], list[int]]:
    name, column = target

    def run(batch: ColumnBatch, vctx: _VCtx) -> list[int]:
        value = value_fn({}, vctx.params)
        if value is None:
            return []  # NULL comparison is unknown for every row
        array = batch.column(name, column)
        if flipped:
            return [
                i
                for i in batch.positions()
                if (x := array[i]) is not None and comparator(value, x)
            ]
        return [
            i
            for i in batch.positions()
            if (x := array[i]) is not None and comparator(x, value)
        ]

    return run


def _vpred_column_column(
    left: tuple[str, str],
    right: tuple[str, str],
    comparator: Callable[[Any, Any], bool],
) -> Callable[[ColumnBatch, _VCtx], list[int]]:
    left_name, left_column = left
    right_name, right_column = right

    def run(batch: ColumnBatch, vctx: _VCtx) -> list[int]:
        left_array = batch.column(left_name, left_column)
        right_array = batch.column(right_name, right_column)
        return [
            i
            for i in batch.positions()
            if (x := left_array[i]) is not None
            and (y := right_array[i]) is not None
            and comparator(x, y)
        ]

    return run


def _vpred_is_null(
    target: tuple[str, str], negate: bool
) -> Callable[[ColumnBatch, _VCtx], list[int]]:
    name, column = target

    def run(batch: ColumnBatch, vctx: _VCtx) -> list[int]:
        array = batch.column(name, column)
        if negate:
            return [i for i in batch.positions() if array[i] is not None]
        return [i for i in batch.positions() if array[i] is None]

    return run


def _vpred_generic(
    fn: EvalFn,
) -> Callable[[ColumnBatch, _VCtx], list[int]]:
    def run(batch: ColumnBatch, vctx: _VCtx) -> list[int]:
        params = vctx.params
        names = batch.names
        rows = batch.rows
        out = []
        for i in batch.positions():
            env = {name: rows[name][i] for name in names}
            if fn(env, params) is True:
                out.append(i)
        return out

    return run


# ---------------------------------------------------------------------------
# rowid-path plan cache (find_rowids / select_rowids)
# ---------------------------------------------------------------------------

class _RowidEntry:
    __slots__ = ("schema_version", "payload")

    def __init__(self, schema_version: int, payload: Any) -> None:
        self.schema_version = schema_version
        self.payload = payload


class RowidPlanCache:
    """Compiled rowid-path plans, one cache per database.

    Holds the :class:`CompiledPlan` artifacts of ``find_rowids``
    (equality lookups keyed per column set) and ``select_rowids``
    (predicate closures keyed per :func:`where_signature`).  Entries are
    pinned to the owning relation's schema version: CREATE INDEX / DROP
    TABLE / temp-table recreation invalidates them, while DML never does
    — the artifacts read live tables and indexes, so data drift cannot
    make them wrong, only DDL can.  ``payload=None`` remembers that a
    predicate shape must run interpreted.
    """

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._entries: dict[tuple, _RowidEntry] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, key: tuple, db: "Database", relation_name: str) -> Optional[_RowidEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if db.schema_versions.get(relation_name, 0) != entry.schema_version:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: tuple, db: "Database", relation_name: str, payload: Any) -> None:
        if len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = _RowidEntry(
            db.schema_versions.get(relation_name, 0), payload
        )

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------------
# plan cache
# ---------------------------------------------------------------------------

class _Entry:
    __slots__ = ("schema_versions", "data_versions", "row_counts", "compiled")

    def __init__(
        self,
        schema_versions: dict[str, int],
        data_versions: dict[str, int],
        row_counts: dict[str, int],
        compiled: Optional[CompiledPlan],
    ) -> None:
        self.schema_versions = schema_versions
        self.data_versions = data_versions
        self.row_counts = row_counts
        self.compiled = compiled


class PlanCache:
    """Compiled plans keyed on the logical plan signature.

    Entries are validated against the per-relation schema versions (DDL:
    CREATE/DROP TABLE, CREATE INDEX) and data versions (DML) of the
    relations the plan reads — while DDL/DML against *unrelated*
    relations (e.g. the outside strategy's temp-table churn) leaves the
    entry untouched.

    DDL always invalidates (a compiled plan may hold a dropped index).
    DML is judged by the **re-planning threshold**: a cached join order
    survives while the accumulated DML drift per relation stays within
    ``max(db.replan_min_ops, db.replan_threshold × rows-at-compile-time)``
    — compiled plans read live tables and indexes, so small drift only
    risks a stale *order*, never a wrong *result*.  Past the threshold
    the cardinalities that justified the order are declared stale and
    the plan recompiles against fresh statistics.  ``compiled=None``
    entries remember that a shape must run interpreted.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: dict[tuple, _Entry] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: validations that saw DML drift below the threshold and kept
        #: the cached plan (the "any DML recompiles" rule would not have)
        self.drift_survivals = 0

    def get(self, signature: tuple, db: "Database") -> Optional[_Entry]:
        entry = self._entries.get(signature)
        if entry is None:
            self.misses += 1
            return None
        if any(
            db.schema_versions.get(relation, 0) != version
            for relation, version in entry.schema_versions.items()
        ):
            return self._invalidate(signature)
        drifted = False
        for relation, version in entry.data_versions.items():
            delta = db.data_versions.get(relation, 0) - version
            if delta == 0:
                continue
            allowed = max(
                db.replan_min_ops,
                int(db.replan_threshold * entry.row_counts.get(relation, 0)),
            )
            if delta > allowed:
                return self._invalidate(signature)
            drifted = True
        if drifted:
            self.drift_survivals += 1
            db.stats["replans_avoided"] += 1
        self.hits += 1
        return entry

    def _invalidate(self, signature: tuple) -> None:
        del self._entries[signature]
        self.invalidations += 1
        self.misses += 1
        return None

    def put(self, signature: tuple, db: "Database",
            compiled: Optional[CompiledPlan],
            relations: set[str]) -> None:
        if len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[signature] = _Entry(
            {relation: db.schema_versions.get(relation, 0) for relation in relations},
            {relation: db.data_versions.get(relation, 0) for relation in relations},
            {
                relation: len(db.tables[relation]) if relation in db.tables else 0
                for relation in relations
            },
            compiled,
        )

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
