"""Relational schema model: attributes, relations, and whole schemas.

Besides holding DDL metadata, :class:`Schema` provides the schema-level
queries the U-Filter core needs:

* uniqueness of an attribute (Rule 1's *proper join* test),
* the ``extend(R)`` set — relations that (transitively) reference ``R``
  through foreign keys (Rule 2),
* per-attribute local constraints (Step 1 validation),
* foreign-key edges for the base ASG.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from ..errors import SchemaError
from .constraints import (
    Check,
    Constraint,
    DeletePolicy,
    ForeignKey,
    NotNull,
    PrimaryKey,
    Unique,
)
from .expr import Expr
from .types import SQLType, type_from_name

__all__ = ["Attribute", "Relation", "Schema"]


class Attribute:
    """A named, typed column of a relation."""

    def __init__(self, name: str, sql_type: SQLType | str) -> None:
        if isinstance(sql_type, str):
            sql_type = type_from_name(sql_type)
        self.name = name
        self.sql_type = sql_type

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Attribute({self.name}: {self.sql_type.name})"


class Relation:
    """A relation schema: ordered attributes plus its constraints."""

    def __init__(
        self,
        name: str,
        attributes: Sequence[Attribute],
        constraints: Iterable[Constraint] = (),
    ) -> None:
        self.name = name
        #: True for session-materialized temp tables, whose declared
        #: VARCHAR columns hold raw untyped values (type-dependent
        #: static checks must skip them)
        self.temp = False
        self.attributes: dict[str, Attribute] = {}
        for attribute in attributes:
            if attribute.name in self.attributes:
                raise SchemaError(
                    f"duplicate attribute {attribute.name!r} in relation {name!r}"
                )
            self.attributes[attribute.name] = attribute
        self.constraints: list[Constraint] = []
        for constraint in constraints:
            self.add_constraint(constraint)

    # -- construction -------------------------------------------------------

    def add_constraint(self, constraint: Constraint) -> None:
        for column in self._constraint_columns(constraint):
            if column not in self.attributes:
                raise SchemaError(
                    f"constraint on unknown column {column!r} of {self.name!r}"
                )
        constraint.relation_name = self.name
        self.constraints.append(constraint)

    @staticmethod
    def _constraint_columns(constraint: Constraint) -> tuple[str, ...]:
        if isinstance(constraint, NotNull):
            return (constraint.column,)
        if isinstance(constraint, (Unique, ForeignKey)):
            return tuple(constraint.columns)
        if isinstance(constraint, Check):
            return tuple(column for _, column in constraint.expression.columns())
        return ()

    # -- lookups -------------------------------------------------------------

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(self.attributes)

    def attribute(self, name: str) -> Attribute:
        try:
            return self.attributes[name]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {name!r}"
            ) from None

    @property
    def primary_key(self) -> Optional[PrimaryKey]:
        for constraint in self.constraints:
            if isinstance(constraint, PrimaryKey):
                return constraint
        return None

    @property
    def foreign_keys(self) -> list[ForeignKey]:
        return [c for c in self.constraints if isinstance(c, ForeignKey)]

    @property
    def unique_constraints(self) -> list[Unique]:
        """All uniqueness constraints (PRIMARY KEY included)."""
        return [c for c in self.constraints if isinstance(c, Unique)]

    @property
    def check_constraints(self) -> list[Check]:
        return [c for c in self.constraints if isinstance(c, Check)]

    def not_null_columns(self) -> set[str]:
        """Columns that may not be NULL (explicit NOT NULL or key member)."""
        columns = {c.column for c in self.constraints if isinstance(c, NotNull)}
        key = self.primary_key
        if key is not None:
            columns.update(key.columns)
        return columns

    def is_unique_column(self, column: str) -> bool:
        """True iff *column* alone is a unique identifier of this relation.

        This is the test Rule 1 of the STAR marking procedure applies to
        the attribute on the "one" side of a join condition.
        """
        self.attribute(column)
        return any(
            len(constraint.columns) == 1 and constraint.columns[0] == column
            for constraint in self.unique_constraints
        )

    def checks_for_column(self, column: str) -> list[Expr]:
        """CHECK expressions that mention *column*."""
        out = []
        for constraint in self.check_constraints:
            mentioned = {name for _, name in constraint.expression.columns()}
            if column in mentioned:
                out.append(constraint.expression)
        return out

    def ddl(self) -> str:
        """Render CREATE TABLE text (documentation / debugging)."""
        parts = [
            f"  {attr.name} {attr.sql_type.name}" for attr in self.attributes.values()
        ]
        parts.extend(f"  {constraint.describe()}" for constraint in self.constraints)
        body = ",\n".join(parts)
        return f"CREATE TABLE {self.name} (\n{body}\n)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name}: {', '.join(self.attribute_names)})"


class Schema:
    """A set of relations with cross-relation foreign keys."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self.relations: dict[str, Relation] = {}
        for relation in relations:
            self.add_relation(relation)
        self._validate_foreign_keys()

    def add_relation(self, relation: Relation) -> None:
        if relation.name in self.relations:
            raise SchemaError(f"duplicate relation {relation.name!r}")
        self.relations[relation.name] = relation

    def _validate_foreign_keys(self) -> None:
        for relation in self.relations.values():
            for fk in relation.foreign_keys:
                if fk.ref_relation not in self.relations:
                    raise SchemaError(
                        f"foreign key of {relation.name!r} references unknown "
                        f"relation {fk.ref_relation!r}"
                    )
                target = self.relations[fk.ref_relation]
                for column in fk.ref_columns:
                    target.attribute(column)

    # -- lookups -------------------------------------------------------------

    def relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations.values())

    def foreign_keys_into(self, name: str) -> list[ForeignKey]:
        """Foreign keys (of any relation) that reference relation *name*."""
        self.relation(name)
        out = []
        for relation in self.relations.values():
            for fk in relation.foreign_keys:
                if fk.ref_relation == name:
                    out.append(fk)
        return out

    def referencing_relations(self, name: str) -> set[str]:
        """Names of relations with a direct FK into *name*."""
        return {fk.relation_name for fk in self.foreign_keys_into(name)}

    def extend(self, name: str, within: Optional[set[str]] = None) -> set[str]:
        """The paper's ``extend(R)``: R plus its transitive referrers.

        When *within* is given (``rel(DEF_V)`` in Rule 2), the result is
        intersected with it, but the FK chase itself still walks the full
        schema so indirect referrers routed through out-of-view relations
        are found.
        """
        closure = {name}
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for referrer in self.referencing_relations(current):
                if referrer not in closure:
                    closure.add(referrer)
                    frontier.append(referrer)
        if within is not None:
            closure &= set(within) | {name}
        return closure

    def delete_policy(self, referrer: str, referenced: str) -> Optional[DeletePolicy]:
        """Delete policy of the FK from *referrer* into *referenced*."""
        for fk in self.relation(referrer).foreign_keys:
            if fk.ref_relation == referenced:
                return fk.on_delete
        return None

    def is_unique(self, relation_name: str, column: str) -> bool:
        return self.relation(relation_name).is_unique_column(column)

    def ddl(self) -> str:
        return ";\n\n".join(relation.ddl() for relation in self.relations.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({', '.join(self.relations)})"
