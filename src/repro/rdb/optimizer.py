"""Cost-aware join ordering for :class:`repro.rdb.plan.SelectPlan`.

The paper's probe queries arrive with their FROM clause in view-nesting
order (root relation first).  That order is frequently the worst one to
execute: the update's literal predicates anchor at the *deepest*
relation (``l_orderkey = 0`` on LINEITEM), so a literal FROM-order
nested loop enumerates the full context product before the literal ever
filters anything.

:func:`order_from_items` reorders the FROM items greedily,
smallest-bound-first:

* **seed** — the most selective relation that an index (or at least a
  literal equality) can open: a unique index pinned by literals is
  estimated at one row, a non-unique one at ``rows / distinct(key)``;
* **grow** — at each step, prefer relations *reachable* through
  equality conjuncts from the already-bound set (index probe if one
  covers the join columns, transient hash join otherwise) over
  relations that would start a cartesian product;
* **fallback** — among unreachable relations, smallest estimated
  output first.

Estimates come from the statistics subsystem
(:mod:`repro.rdb.statistics`): per-column distinct counts size equality
and hash-join output, equi-depth histograms size range conjuncts, and
null fractions size ``IS [NOT] NULL`` — so a relation whose non-equality
filters are selective can win a join-order slot even without an index
(the bushy-friendly part).  None of the estimates read literal values
out of the plan being compiled beyond the conjunct shapes, and all are
drawn from live engine state, so one ordering is valid for a whole
family of same-shape plans — which is what lets the plan cache in
:mod:`repro.rdb.compiled` key on a literal-agnostic signature.

The binding/applicability helpers here are shared with both executors
(compiled and interpreted) in :mod:`repro.rdb.plan`.  Each ordering
pass digests the conjunct list once into :class:`ConjunctInfo` records
(qualifier sets, equality orientations) instead of re-materializing
``Expr.columns()`` for every candidate × step combination.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Sequence

from .expr import ColumnRef, Comparison, Expr, IsNull, Literal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (plan -> optimizer)
    from .database import Database
    from .index import HashIndex
    from .plan import FromItem
    from .statistics import TableStatistics

__all__ = [
    "ConjunctInfo",
    "applicable",
    "binding_equalities",
    "choose_index",
    "conjunct_selectivity",
    "estimate_access",
    "order_from_items",
]

#: a comparison seen from the other side: ``lit < col`` is ``col > lit``
_MIRRORED_OP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def binding_equalities(
    conjunct: Expr, target: str, bound: set[str]
) -> Optional[tuple[str, Expr]]:
    """If *conjunct* pins a column of *target* to an evaluable value,
    return ``(column, value_expr)``.

    A value expression is evaluable when it is a literal or references
    only already-bound FROM items.
    """
    if not isinstance(conjunct, Comparison) or conjunct.op != "=":
        return None
    for this, other in ((conjunct.left, conjunct.right), (conjunct.right, conjunct.left)):
        if isinstance(this, ColumnRef) and this.qualifier == target:
            if isinstance(other, Literal):
                return this.column, other
            if isinstance(other, ColumnRef) and other.qualifier in bound:
                return this.column, other
    return None


def applicable(conjunct: Expr, bound: set[str]) -> bool:
    """True iff every column reference of *conjunct* is bound."""
    columns = conjunct.columns()
    return all(
        qualifier is not None and qualifier in bound
        for qualifier, _ in columns
    )


class ConjunctInfo:
    """One conjunct, digested once per ordering pass.

    Caches the qualifier set (so applicability checks stop
    re-materializing ``Expr.columns()`` per candidate per step) and the
    equality orientations usable for index/hash bindings.
    """

    __slots__ = ("expr", "qualifiers", "qualified_only", "eq_sides")

    def __init__(self, expr: Expr) -> None:
        self.expr = expr
        columns = expr.columns()
        self.qualifiers = frozenset(
            qualifier for qualifier, _ in columns if qualifier is not None
        )
        self.qualified_only = all(
            qualifier is not None for qualifier, _ in columns
        )
        eq_sides: list[tuple[str, str, Expr, Optional[str]]] = []
        if isinstance(expr, Comparison) and expr.op == "=":
            for this, other in ((expr.left, expr.right), (expr.right, expr.left)):
                if isinstance(this, ColumnRef) and this.qualifier is not None:
                    if isinstance(other, Literal):
                        eq_sides.append((this.qualifier, this.column, other, None))
                    elif isinstance(other, ColumnRef) and other.qualifier is not None:
                        eq_sides.append(
                            (this.qualifier, this.column, other, other.qualifier)
                        )
        self.eq_sides = tuple(eq_sides)

    def binding_for(
        self, target: str, bound: set[str]
    ) -> Optional[tuple[str, Expr]]:
        """:func:`binding_equalities` over the pre-digested orientations."""
        for qualifier, column, value_expr, value_qualifier in self.eq_sides:
            if qualifier != target:
                continue
            if value_qualifier is None or value_qualifier in bound:
                return column, value_expr
        return None

    def applicable(self, bound: set[str]) -> bool:
        return self.qualified_only and self.qualifiers <= bound


def choose_index(
    db: "Database", relation_name: str, columns: set[str]
) -> Optional["HashIndex"]:
    """Best index whose columns are all pinned by the equalities."""
    best = None
    for index in db.indexes.get(relation_name, ()):
        if set(index.columns) <= columns:
            if best is None or len(index.columns) > len(best.columns):
                best = index
    return best


def conjunct_selectivity(
    stats: "TableStatistics", expr: Expr, target: str
) -> float:
    """Estimated fraction of *target*'s rows satisfying *expr*.

    Understands ``column <op> literal`` comparisons (either orientation;
    histogram-estimated for range operators, distinct-count-estimated
    for ``=`` / ``<>``) and ``IS [NOT] NULL`` over a column of *target*.
    Everything else estimates 1.0 — never pretend to know more than the
    statistics do.
    """
    if isinstance(expr, Comparison):
        for this, other in ((expr.left, expr.right), (expr.right, expr.left)):
            if (
                isinstance(this, ColumnRef)
                and this.qualifier == target
                and isinstance(other, Literal)
            ):
                op = expr.op if this is expr.left else _MIRRORED_OP[expr.op]
                return stats.comparison_selectivity(op, this.column, other.value)
        return 1.0
    if isinstance(expr, IsNull):
        operand = expr.operand
        if isinstance(operand, ColumnRef) and operand.qualifier == target:
            null_fraction = stats.null_fraction(operand.column)
            return (1.0 - null_fraction) if expr.negate else null_fraction
    return 1.0


def estimate_access(
    db: "Database",
    item: "FromItem",
    conjuncts: Sequence[Expr],
    bound: set[str],
    infos: Optional[Sequence[ConjunctInfo]] = None,
) -> tuple[str, int]:
    """How the executor would open *item* given the *bound* relations.

    Returns ``(kind, emitted)`` where *kind* is ``"index"`` / ``"hash"``
    / ``"scan"`` and *emitted* estimates the rows each instantiation of
    the level yields.  Estimates come from :mod:`repro.rdb.statistics`:
    equality bindings are sized by distinct counts (per index key for
    index probes, per join-column set for hash joins), and the residual
    conjuncts that become applicable at this level scale the output by
    their histogram/null-fraction selectivities.

    *infos* carries the pre-digested conjuncts of the current ordering
    pass; when absent (direct callers, tests) it is derived here.
    """
    if infos is None:
        infos = [ConjunctInfo(conjunct) for conjunct in conjuncts]
    target = item.name
    equalities: dict[str, Expr] = {}
    consumed: set[int] = set()
    for info in infos:
        binding = info.binding_for(target, bound)
        if binding is not None and binding[0] not in equalities:
            equalities[binding[0]] = binding[1]
            consumed.add(id(info))
    stats = db.statistics.table(item.relation_name)
    cardinality = stats.row_count
    if equalities:
        index = choose_index(db, item.relation_name, set(equalities))
        # every equality column filters the output — the index serves
        # the covered subset, the rest run as residual filters
        emitted = stats.equality_rows(equalities)
        if index is not None:
            kind = "index"
            if index.unique:
                emitted = min(emitted, 1.0)
        else:
            # transient hash join: the build is paid once per execution,
            # each probe emits one bucket — sized by the join columns'
            # distinct counts instead of the old count // 4 guess
            kind = "hash"
    else:
        kind = "scan"
        emitted = float(cardinality)
    # bushy-friendly residual selectivity: non-equality conjuncts that
    # become applicable once this item is bound shrink its output
    bound_after = bound | {target}
    for info in infos:
        if id(info) in consumed:
            continue
        if target in info.qualifiers and info.applicable(bound_after):
            emitted *= conjunct_selectivity(stats, info.expr, target)
    if emitted <= 0.0:
        return kind, 0
    return kind, max(1, min(cardinality, math.ceil(emitted - 1e-9)))


def order_from_items(
    db: "Database", from_items: Sequence["FromItem"], conjuncts: Sequence[Expr]
) -> list[int]:
    """Greedy smallest-bound-first join order (indices into *from_items*).

    Ties break on the original FROM position, so already-good orders are
    left untouched and the result is deterministic.  The conjunct list
    is digested once per pass (:class:`ConjunctInfo`), not once per
    candidate × step.
    """
    infos = [ConjunctInfo(conjunct) for conjunct in conjuncts]
    remaining = list(range(len(from_items)))
    order: list[int] = []
    bound: set[str] = set()
    while remaining:
        best = remaining[0]
        best_score: Optional[tuple] = None
        for position in remaining:
            kind, emitted = estimate_access(
                db, from_items[position], conjuncts, bound, infos=infos
            )
            score = (0 if kind != "scan" else 1, emitted, position)
            if best_score is None or score < best_score:
                best, best_score = position, score
        order.append(best)
        bound.add(from_items[best].name)
        remaining.remove(best)
    return order
