"""Cost-aware join ordering for :class:`repro.rdb.plan.SelectPlan`.

The paper's probe queries arrive with their FROM clause in view-nesting
order (root relation first).  That order is frequently the worst one to
execute: the update's literal predicates anchor at the *deepest*
relation (``l_orderkey = 0`` on LINEITEM), so a literal FROM-order
nested loop enumerates the full context product before the literal ever
filters anything.

:func:`order_from_items` reorders the FROM items greedily,
smallest-bound-first:

* **seed** — the most selective relation that an index (or at least a
  literal equality) can open: a unique index pinned by literals is
  estimated at one row, a non-unique one at ``rows / distinct(key)``;
* **grow** — at each step, prefer relations *reachable* through
  equality conjuncts from the already-bound set (index probe if one
  covers the join columns, transient hash join otherwise) over
  relations that would start a cartesian product;
* **fallback** — among unreachable relations, smallest estimated
  output first.

Estimates come from the statistics subsystem
(:mod:`repro.rdb.statistics`): per-column distinct counts size equality
and hash-join output, equi-depth histograms size range conjuncts, and
null fractions size ``IS [NOT] NULL`` — so a relation whose non-equality
filters are selective can win a join-order slot even without an index
(the bushy-friendly part).  None of the estimates read literal values
out of the plan being compiled beyond the conjunct shapes, and all are
drawn from live engine state, so one ordering is valid for a whole
family of same-shape plans — which is what lets the plan cache in
:mod:`repro.rdb.compiled` key on a literal-agnostic signature.

The binding/applicability helpers here are shared with both executors
(compiled and interpreted) in :mod:`repro.rdb.plan`.  Each ordering
pass digests the conjunct list once into :class:`ConjunctInfo` records
(qualifier sets, equality orientations) instead of re-materializing
``Expr.columns()`` for every candidate × step combination.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Sequence

from .expr import ColumnRef, Comparison, Expr, IsNull, Literal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (plan -> optimizer)
    from .database import Database
    from .index import HashIndex
    from .plan import FromItem
    from .statistics import TableStatistics

__all__ = [
    "ConjunctInfo",
    "JoinTree",
    "MAX_DP_RELATIONS",
    "applicable",
    "binding_equalities",
    "choose_index",
    "conjunct_selectivity",
    "enumerate_joins",
    "estimate_access",
    "order_from_items",
]

#: a comparison seen from the other side: ``lit < col`` is ``col > lit``
_MIRRORED_OP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def binding_equalities(
    conjunct: Expr, target: str, bound: set[str]
) -> Optional[tuple[str, Expr]]:
    """If *conjunct* pins a column of *target* to an evaluable value,
    return ``(column, value_expr)``.

    A value expression is evaluable when it is a literal or references
    only already-bound FROM items.
    """
    if not isinstance(conjunct, Comparison) or conjunct.op != "=":
        return None
    for this, other in ((conjunct.left, conjunct.right), (conjunct.right, conjunct.left)):
        if isinstance(this, ColumnRef) and this.qualifier == target:
            if isinstance(other, Literal):
                return this.column, other
            if isinstance(other, ColumnRef) and other.qualifier in bound:
                return this.column, other
    return None


def applicable(conjunct: Expr, bound: set[str]) -> bool:
    """True iff every column reference of *conjunct* is bound."""
    columns = conjunct.columns()
    return all(
        qualifier is not None and qualifier in bound
        for qualifier, _ in columns
    )


class ConjunctInfo:
    """One conjunct, digested once per ordering pass.

    Caches the qualifier set (so applicability checks stop
    re-materializing ``Expr.columns()`` per candidate per step) and the
    equality orientations usable for index/hash bindings.
    """

    __slots__ = ("expr", "qualifiers", "qualified_only", "eq_sides")

    def __init__(self, expr: Expr) -> None:
        self.expr = expr
        columns = expr.columns()
        self.qualifiers = frozenset(
            qualifier for qualifier, _ in columns if qualifier is not None
        )
        self.qualified_only = all(
            qualifier is not None for qualifier, _ in columns
        )
        eq_sides: list[tuple[str, str, Expr, Optional[str]]] = []
        if isinstance(expr, Comparison) and expr.op == "=":
            for this, other in ((expr.left, expr.right), (expr.right, expr.left)):
                if isinstance(this, ColumnRef) and this.qualifier is not None:
                    if isinstance(other, Literal):
                        eq_sides.append((this.qualifier, this.column, other, None))
                    elif isinstance(other, ColumnRef) and other.qualifier is not None:
                        eq_sides.append(
                            (this.qualifier, this.column, other, other.qualifier)
                        )
        self.eq_sides = tuple(eq_sides)

    def binding_for(
        self, target: str, bound: set[str]
    ) -> Optional[tuple[str, Expr]]:
        """:func:`binding_equalities` over the pre-digested orientations."""
        for qualifier, column, value_expr, value_qualifier in self.eq_sides:
            if qualifier != target:
                continue
            if value_qualifier is None or value_qualifier in bound:
                return column, value_expr
        return None

    def applicable(self, bound: set[str]) -> bool:
        return self.qualified_only and self.qualifiers <= bound


def choose_index(
    db: "Database", relation_name: str, columns: set[str]
) -> Optional["HashIndex"]:
    """Best index whose columns are all pinned by the equalities."""
    best = None
    for index in db.indexes.get(relation_name, ()):
        if set(index.columns) <= columns:
            if best is None or len(index.columns) > len(best.columns):
                best = index
    return best


def conjunct_selectivity(
    stats: "TableStatistics", expr: Expr, target: str
) -> float:
    """Estimated fraction of *target*'s rows satisfying *expr*.

    Understands ``column <op> literal`` comparisons (either orientation;
    histogram-estimated for range operators, distinct-count-estimated
    for ``=`` / ``<>``) and ``IS [NOT] NULL`` over a column of *target*.
    Everything else estimates 1.0 — never pretend to know more than the
    statistics do.
    """
    if isinstance(expr, Comparison):
        for this, other in ((expr.left, expr.right), (expr.right, expr.left)):
            if (
                isinstance(this, ColumnRef)
                and this.qualifier == target
                and isinstance(other, Literal)
            ):
                op = expr.op if this is expr.left else _MIRRORED_OP[expr.op]
                return stats.comparison_selectivity(op, this.column, other.value)
        return 1.0
    if isinstance(expr, IsNull):
        operand = expr.operand
        if isinstance(operand, ColumnRef) and operand.qualifier == target:
            null_fraction = stats.null_fraction(operand.column)
            return (1.0 - null_fraction) if expr.negate else null_fraction
    return 1.0


def estimate_access(
    db: "Database",
    item: "FromItem",
    conjuncts: Sequence[Expr],
    bound: set[str],
    infos: Optional[Sequence[ConjunctInfo]] = None,
) -> tuple[str, int]:
    """How the executor would open *item* given the *bound* relations.

    Returns ``(kind, emitted)`` where *kind* is ``"index"`` / ``"hash"``
    / ``"scan"`` and *emitted* estimates the rows each instantiation of
    the level yields.  Estimates come from :mod:`repro.rdb.statistics`:
    equality bindings are sized by distinct counts (per index key for
    index probes, per join-column set for hash joins), and the residual
    conjuncts that become applicable at this level scale the output by
    their histogram/null-fraction selectivities.

    *infos* carries the pre-digested conjuncts of the current ordering
    pass; when absent (direct callers, tests) it is derived here.
    """
    if infos is None:
        infos = [ConjunctInfo(conjunct) for conjunct in conjuncts]
    target = item.name
    equalities: dict[str, Expr] = {}
    consumed: set[int] = set()
    for info in infos:
        binding = info.binding_for(target, bound)
        if binding is not None and binding[0] not in equalities:
            equalities[binding[0]] = binding[1]
            consumed.add(id(info))
    stats = db.statistics.table(item.relation_name)
    cardinality = stats.row_count
    if equalities:
        index = choose_index(db, item.relation_name, set(equalities))
        # every equality column filters the output — the index serves
        # the covered subset, the rest run as residual filters
        emitted = stats.equality_rows(equalities)
        if index is not None:
            kind = "index"
            if index.unique:
                emitted = min(emitted, 1.0)
        else:
            # transient hash join: the build is paid once per execution,
            # each probe emits one bucket — sized by the join columns'
            # distinct counts instead of the old count // 4 guess
            kind = "hash"
    else:
        kind = "scan"
        emitted = float(cardinality)
    # bushy-friendly residual selectivity: non-equality conjuncts that
    # become applicable once this item is bound shrink its output
    bound_after = bound | {target}
    for info in infos:
        if id(info) in consumed:
            continue
        if target in info.qualifiers and info.applicable(bound_after):
            emitted *= conjunct_selectivity(stats, info.expr, target)
    if emitted <= 0.0:
        return kind, 0
    return kind, max(1, min(cardinality, math.ceil(emitted - 1e-9)))


def order_from_items(
    db: "Database", from_items: Sequence["FromItem"], conjuncts: Sequence[Expr]
) -> list[int]:
    """Greedy smallest-bound-first join order (indices into *from_items*).

    Ties break on the original FROM position, so already-good orders are
    left untouched and the result is deterministic.  The conjunct list
    is digested once per pass (:class:`ConjunctInfo`), not once per
    candidate × step.
    """
    infos = [ConjunctInfo(conjunct) for conjunct in conjuncts]
    remaining = list(range(len(from_items)))
    order: list[int] = []
    bound: set[str] = set()
    while remaining:
        best = remaining[0]
        best_score: Optional[tuple] = None
        for position in remaining:
            kind, emitted = estimate_access(
                db, from_items[position], conjuncts, bound, infos=infos
            )
            score = (0 if kind != "scan" else 1, emitted, position)
            if best_score is None or score < best_score:
                best, best_score = position, score
        order.append(best)
        bound.add(from_items[best].name)
        remaining.remove(best)
    return order


# ---------------------------------------------------------------------------
# dynamic-programming bushy join enumeration
# ---------------------------------------------------------------------------

#: relation count up to which the DP search runs; above it the greedy
#: smallest-bound-first order builds a left-deep tree (3^n subset splits
#: stop being "planning is free" territory quickly)
MAX_DP_RELATIONS = 6


class JoinTree:
    """One node of the join-order search result.

    A *leaf* carries the FROM item it opens (``position`` indexes the
    original FROM clause) and the access ``method`` the estimator
    predicts for it standalone (``"index"`` / ``"scan"``).  A *join*
    carries its two subtrees — ``outer`` is the probe/driving side,
    ``inner`` the indexed/build side — and a ``method`` of ``"index"``
    (nested loop into an index probe), ``"hash"`` (transient hash table
    over the inner subtree) or ``"nlj"`` (cartesian rescan).

    ``est_rows`` / ``est_cost`` are the statistics-driven estimates the
    enumerator compared; the physical lowering copies them onto the
    operator nodes so ``explain()`` can show per-node row estimates.
    """

    __slots__ = (
        "item", "position", "method", "outer", "inner",
        "est_rows", "est_cost", "inner_emitted", "names",
    )

    def __init__(
        self,
        method: str,
        item: Optional["FromItem"] = None,
        position: Optional[int] = None,
        outer: Optional["JoinTree"] = None,
        inner: Optional["JoinTree"] = None,
    ) -> None:
        self.method = method
        self.item = item
        self.position = position
        self.outer = outer
        self.inner = inner
        self.est_rows = 0.0
        self.est_cost = 0.0
        #: for a singleton inner side: the rows one instantiation of the
        #: inner emits given the outer bindings (what the DP priced) —
        #: the leaf's own est_rows is its *standalone* estimate, which
        #: would mislead per-node EXPLAIN output inside a join
        self.inner_emitted: Optional[float] = None
        if item is not None:
            self.names: frozenset[str] = frozenset((item.name,))
        else:
            self.names = outer.names | inner.names

    @property
    def is_leaf(self) -> bool:
        return self.item is not None

    def leaf_positions(self) -> list[int]:
        """Leaf FROM positions in execution (outer-first) order."""
        if self.is_leaf:
            return [self.position]
        return self.outer.leaf_positions() + self.inner.leaf_positions()

    def is_bushy(self) -> bool:
        """True iff some join's inner (build) side is itself a join."""
        if self.is_leaf:
            return False
        if not self.inner.is_leaf:
            return True
        return self.outer.is_bushy()


def _leaf_tree(
    db: "Database", from_items: Sequence["FromItem"], position: int,
    conjuncts: Sequence[Expr], infos: Sequence[ConjunctInfo],
) -> JoinTree:
    """DP base case: open one relation with no other relation bound."""
    item = from_items[position]
    kind, emitted = estimate_access(db, item, conjuncts, set(), infos=infos)
    stats = db.statistics.table(item.relation_name)
    if kind != "index":
        # a literal equality without an index runs as scan + filter when
        # the relation opens a (sub)tree: the level is entered once, so
        # a hash build can never amortize
        kind = "scan"
    tree = JoinTree(kind, item=item, position=position)
    tree.est_rows = float(emitted)
    tree.est_cost = (
        float(emitted) if kind == "index" else float(max(stats.row_count, 1))
    )
    return tree


def _spanning_equalities(
    infos: Sequence[ConjunctInfo], left: frozenset, right: frozenset
) -> list[ConjunctInfo]:
    """Equality conjuncts with one column side in each name set."""
    spanning = []
    for info in infos:
        for qualifier, _column, _value, other_qualifier in info.eq_sides:
            if other_qualifier is None:
                continue
            if qualifier in left and other_qualifier in right:
                spanning.append(info)
                break
            if qualifier in right and other_qualifier in left:
                spanning.append(info)
                break
    return spanning


def _combine(
    db: "Database",
    from_items: Sequence["FromItem"],
    conjuncts: Sequence[Expr],
    infos: Sequence[ConjunctInfo],
    outer: JoinTree,
    inner: JoinTree,
) -> Optional[JoinTree]:
    """Cost one way of joining two disjoint subtrees (*outer* drives).

    A single-relation inner side re-uses :func:`estimate_access` — the
    same estimator the executor's access-path selection trusts — so the
    plan the DP prices is exactly the plan the lowering emits.  A
    multi-relation inner side is only considered as the build side of a
    transient hash join over the equality conjuncts spanning the two
    subtrees; splits with no spanning equality are skipped (every
    subset still gets a plan through its singleton splits, which admit
    the cartesian rescan).
    """
    if inner.is_leaf:
        item = from_items[inner.position]
        kind, emitted = estimate_access(
            db, item, conjuncts, set(outer.names), infos=infos
        )
        rows = outer.est_rows * emitted
        if kind == "index":
            cost = outer.est_cost + outer.est_rows * max(float(emitted), 1.0)
        elif kind == "hash":
            cost = (
                outer.est_cost + inner.est_cost + inner.est_rows
                + outer.est_rows + rows
            )
        else:  # cartesian nested loop: the inner is rescanned per row
            kind = "nlj"
            cost = outer.est_cost + outer.est_rows * max(inner.est_cost, 1.0)
        tree = JoinTree(kind, outer=outer, inner=inner)
        tree.est_rows = rows
        tree.est_cost = cost
        tree.inner_emitted = float(emitted)
        return tree
    spanning = _spanning_equalities(infos, outer.names, inner.names)
    if not spanning:
        return None
    selectivity = 1.0
    qualifier_relation = {item.name: item.relation_name for item in from_items}
    for info in spanning:
        for qualifier, column, other, other_qualifier in info.eq_sides:
            if other_qualifier is None or qualifier not in outer.names:
                continue
            if other_qualifier not in inner.names:
                continue
            left_stats = db.statistics.table(qualifier_relation[qualifier])
            right_stats = db.statistics.table(qualifier_relation[other_qualifier])
            selectivity /= max(
                left_stats.distinct(column),
                right_stats.distinct(other.column),
                1,
            )
            break
    rows = outer.est_rows * inner.est_rows * selectivity
    tree = JoinTree("hash", outer=outer, inner=inner)
    tree.est_rows = rows
    tree.est_cost = (
        outer.est_cost + inner.est_cost + inner.est_rows + outer.est_rows + rows
    )
    return tree


def _dp_tree(
    db: "Database",
    from_items: Sequence["FromItem"],
    conjuncts: Sequence[Expr],
    infos: Sequence[ConjunctInfo],
) -> JoinTree:
    """Exhaustive bushy-tree search over subset splits (≤ 2^n states)."""
    n = len(from_items)
    best: dict[int, JoinTree] = {}
    for position in range(n):
        best[1 << position] = _leaf_tree(db, from_items, position, conjuncts, infos)
    for mask in range(3, 1 << n):
        if mask & (mask - 1) == 0:
            continue  # singleton: already seeded
        chosen: Optional[JoinTree] = None
        sub = (mask - 1) & mask
        while sub:
            other = mask ^ sub
            if other:
                candidate = _combine(
                    db, from_items, conjuncts, infos, best[sub], best[other]
                )
                if candidate is not None and (
                    chosen is None
                    or (candidate.est_cost, candidate.est_rows)
                    < (chosen.est_cost, chosen.est_rows)
                ):
                    chosen = candidate
            sub = (sub - 1) & mask
        best[mask] = chosen
    return best[(1 << n) - 1]


def _greedy_tree(
    db: "Database",
    from_items: Sequence["FromItem"],
    conjuncts: Sequence[Expr],
    infos: Sequence[ConjunctInfo],
) -> JoinTree:
    """Left-deep fallback above :data:`MAX_DP_RELATIONS`: fold the
    greedy smallest-bound-first order through the same cost model."""
    order = order_from_items(db, from_items, conjuncts)
    tree = _leaf_tree(db, from_items, order[0], conjuncts, infos)
    for position in order[1:]:
        leaf = _leaf_tree(db, from_items, position, conjuncts, infos)
        tree = _combine(db, from_items, conjuncts, infos, tree, leaf)
    return tree


def enumerate_joins(
    db: "Database", from_items: Sequence["FromItem"], conjuncts: Sequence[Expr]
) -> JoinTree:
    """The join tree the executor should run, estimates attached.

    Dynamic programming over bushy trees for up to
    :data:`MAX_DP_RELATIONS` relations (cost and cardinality from the
    statistics subsystem), greedy left-deep above that.
    """
    infos = [ConjunctInfo(conjunct) for conjunct in conjuncts]
    if len(from_items) == 1:
        return _leaf_tree(db, from_items, 0, conjuncts, infos)
    if len(from_items) > MAX_DP_RELATIONS:
        return _greedy_tree(db, from_items, conjuncts, infos)
    return _dp_tree(db, from_items, conjuncts, infos)
