"""Cost-aware join ordering for :class:`repro.rdb.plan.SelectPlan`.

The paper's probe queries arrive with their FROM clause in view-nesting
order (root relation first).  That order is frequently the worst one to
execute: the update's literal predicates anchor at the *deepest*
relation (``l_orderkey = 0`` on LINEITEM), so a literal FROM-order
nested loop enumerates the full context product before the literal ever
filters anything.

:func:`order_from_items` reorders the FROM items greedily,
smallest-bound-first:

* **seed** — the most selective relation that an index (or at least a
  literal equality) can open: a unique index pinned by literals is
  estimated at one row, a non-unique one at its mean bucket size;
* **grow** — at each step, prefer relations *reachable* through
  equality conjuncts from the already-bound set (index probe if one
  covers the join columns, transient hash join otherwise) over
  relations that would start a cartesian product;
* **fallback** — among unreachable relations, smallest cardinality
  first.

Estimates come from live engine state (``db.count``, index bucket
statistics), not from literal values, so one ordering is valid for a
whole family of same-shape plans — which is what lets the plan cache in
:mod:`repro.rdb.compiled` key on a literal-agnostic signature.

The binding/applicability helpers here are shared with both executors
(compiled and interpreted) in :mod:`repro.rdb.plan`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Sequence

from .expr import ColumnRef, Comparison, Expr, Literal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (plan -> optimizer)
    from .database import Database
    from .index import HashIndex
    from .plan import FromItem

__all__ = [
    "applicable",
    "binding_equalities",
    "choose_index",
    "estimate_access",
    "order_from_items",
]


def binding_equalities(
    conjunct: Expr, target: str, bound: set[str]
) -> Optional[tuple[str, Expr]]:
    """If *conjunct* pins a column of *target* to an evaluable value,
    return ``(column, value_expr)``.

    A value expression is evaluable when it is a literal or references
    only already-bound FROM items.
    """
    if not isinstance(conjunct, Comparison) or conjunct.op != "=":
        return None
    for this, other in ((conjunct.left, conjunct.right), (conjunct.right, conjunct.left)):
        if isinstance(this, ColumnRef) and this.qualifier == target:
            if isinstance(other, Literal):
                return this.column, other
            if isinstance(other, ColumnRef) and other.qualifier in bound:
                return this.column, other
    return None


def applicable(conjunct: Expr, bound: set[str]) -> bool:
    """True iff every column reference of *conjunct* is bound."""
    return all(
        qualifier in bound
        for qualifier, _ in conjunct.columns()
        if qualifier is not None
    ) and all(qualifier is not None for qualifier, _ in conjunct.columns())


def choose_index(
    db: "Database", relation_name: str, columns: set[str]
) -> Optional["HashIndex"]:
    """Best index whose columns are all pinned by the equalities."""
    best = None
    for index in db.indexes.get(relation_name, ()):
        if set(index.columns) <= columns:
            if best is None or len(index.columns) > len(best.columns):
                best = index
    return best


def estimate_access(
    db: "Database",
    item: "FromItem",
    conjuncts: Sequence[Expr],
    bound: set[str],
) -> tuple[str, int]:
    """How the executor would open *item* given the *bound* relations.

    Returns ``(kind, emitted)`` where *kind* is ``"index"`` / ``"hash"``
    / ``"scan"`` and *emitted* estimates the rows each instantiation of
    the level yields.
    """
    equalities: dict[str, Expr] = {}
    for conjunct in conjuncts:
        binding = binding_equalities(conjunct, item.name, bound)
        if binding is not None and binding[0] not in equalities:
            equalities[binding[0]] = binding[1]
    cardinality = db.count(item.relation_name)
    if equalities:
        index = choose_index(db, item.relation_name, set(equalities))
        if index is not None:
            emitted = min(cardinality, math.ceil(index.average_bucket()))
            if index.unique:
                emitted = min(emitted, 1)
            return "index", emitted
        # transient hash join: the build is paid once per execution, each
        # probe emits one bucket — assume moderate key skew
        return "hash", max(1, cardinality // 4) if cardinality else 0
    return "scan", cardinality


def order_from_items(
    db: "Database", from_items: Sequence["FromItem"], conjuncts: Sequence[Expr]
) -> list[int]:
    """Greedy smallest-bound-first join order (indices into *from_items*).

    Ties break on the original FROM position, so already-good orders are
    left untouched and the result is deterministic.
    """
    remaining = list(range(len(from_items)))
    order: list[int] = []
    bound: set[str] = set()
    while remaining:
        best = remaining[0]
        best_score: Optional[tuple] = None
        for position in remaining:
            kind, emitted = estimate_access(db, from_items[position], conjuncts, bound)
            score = (0 if kind != "scan" else 1, emitted, position)
            if best_score is None or score < best_score:
                best, best_score = position, score
        order.append(best)
        bound.add(from_items[best].name)
        remaining.remove(best)
    return order
