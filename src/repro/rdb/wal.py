"""Write-ahead journal for the apply phase.

The in-memory engine's undo log (:mod:`repro.rdb.transactions`) dies
with the process; this module is the durable complement.  Before a
physical mutation touches a table, its *undo image* is appended to the
journal; before a session applies a checked update, the planned
operations are serialized as an *intent* record and flushed with a
barrier.  On reopen, :meth:`repro.rdb.database.Database.recover` reads
the journal back, rolls back every transaction that has no end marker
(the crashed ones), and can optionally replay their durable intents.

Record stream (one JSON object per line, CRC32-guarded)::

    {"t": "begin",  "x": 7}
    {"t": "intent", "x": 7, "name": "u1", "ops": [...]}   # barrier
    {"t": "undo",   "x": 7, "k": "insert", "rel": "book", "rid": 12}
    {"t": "undo",   "x": 7, "k": "delete", "rel": "author",
                    "rid": 3, "old": {...}}
    {"t": "end",    "x": 7, "s": "commit"}                # barrier

A transaction whose ``begin`` has no matching ``end`` in the valid
prefix of the stream is *incomplete* — the process died mid-apply.
Torn tails are expected: reading stops at the first record that fails
its checksum or does not parse, exactly like scanning a real log file
after a crash.

The journal runs in two modes.  In-memory (``path=None``) it keeps the
serialized lines in a list that stands in for "the disk": it survives a
:class:`~repro.rdb.faults.SimulatedCrash` because recovery reuses the
same object, and barriers are merely counted.  File-backed it appends
to *path* and issues real ``flush``/``fsync`` on barriers, which is
what the torn-write tests exercise with an actual truncate.
"""

from __future__ import annotations

import datetime
import json
import os
import zlib
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from ..errors import DatabaseError

__all__ = ["WriteAheadLog", "encode_row", "decode_row"]


# -- value codec -------------------------------------------------------------
#
# Column values are str/int/float/date/None (repro.rdb.types).  Dates
# are not JSON; they travel as {"__date__": iso} envelopes.

def _encode_value(value: Any) -> Any:
    if isinstance(value, datetime.date) and not isinstance(value, datetime.datetime):
        return {"__date__": value.isoformat()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__date__"}:
        return datetime.date.fromisoformat(value["__date__"])
    return value


def encode_row(row: Mapping[str, Any]) -> dict[str, Any]:
    """A row image as a JSON-able dict."""
    return {column: _encode_value(value) for column, value in row.items()}


def decode_row(row: Mapping[str, Any]) -> dict[str, Any]:
    return {column: _decode_value(value) for column, value in row.items()}


def _frame(record: Mapping[str, Any]) -> str:
    """Serialize one record as its checksummed journal line."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(payload.encode("utf-8"))
    return json.dumps({"c": crc, "r": payload}, separators=(",", ":"))


def _unframe(line: str) -> Optional[dict[str, Any]]:
    """Parse one journal line; ``None`` when torn or corrupted."""
    try:
        envelope = json.loads(line)
        payload = envelope["r"]
        if zlib.crc32(payload.encode("utf-8")) != envelope["c"]:
            return None
        record = json.loads(payload)
    except (ValueError, KeyError, TypeError):
        return None
    return record if isinstance(record, dict) else None


class WriteAheadLog:
    """Append-only, checksummed journal of apply-phase mutations."""

    def __init__(self, path: Optional[str | Path] = None) -> None:
        self.path = Path(path) if path is not None else None
        #: serialized journal lines — the simulated disk in memory mode
        self._lines: list[str] = []
        self._next_txn = 1
        #: observability counters
        self.appends = 0
        self.barriers = 0
        if self.path is not None and self.path.exists():
            self._lines = self.path.read_text().splitlines()
            for record in self.records():
                self._next_txn = max(self._next_txn, record.get("x", 0) + 1)

    # -- appending -----------------------------------------------------------

    def _append(self, record: Mapping[str, Any], barrier: bool = False) -> None:
        line = _frame(record)
        self._lines.append(line)
        self.appends += 1
        if self.path is not None:
            with self.path.open("a") as handle:
                handle.write(line + "\n")
                if barrier:
                    handle.flush()
                    os.fsync(handle.fileno())
        if barrier:
            self.barriers += 1

    def begin_txn(self) -> int:
        """Open a journal transaction; returns its id."""
        txn_id = self._next_txn
        self._next_txn += 1
        self._append({"t": "begin", "x": txn_id})
        return txn_id

    def log_undo(
        self,
        txn_id: int,
        kind: str,
        relation_name: str,
        rowid: int,
        old_values: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Journal the undo image of one physical mutation — called
        *before* the mutation happens (that is the whole point)."""
        record: dict[str, Any] = {
            "t": "undo", "x": txn_id, "k": kind,
            "rel": relation_name, "rid": rowid,
        }
        if old_values is not None:
            record["old"] = encode_row(old_values)
        self._append(record)

    def log_intent(
        self, txn_id: int, name: str, ops: Sequence[Mapping[str, Any]]
    ) -> None:
        """Durably record the planned operations of one checked update
        before any of them executes (barrier write)."""
        self._append(
            {"t": "intent", "x": txn_id, "name": name, "ops": list(ops)},
            barrier=True,
        )

    def end_txn(self, txn_id: int, status: str) -> None:
        """Write the transaction's end marker (barrier write)."""
        if status not in ("commit", "abort"):
            raise DatabaseError(f"invalid journal end status {status!r}")
        self._append({"t": "end", "x": txn_id, "s": status}, barrier=True)

    # -- reading back (recovery) ---------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """The valid prefix of the journal.

        Parsing stops at the first torn or corrupted line; everything
        before it was durably written, everything after it never
        happened as far as recovery is concerned.
        """
        out: list[dict[str, Any]] = []
        for line in self._lines:
            record = _unframe(line)
            if record is None:
                break
            out.append(record)
        return out

    def incomplete_txns(self) -> dict[int, list[dict[str, Any]]]:
        """Transactions with a ``begin`` but no ``end`` in the valid
        prefix, mapped to their records in append order."""
        open_txns: dict[int, list[dict[str, Any]]] = {}
        for record in self.records():
            kind = record.get("t")
            txn_id = record.get("x")
            if kind == "begin":
                open_txns[txn_id] = []
            elif kind == "end":
                open_txns.pop(txn_id, None)
            elif txn_id in open_txns:
                open_txns[txn_id].append(record)
        return open_txns

    def pending_intents(self) -> list[dict[str, Any]]:
        """Intent records of incomplete transactions, in journal order.

        These are updates whose plan was durably decided but whose
        apply never finished — the ``replay`` half of "replay or roll
        back".
        """
        intents: list[dict[str, Any]] = []
        for records in self.incomplete_txns().values():
            intents.extend(r for r in records if r.get("t") == "intent")
        return intents

    # -- maintenance ---------------------------------------------------------

    def checkpoint(self) -> int:
        """Drop the journal's history (every recorded txn is resolved).

        Called after a successful commit/abort/recovery; returns the
        number of lines discarded.
        """
        dropped = len(self._lines)
        self._lines.clear()
        if self.path is not None:
            self.path.write_text("")
        return dropped

    def tear_tail(self, keep_chars: int = 10) -> None:
        """Simulate a torn final write: truncate the last line mid-record."""
        if not self._lines:
            return
        self._lines[-1] = self._lines[-1][:keep_chars]
        if self.path is not None:
            self.path.write_text("\n".join(self._lines) + "\n")

    def __len__(self) -> int:
        return len(self._lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.path) if self.path else "memory"
        return f"<WriteAheadLog {where}, {len(self._lines)} line(s)>"
