"""Integrity constraints of the relational schema.

The paper's Section 3.1 splits constraints into *local* (affect one tuple
of one relation: domain, NOT NULL, CHECK) and *global* (span relations or
tuples: PRIMARY KEY, UNIQUE, FOREIGN KEY).  That classification drives
which U-Filter step consumes each constraint: Step 1 (validation) uses
local constraints, Step 2 (STAR) uses the global ones.

Foreign keys carry a *delete policy*.  The paper's closure definition in
Section 5.1.2 assumes ``CASCADE`` but explicitly notes that other
policies (the PSD domain of Section 7.3 uses ``SET NULL``) only change
the base-ASG closure; we support CASCADE, SET NULL and RESTRICT.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from .expr import Expr

__all__ = [
    "DeletePolicy",
    "Constraint",
    "NotNull",
    "Check",
    "Unique",
    "PrimaryKey",
    "ForeignKey",
]


class DeletePolicy(enum.Enum):
    """What happens to referencing tuples when a referenced tuple dies."""

    CASCADE = "cascade"
    SET_NULL = "set null"
    RESTRICT = "restrict"

    def __str__(self) -> str:
        return self.value.upper()


class Constraint:
    """Base class; every constraint belongs to exactly one relation."""

    #: relation the constraint is declared on (set by Relation.attach)
    relation_name: str = ""

    #: True for constraints Section 3.1 calls local
    is_local: bool = False

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class NotNull(Constraint):
    """``NOT NULL`` on a single attribute (local)."""

    is_local = True

    def __init__(self, column: str) -> None:
        self.column = column

    def describe(self) -> str:
        return f"{self.column} NOT NULL"


class Check(Constraint):
    """``CHECK (expr)`` over a single tuple (local).

    The expression uses unqualified column references of the owning
    relation, e.g. ``price > 0.00``.
    """

    is_local = True

    def __init__(self, expression: Expr, name: Optional[str] = None) -> None:
        self.expression = expression
        self.name = name

    def describe(self) -> str:
        return f"CHECK ({self.expression.to_sql()})"


class Unique(Constraint):
    """``UNIQUE`` over one or more attributes (global)."""

    def __init__(self, columns: Sequence[str], name: Optional[str] = None) -> None:
        if not columns:
            raise ValueError("UNIQUE constraint needs at least one column")
        self.columns = tuple(columns)
        self.name = name

    def describe(self) -> str:
        return f"UNIQUE ({', '.join(self.columns)})"


class PrimaryKey(Unique):
    """``PRIMARY KEY`` — unique plus implied NOT NULL on every column."""

    def describe(self) -> str:
        return f"PRIMARY KEY ({', '.join(self.columns)})"


class ForeignKey(Constraint):
    """``FOREIGN KEY (cols) REFERENCES ref_relation (ref_cols)`` (global)."""

    def __init__(
        self,
        columns: Sequence[str],
        ref_relation: str,
        ref_columns: Sequence[str],
        on_delete: DeletePolicy = DeletePolicy.CASCADE,
        name: Optional[str] = None,
    ) -> None:
        if len(columns) != len(ref_columns):
            raise ValueError("foreign key column lists must have equal length")
        if not columns:
            raise ValueError("foreign key needs at least one column")
        self.columns = tuple(columns)
        self.ref_relation = ref_relation
        self.ref_columns = tuple(ref_columns)
        self.on_delete = on_delete
        self.name = name

    def describe(self) -> str:
        return (
            f"FOREIGN KEY ({', '.join(self.columns)}) REFERENCES "
            f"{self.ref_relation} ({', '.join(self.ref_columns)}) "
            f"ON DELETE {self.on_delete}"
        )
