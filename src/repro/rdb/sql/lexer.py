"""Tokenizer for the SQL subset.

Handles identifiers, keywords (case-insensitive), string literals with
doubled-quote escaping, numeric literals, punctuation and the multi-char
operators ``<=``, ``>=``, ``<>``, ``!=``.  Comments (``-- ...`` to end
of line) are skipped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from ...errors import SQLSyntaxError

__all__ = ["TokenKind", "Token", "tokenize", "KEYWORDS"]


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "IS", "NULL",
    "INSERT", "INTO", "VALUES", "DELETE", "UPDATE", "SET", "AS",
    "CREATE", "TABLE", "CONSTRAINT", "CONSTRAINTS", "PRIMARY", "KEY",
    "FOREIGN", "REFERENCES", "UNIQUE", "CHECK", "ON", "CASCADE",
    "RESTRICT", "ROWID", "DISTINCT", "LEFT", "JOIN", "VIEW",
}

_PUNCT = {"(", ")", ",", ";", ".", "*", "-", "+"}
_OPERATOR_CHARS = {"=", "<", ">", "!"}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value == word.upper()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.value!r})"


def tokenize(text: str) -> list[Token]:
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            newline = text.find("\n", i)
            i = n if newline == -1 else newline + 1
            continue
        if ch == "'" or ch == '"':
            quote = ch
            j = i + 1
            pieces = []
            while True:
                if j >= n:
                    raise SQLSyntaxError(f"unterminated string at offset {i}")
                if text[j] == quote:
                    if j + 1 < n and text[j + 1] == quote:  # doubled quote
                        pieces.append(quote)
                        j += 2
                        continue
                    break
                pieces.append(text[j])
                j += 1
            yield Token(TokenKind.STRING, "".join(pieces), i)
            i = j + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # a dot not followed by a digit is punctuation (r.col)
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            yield Token(TokenKind.NUMBER, text[i:j], i)
            i = j
            continue
        if ch.isalpha() or ch == "_" or ch == "$":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_$"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token(TokenKind.KEYWORD, upper, i)
            else:
                yield Token(TokenKind.IDENT, word, i)
            i = j
            continue
        if ch in _OPERATOR_CHARS:
            two = text[i:i + 2]
            if two in ("<=", ">=", "<>", "!="):
                yield Token(TokenKind.OPERATOR, two, i)
                i += 2
            elif ch in ("=", "<", ">"):
                yield Token(TokenKind.OPERATOR, ch, i)
                i += 1
            else:
                raise SQLSyntaxError(f"unexpected character {ch!r} at offset {i}")
            continue
        if ch in _PUNCT:
            yield Token(TokenKind.PUNCT, ch, i)
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r} at offset {i}")
    yield Token(TokenKind.EOF, "", n)
