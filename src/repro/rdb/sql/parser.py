"""Recursive-descent parser for the SQL subset.

Accepted statements::

    SELECT [DISTINCT] * | ROWID | col[, col...] FROM rel [alias], ... [WHERE expr]
    INSERT INTO rel [(cols)] VALUES [(] literal, ... [)]
    DELETE FROM rel [WHERE expr]
    UPDATE rel SET col = literal, ... [WHERE expr]
    CREATE TABLE rel (coldefs and table constraints)

Expressions support comparisons, AND/OR/NOT, IS [NOT] NULL and
``IN (SELECT ...)``.  The paper's slightly informal DDL spellings
(``CONSTRAINTS BookPK PRIMARYKEY (...)``, ``FOREIGNKEY``) are accepted
alongside standard SQL.
"""

from __future__ import annotations

from typing import Any, Optional

from ...errors import SQLSyntaxError
from ..expr import And, ColumnRef, Comparison, Expr, IsNull, Literal, Not, Or
from ..plan import FromItem, OutputColumn
from .ast import (
    ColumnDef,
    CreateTableStatement,
    DeleteStatement,
    InSelect,
    InsertStatement,
    SelectStatement,
    Statement,
    TableConstraintDef,
    UpdateStatement,
)
from .lexer import Token, TokenKind, tokenize

__all__ = ["parse_statement", "parse_script", "parse_expression"]


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind is not TokenKind.EOF:
            self.position += 1
        return token

    def error(self, message: str) -> SQLSyntaxError:
        token = self.peek()
        return SQLSyntaxError(f"{message} (at {token.value!r}, offset {token.position})")

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            raise self.error(f"expected {word}")
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def expect_punct(self, char: str) -> Token:
        token = self.peek()
        if token.kind is not TokenKind.PUNCT or token.value != char:
            raise self.error(f"expected {char!r}")
        return self.advance()

    def accept_punct(self, char: str) -> bool:
        token = self.peek()
        if token.kind is TokenKind.PUNCT and token.value == char:
            self.advance()
            return True
        return False

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind is not TokenKind.IDENT:
            raise self.error("expected identifier")
        return self.advance().value

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self.peek()
        if token.is_keyword("SELECT"):
            return self.parse_select()
        if token.is_keyword("INSERT"):
            return self.parse_insert()
        if token.is_keyword("DELETE"):
            return self.parse_delete()
        if token.is_keyword("UPDATE"):
            return self.parse_update()
        if token.is_keyword("CREATE"):
            return self.parse_create_table()
        raise self.error("expected a statement")

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        select_rowids = False
        columns: Optional[list[OutputColumn]] = None
        if self.accept_punct("*"):
            columns = None
        elif self.peek().is_keyword("ROWID"):
            self.advance()
            select_rowids = True
        else:
            columns = [self.parse_output_column()]
            while self.accept_punct(","):
                columns.append(self.parse_output_column())
        self.expect_keyword("FROM")
        from_items = [self.parse_from_item()]
        while self.accept_punct(","):
            from_items.append(self.parse_from_item())
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return SelectStatement(
            from_items=from_items,
            columns=columns,
            where=where,
            select_rowids=select_rowids,
            distinct=distinct,
        )

    def parse_output_column(self) -> OutputColumn:
        first = self.expect_ident()
        qualifier: Optional[str] = None
        column = first
        if self.accept_punct("."):
            qualifier = first
            column = self.expect_ident()
        label: Optional[str] = None
        if self.accept_keyword("AS"):
            label = self.expect_ident()
        return OutputColumn(column=column, qualifier=qualifier, label=label)

    def parse_from_item(self) -> FromItem:
        relation = self.expect_ident()
        alias: Optional[str] = None
        if self.peek().kind is TokenKind.IDENT:
            alias = self.expect_ident()
        return FromItem(relation_name=relation, alias=alias)

    def parse_insert(self) -> InsertStatement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        relation = self.expect_ident()
        columns: Optional[list[str]] = None
        if self.accept_punct("("):
            columns = [self.expect_ident()]
            while self.accept_punct(","):
                columns.append(self.expect_ident())
            self.expect_punct(")")
        self.expect_keyword("VALUES")
        parenthesized = self.accept_punct("(")
        values = [self.parse_literal_value()]
        while self.accept_punct(","):
            values.append(self.parse_literal_value())
        if parenthesized:
            self.expect_punct(")")
        return InsertStatement(relation_name=relation, values=values, columns=columns)

    def parse_delete(self) -> DeleteStatement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        relation = self.expect_ident()
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return DeleteStatement(relation_name=relation, where=where)

    def parse_update(self) -> UpdateStatement:
        self.expect_keyword("UPDATE")
        relation = self.expect_ident()
        self.expect_keyword("SET")
        assignments: dict[str, Any] = {}
        while True:
            column = self.expect_ident()
            token = self.peek()
            if token.kind is not TokenKind.OPERATOR or token.value != "=":
                raise self.error("expected = in SET clause")
            self.advance()
            assignments[column] = self.parse_literal_value()
            if not self.accept_punct(","):
                break
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return UpdateStatement(
            relation_name=relation, assignments=assignments, where=where
        )

    # -- CREATE TABLE ---------------------------------------------------------

    def parse_create_table(self) -> CreateTableStatement:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        relation = self.expect_ident()
        self.expect_punct("(")
        columns: list[ColumnDef] = []
        constraints: list[TableConstraintDef] = []
        while True:
            if self._at_table_constraint():
                constraints.append(self.parse_table_constraint())
            else:
                columns.append(self.parse_column_def())
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return CreateTableStatement(
            relation_name=relation, columns=columns, constraints=constraints
        )

    def _at_table_constraint(self) -> bool:
        token = self.peek()
        if token.kind is TokenKind.KEYWORD and token.value in (
            "CONSTRAINT", "CONSTRAINTS", "PRIMARY", "FOREIGN", "UNIQUE", "CHECK",
        ):
            return True
        if token.kind is TokenKind.IDENT and token.value.upper() in (
            "PRIMARYKEY", "FOREIGNKEY",
        ):
            return True
        return False

    def parse_table_constraint(self) -> TableConstraintDef:
        name: Optional[str] = None
        if self.accept_keyword("CONSTRAINT") or self.accept_keyword("CONSTRAINTS"):
            name = self.expect_ident()
        token = self.peek()
        if token.is_keyword("PRIMARY") or (
            token.kind is TokenKind.IDENT and token.value.upper() == "PRIMARYKEY"
        ):
            if token.is_keyword("PRIMARY"):
                self.advance()
                self.expect_keyword("KEY")
            else:
                self.advance()
            columns = self.parse_column_name_list()
            return TableConstraintDef(kind="primary key", columns=columns, name=name)
        if token.is_keyword("FOREIGN") or (
            token.kind is TokenKind.IDENT and token.value.upper() == "FOREIGNKEY"
        ):
            if token.is_keyword("FOREIGN"):
                self.advance()
                self.expect_keyword("KEY")
            else:
                self.advance()
            columns = self.parse_column_name_list()
            self.expect_keyword("REFERENCES")
            ref_relation = self.expect_ident()
            ref_columns = self.parse_column_name_list()
            on_delete: Optional[str] = None
            if self.accept_keyword("ON"):
                self.expect_keyword("DELETE")
                if self.accept_keyword("CASCADE"):
                    on_delete = "cascade"
                elif self.accept_keyword("SET"):
                    self.expect_keyword("NULL")
                    on_delete = "set null"
                elif self.accept_keyword("RESTRICT"):
                    on_delete = "restrict"
                else:
                    raise self.error("expected CASCADE, SET NULL or RESTRICT")
            return TableConstraintDef(
                kind="foreign key",
                columns=columns,
                ref_relation=ref_relation,
                ref_columns=ref_columns,
                on_delete=on_delete,
                name=name,
            )
        if token.is_keyword("UNIQUE"):
            self.advance()
            columns = self.parse_column_name_list()
            return TableConstraintDef(kind="unique", columns=columns, name=name)
        if token.is_keyword("CHECK"):
            self.advance()
            self.expect_punct("(")
            expression = self.parse_expression()
            self.expect_punct(")")
            return TableConstraintDef(kind="check", check=expression, name=name)
        raise self.error("expected a table constraint")

    def parse_column_name_list(self) -> tuple[str, ...]:
        self.expect_punct("(")
        columns = [self.expect_ident()]
        while self.accept_punct(","):
            columns.append(self.expect_ident())
        self.expect_punct(")")
        return tuple(columns)

    def parse_column_def(self) -> ColumnDef:
        name = self.expect_ident()
        type_name = self.expect_ident()
        if self.accept_punct("("):
            size = self.peek()
            if size.kind is not TokenKind.NUMBER:
                raise self.error("expected a size")
            self.advance()
            self.expect_punct(")")
            type_name = f"{type_name}({size.value})"
        column = ColumnDef(name=name, type_name=type_name)
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                column.not_null = True
            elif self.accept_keyword("UNIQUE"):
                column.unique = True
            elif self.accept_keyword("CHECK"):
                self.expect_punct("(")
                column.check = self.parse_expression()
                self.expect_punct(")")
            else:
                break
        return column

    # -- expressions -----------------------------------------------------------

    def parse_expression(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = And(left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.accept_keyword("NOT"):
            return Not(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expr:
        if self.accept_punct("("):
            inner = self.parse_expression()
            self.expect_punct(")")
            return inner
        operand = self.parse_operand()
        token = self.peek()
        if token.kind is TokenKind.OPERATOR:
            op = self.advance().value
            right = self.parse_operand()
            return Comparison(op, operand, right)
        if token.is_keyword("IS"):
            self.advance()
            negate = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return IsNull(operand, negate=negate)
        if token.is_keyword("IN"):
            self.advance()
            had_paren = self.accept_punct("(")
            subquery = self.parse_select()
            if had_paren:
                self.expect_punct(")")
            return InSelect(operand, subquery)
        raise self.error("expected a comparison, IS NULL or IN")

    def parse_operand(self) -> Expr:
        token = self.peek()
        if token.kind is TokenKind.PUNCT and token.value in ("-", "+"):
            sign = self.advance().value
            number = self.peek()
            if number.kind is not TokenKind.NUMBER:
                raise self.error("expected a number after unary sign")
            self.advance()
            value = _number(number.value)
            return Literal(-value if sign == "-" else value)
        if token.kind is TokenKind.STRING:
            self.advance()
            return Literal(token.value)
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return Literal(_number(token.value))
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.kind is TokenKind.IDENT:
            first = self.advance().value
            if self.accept_punct("."):
                column = self.expect_ident()
                return ColumnRef(column, first)
            return ColumnRef(first)
        raise self.error("expected a value or column reference")

    def parse_literal_value(self) -> Any:
        token = self.peek()
        if token.kind is TokenKind.PUNCT and token.value in ("-", "+"):
            sign = self.advance().value
            number = self.peek()
            if number.kind is not TokenKind.NUMBER:
                raise self.error("expected a number after unary sign")
            self.advance()
            value = _number(number.value)
            return -value if sign == "-" else value
        if token.kind is TokenKind.STRING:
            self.advance()
            return token.value
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return _number(token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return None
        raise self.error("expected a literal value")


def _number(text: str) -> Any:
    if "." in text:
        return float(text)
    return int(text)


def parse_statement(text: str) -> Statement:
    """Parse a single SQL statement (a trailing ``;`` is allowed)."""
    parser = _Parser(tokenize(text))
    statement = parser.parse_statement()
    parser.accept_punct(";")
    if parser.peek().kind is not TokenKind.EOF:
        raise parser.error("trailing input after statement")
    return statement


def parse_script(text: str) -> list[Statement]:
    """Parse ``;``-separated statements."""
    parser = _Parser(tokenize(text))
    statements = []
    while parser.peek().kind is not TokenKind.EOF:
        statements.append(parser.parse_statement())
        while parser.accept_punct(";"):
            pass
    return statements


def parse_expression(text: str) -> Expr:
    """Parse a bare boolean expression (used for CHECK constraints)."""
    parser = _Parser(tokenize(text))
    expression = parser.parse_expression()
    if parser.peek().kind is not TokenKind.EOF:
        raise parser.error("trailing input after expression")
    return expression
