"""Textual SQL subset: lexer, AST, parser and executor.

U-Filter's probe queries (PQ1–PQ4) and translated updates (U1–U3) are
plain SQL strings in the paper; this package lets the reproduction
round-trip the same strings through a real parser and executor so the
listings in EXPERIMENTS.md are genuinely executable.
"""

from .ast import (
    CreateTableStatement,
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .engine import SQLEngine
from .lexer import Token, TokenKind, tokenize
from .parser import parse_statement, parse_script

__all__ = [
    "CreateTableStatement",
    "DeleteStatement",
    "InsertStatement",
    "SelectStatement",
    "Statement",
    "UpdateStatement",
    "SQLEngine",
    "Token",
    "TokenKind",
    "tokenize",
    "parse_statement",
    "parse_script",
]
