"""Executor tying parsed SQL statements to a :class:`Database`.

``SQLEngine.execute`` accepts either statement objects or SQL text and
returns SELECT rows / DML row counts.  ``IN (SELECT ...)`` subqueries
are materialized before the outer statement runs (uncorrelated
subqueries only — exactly what the paper's U3/PQ4 need).
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ...errors import SchemaError, SQLSyntaxError
from ..constraints import (
    Check,
    DeletePolicy,
    ForeignKey,
    NotNull,
    PrimaryKey,
    Unique,
)
from ..database import Database
from ..expr import And, Expr, InSubquery, Not, Or
from ..plan import SelectPlan, execute_select, explain_select
from ..schema import Attribute, Relation
from .ast import (
    CreateTableStatement,
    DeleteStatement,
    InSelect,
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .parser import parse_statement

__all__ = ["SQLEngine"]

Row = dict[str, Any]


class SQLEngine:
    """Stateful façade executing SQL against one database instance."""

    def __init__(self, db: Database) -> None:
        self.db = db
        #: statements executed, for benchmark reporting
        self.statements_executed = 0

    # ------------------------------------------------------------------

    def execute(self, statement: Union[str, Statement]) -> Any:
        """Execute one statement.

        Returns a list of rows for SELECT, an affected-row count for
        INSERT/DELETE/UPDATE, and ``None`` for CREATE TABLE.
        """
        if isinstance(statement, str):
            statement = parse_statement(statement)
        self.statements_executed += 1
        if isinstance(statement, SelectStatement):
            return self._execute_select(statement)
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement)
        if isinstance(statement, UpdateStatement):
            return self._execute_update(statement)
        if isinstance(statement, CreateTableStatement):
            self._execute_create(statement)
            return None
        raise SQLSyntaxError(f"cannot execute {type(statement).__name__}")

    def query(self, text: str) -> list[Row]:
        """Execute a SELECT and return its rows."""
        result = self.execute(text)
        if not isinstance(result, list):
            raise SQLSyntaxError("query() requires a SELECT statement")
        return result

    # ------------------------------------------------------------------

    def _execute_select(self, statement: SelectStatement) -> list[Row]:
        # DISTINCT is part of the plan now (a Distinct operator above
        # the projection), so both executors — compiled and the
        # interpreted oracle — apply the same dedup rule
        rows = execute_select(self.db, self._plan_for(statement))
        return rows

    def _plan_for(self, statement: SelectStatement) -> SelectPlan:
        where = self._resolve_subqueries(statement.where)
        return SelectPlan(
            from_items=statement.from_items,
            columns=statement.columns,
            where=where,
            select_rowids=statement.select_rowids,
            distinct=statement.distinct,
        )

    def explain(self, statement: Union[str, Statement]) -> str:
        """EXPLAIN: the physical operator tree a SELECT lowers to.

        Returns the indented plan rendering (per-node row estimates
        included) without executing the query — though ``IN (SELECT
        ...)`` subqueries are still materialized, since the outer plan
        shape depends on their result.
        """
        if isinstance(statement, str):
            statement = parse_statement(statement)
        if not isinstance(statement, SelectStatement):
            raise SQLSyntaxError("explain() requires a SELECT statement")
        return explain_select(self.db, self._plan_for(statement))

    def _resolve_subqueries(self, expression: Optional[Expr]) -> Optional[Expr]:
        if expression is None:
            return None
        if isinstance(expression, InSelect):
            inner_rows = self._execute_select(expression.subquery)
            values = []
            for row in inner_rows:
                if len(row) != 1:
                    raise SQLSyntaxError(
                        "IN subquery must produce a single column"
                    )
                values.append(next(iter(row.values())))
            return InSubquery(
                expression.operand,
                values,
                expression.to_sql().split(" IN (", 1)[1].rstrip(")"),
            )
        if isinstance(expression, And):
            return And(
                self._resolve_subqueries(expression.left),
                self._resolve_subqueries(expression.right),
            )
        if isinstance(expression, Or):
            return Or(
                self._resolve_subqueries(expression.left),
                self._resolve_subqueries(expression.right),
            )
        if isinstance(expression, Not):
            return Not(self._resolve_subqueries(expression.operand))
        return expression

    def _execute_insert(self, statement: InsertStatement) -> int:
        relation = self.db.relation(statement.relation_name)
        if statement.columns is None:
            names = relation.attribute_names
            if len(statement.values) != len(names):
                raise SQLSyntaxError(
                    f"INSERT into {relation.name} expects {len(names)} values, "
                    f"got {len(statement.values)}"
                )
            values = dict(zip(names, statement.values))
        else:
            if len(statement.columns) != len(statement.values):
                raise SQLSyntaxError("INSERT column/value count mismatch")
            values = dict(zip(statement.columns, statement.values))
        self.db.insert(statement.relation_name, values)
        return 1

    def _execute_delete(self, statement: DeleteStatement) -> int:
        where = self._resolve_subqueries(statement.where)
        return self.db.delete_where(statement.relation_name, where)

    def _execute_update(self, statement: UpdateStatement) -> int:
        where = self._resolve_subqueries(statement.where)
        return self.db.update_where(
            statement.relation_name, where, statement.assignments
        )

    def _execute_create(self, statement: CreateTableStatement) -> None:
        attributes = [
            Attribute(column.name, column.type_name) for column in statement.columns
        ]
        relation = Relation(statement.relation_name, attributes)
        for column in statement.columns:
            if column.not_null:
                relation.add_constraint(NotNull(column.name))
            if column.unique:
                relation.add_constraint(Unique((column.name,)))
            if column.check is not None:
                relation.add_constraint(Check(column.check))
        for definition in statement.constraints:
            if definition.kind == "primary key":
                relation.add_constraint(
                    PrimaryKey(definition.columns, name=definition.name)
                )
            elif definition.kind == "unique":
                relation.add_constraint(
                    Unique(definition.columns, name=definition.name)
                )
            elif definition.kind == "check":
                assert definition.check is not None
                relation.add_constraint(Check(definition.check, name=definition.name))
            elif definition.kind == "foreign key":
                policy = DeletePolicy.CASCADE
                if definition.on_delete == "set null":
                    policy = DeletePolicy.SET_NULL
                elif definition.on_delete == "restrict":
                    policy = DeletePolicy.RESTRICT
                assert definition.ref_relation is not None
                relation.add_constraint(
                    ForeignKey(
                        definition.columns,
                        definition.ref_relation,
                        definition.ref_columns,
                        on_delete=policy,
                        name=definition.name,
                    )
                )
            else:  # pragma: no cover - parser only emits the kinds above
                raise SchemaError(f"unknown constraint kind {definition.kind!r}")
        self.db.add_relation(relation)
