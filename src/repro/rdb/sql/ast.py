"""Statement-level AST for the SQL subset.

Expressions reuse :mod:`repro.rdb.expr`; this module only adds the
statement shells (SELECT / INSERT / DELETE / UPDATE / CREATE TABLE) plus
an unresolved ``IN (SELECT ...)`` placeholder the engine materializes at
execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..expr import Expr
from ..plan import FromItem, OutputColumn

__all__ = [
    "Statement",
    "SelectStatement",
    "InsertStatement",
    "DeleteStatement",
    "UpdateStatement",
    "ColumnDef",
    "TableConstraintDef",
    "CreateTableStatement",
    "InSelect",
]


class Statement:
    """Base class of executable statements."""


@dataclass
class SelectStatement(Statement):
    from_items: list[FromItem]
    columns: Optional[list[OutputColumn]]  # None = SELECT *
    where: Optional[Expr] = None
    select_rowids: bool = False
    distinct: bool = False


class InSelect(Expr):
    """Unresolved ``expr IN (SELECT ...)``.

    The parser cannot evaluate the subquery; the engine rewrites this
    node into :class:`repro.rdb.expr.InSubquery` with materialized
    values before evaluation.
    """

    def __init__(self, operand: Expr, subquery: SelectStatement) -> None:
        self.operand = operand
        self.subquery = subquery

    def eval(self, env: Any) -> Any:  # pragma: no cover - engine resolves first
        raise NotImplementedError("InSelect must be resolved by the engine")

    def to_sql(self) -> str:
        sub = _select_to_sql(self.subquery)
        return f"{self.operand.to_sql()} IN ({sub})"

    def _collect_columns(self, out: set) -> None:
        self.operand._collect_columns(out)


def _select_to_sql(statement: SelectStatement) -> str:
    from ..plan import SelectPlan

    plan = SelectPlan(
        from_items=statement.from_items,
        columns=statement.columns,
        where=statement.where,
        select_rowids=statement.select_rowids,
        distinct=statement.distinct,
    )
    return plan.to_sql()


@dataclass
class InsertStatement(Statement):
    relation_name: str
    values: list[Any]
    columns: Optional[list[str]] = None  # None = positional over all columns


@dataclass
class DeleteStatement(Statement):
    relation_name: str
    where: Optional[Expr] = None


@dataclass
class UpdateStatement(Statement):
    relation_name: str
    assignments: dict[str, Any] = field(default_factory=dict)
    where: Optional[Expr] = None


@dataclass
class ColumnDef:
    name: str
    type_name: str
    not_null: bool = False
    unique: bool = False
    check: Optional[Expr] = None


@dataclass
class TableConstraintDef:
    kind: str  # "primary key" | "foreign key" | "unique" | "check"
    columns: tuple[str, ...] = ()
    ref_relation: Optional[str] = None
    ref_columns: tuple[str, ...] = ()
    on_delete: Optional[str] = None
    check: Optional[Expr] = None
    name: Optional[str] = None


@dataclass
class CreateTableStatement(Statement):
    relation_name: str
    columns: list[ColumnDef]
    constraints: list[TableConstraintDef]
