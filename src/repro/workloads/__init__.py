"""Paper workloads: the books running example, TPC-H-like benchmark
schema, the W3C use-case suite (Fig. 12) and the PSD bio scenario."""

from . import books

__all__ = ["books"]


def __getattr__(name):
    if name in ("tpch", "w3c_usecases", "psd"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module 'repro.workloads' has no attribute {name!r}")
