"""Paper workloads: the books running example, TPC-H-like benchmark
schema, the W3C use-case suite (Fig. 12), the PSD bio scenario and the
generator-backed random corpus."""

from . import books

__all__ = ["books", "chains"]


def __getattr__(name):
    if name in ("chains", "tpch", "w3c_usecases", "psd", "generated"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module 'repro.workloads' has no attribute {name!r}")
