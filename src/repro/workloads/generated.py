"""The generator-backed corpus: seeded random scenarios as a workload.

The other workloads are fixed listings from the paper; this one is a
window onto :mod:`repro.core.scenario_gen` — the same schema/view/
update shapes, drawn deterministically from seeds, packaged with the
``build_*``/``*_view_query``/``*_updates`` conventions the rest of the
suite uses.  ``DEFAULT_SEED`` pins the scenario every helper returns
by default, so tests and demos referencing "the generated workload"
all see the same world; pass another seed for another world.
"""

from __future__ import annotations

from ..core.scenario_gen import (
    RunSummary,
    Scenario,
    generate_scenario,
    run_many,
    _build_db,
)
from ..rdb import Database
from ..xquery import ViewQuery, ViewUpdate, parse_view_query, parse_view_update

__all__ = [
    "DEFAULT_SEED",
    "scenario",
    "build_generated_database",
    "generated_view_query",
    "generated_updates",
    "audit",
]

#: seed of the corpus' canonical scenario (depth-3 chain, 4 updates)
DEFAULT_SEED = 307


def scenario(seed: int = DEFAULT_SEED) -> Scenario:
    """The generated scenario for *seed* (schema, data, view, updates)."""
    return generate_scenario(seed)


def build_generated_database(seed: int = DEFAULT_SEED) -> Database:
    """A loaded database for the scenario drawn from *seed*."""
    return _build_db(generate_scenario(seed))


def generated_view_query(seed: int = DEFAULT_SEED) -> ViewQuery:
    """The parsed view definition of the scenario drawn from *seed*."""
    return parse_view_query(generate_scenario(seed).view_text)


def generated_updates(seed: int = DEFAULT_SEED) -> dict[str, ViewUpdate]:
    """The scenario's updates parsed, keyed by their generated names."""
    return {
        name: parse_view_update(text, name=name)
        for name, text in generate_scenario(seed).updates
    }


def audit(scenarios: int = 50, seed: int = 0) -> RunSummary:
    """Round-trip *scenarios* seeded worlds; see ``repro qa`` for the CLI."""
    return run_many(scenarios, seed=seed)
