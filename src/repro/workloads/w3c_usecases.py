"""The W3C XML Query use-case suite behind the Fig. 12 audit.

Section 7.1 evaluates the expressiveness of the view-ASG model against
the W3C use cases: XMP (experiences and exemplars), TREE (the recursive
document case) and R (the relational/auction case).  Fig. 12 reports
which queries the model can express and, for the excluded ones, which
construct blocks them (``Distinct()``, ``Count()``, ``max()``, ...).

The W3C queries are written against XML documents; here each use case
gets a relational backing schema and the queries are rendered in the
FLWR subset of :mod:`repro.xquery` — with the offending construct kept
wherever the original query needs one, so the ASG generator rejects it
for the same reason the paper lists.

``run_audit()`` reproduces the Included/Reason table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rdb import Database, Schema, SQLEngine, parse_script
from ..core.asg_builder import audit_view_query

__all__ = [
    "UseCase",
    "XMP_QUERIES",
    "TREE_QUERIES",
    "R_QUERIES",
    "all_queries",
    "build_usecase_schemas",
    "run_audit",
    "PAPER_FIG12",
]


@dataclass(frozen=True)
class UseCase:
    suite: str          # XMP / TREE / R
    name: str           # Q1..Q18
    query: str

    @property
    def qualified_name(self) -> str:
        return f"{self.suite}-{self.name}"


# ---------------------------------------------------------------------------
# backing schemas
# ---------------------------------------------------------------------------

_XMP_DDL = """
CREATE TABLE publisher(
    pubid VARCHAR2(10), pubname VARCHAR2(100) NOT NULL,
    CONSTRAINT XmpPubPK PRIMARY KEY (pubid));
CREATE TABLE book(
    bookid VARCHAR2(20), title VARCHAR2(100) NOT NULL,
    pubid VARCHAR2(10), price DOUBLE, year INTEGER,
    CONSTRAINT XmpBookPK PRIMARY KEY (bookid),
    FOREIGN KEY (pubid) REFERENCES publisher (pubid));
CREATE TABLE author(
    authorid VARCHAR2(10), bookid VARCHAR2(20),
    last VARCHAR2(40) NOT NULL, first VARCHAR2(40),
    CONSTRAINT XmpAuthorPK PRIMARY KEY (authorid),
    FOREIGN KEY (bookid) REFERENCES book (bookid));
"""

_TREE_DDL = """
CREATE TABLE book(
    bookid VARCHAR2(20), title VARCHAR2(100) NOT NULL,
    CONSTRAINT TreeBookPK PRIMARY KEY (bookid));
CREATE TABLE section(
    sectionid VARCHAR2(20), bookid VARCHAR2(20),
    title VARCHAR2(100) NOT NULL, figcount INTEGER,
    CONSTRAINT TreeSectionPK PRIMARY KEY (sectionid),
    FOREIGN KEY (bookid) REFERENCES book (bookid));
"""

_R_DDL = """
CREATE TABLE users(
    userid VARCHAR2(10), name VARCHAR2(60) NOT NULL, rating VARCHAR2(1),
    CONSTRAINT RUsersPK PRIMARY KEY (userid));
CREATE TABLE items(
    itemno VARCHAR2(10), description VARCHAR2(100) NOT NULL,
    offered_by VARCHAR2(10), reserve_price DOUBLE, ends INTEGER,
    CONSTRAINT RItemsPK PRIMARY KEY (itemno),
    FOREIGN KEY (offered_by) REFERENCES users (userid));
CREATE TABLE bids(
    bidid VARCHAR2(10), userid VARCHAR2(10), itemno VARCHAR2(10),
    bid DOUBLE, bid_date INTEGER,
    CONSTRAINT RBidsPK PRIMARY KEY (bidid),
    FOREIGN KEY (userid) REFERENCES users (userid),
    FOREIGN KEY (itemno) REFERENCES items (itemno));
"""


def build_usecase_schemas() -> dict[str, Schema]:
    """One relational schema per suite."""
    schemas: dict[str, Schema] = {}
    for suite, ddl in (("XMP", _XMP_DDL), ("TREE", _TREE_DDL), ("R", _R_DDL)):
        db = Database(Schema())
        engine = SQLEngine(db)
        for statement in parse_script(ddl):
            engine.execute(statement)
        schemas[suite] = db.schema
    return schemas


# ---------------------------------------------------------------------------
# XMP — experiences and exemplars
# ---------------------------------------------------------------------------

XMP_QUERIES: list[UseCase] = [
    # Q1: books published by a given publisher after 1991 (expressible)
    UseCase("XMP", "Q1", """
<bib>
FOR $b IN document("default.xml")/book/row
WHERE $b/year > 1991
RETURN { <book> $b/title, $b/year </book> }
</bib>
"""),
    # Q2: flat list of title-author pairs (expressible)
    UseCase("XMP", "Q2", """
<results>
FOR $b IN document("default.xml")/book/row,
    $a IN document("default.xml")/author/row
WHERE $a/bookid = $b/bookid
RETURN { <result> $b/title, <author> $a/last, $a/first </author> </result> }
</results>
"""),
    # Q3: titles with all their authors nested (expressible)
    UseCase("XMP", "Q3", """
<results>
FOR $b IN document("default.xml")/book/row
RETURN {
    <result>
        $b/title,
        FOR $a IN document("default.xml")/author/row
        WHERE $a/bookid = $b/bookid
        RETURN { <author> $a/last, $a/first </author> }
    </result> }
</results>
"""),
    # Q4: authors with the DISTINCT titles they wrote (excluded)
    UseCase("XMP", "Q4", """
<results>
FOR $a IN document("default.xml")/author/row
RETURN {
    <result>
        $a/last,
        distinct($a/bookid)
    </result> }
</results>
"""),
    # Q5: title/price pairs from a priced catalogue (expressible)
    UseCase("XMP", "Q5", """
<books-with-prices>
FOR $b IN document("default.xml")/book/row
WHERE $b/price > 0.00
RETURN { <book-with-prices> $b/title, $b/price </book-with-prices> }
</books-with-prices>
"""),
    # Q6: books with more than one author — needs count() (excluded)
    UseCase("XMP", "Q6", """
<bib>
FOR $b IN document("default.xml")/book/row
WHERE count($b/bookid) > 1
RETURN { <book> $b/title </book> }
</bib>
"""),
    # Q7: cheap books sorted — we keep the selection, not the sort
    # (the original sorts; our rendition keeps it expressible as the
    # paper includes Q7 — ASGs ignore document order)
    UseCase("XMP", "Q7", """
<bib>
FOR $b IN document("default.xml")/book/row
WHERE $b/price < 100.00
RETURN { <book> $b/title, $b/price </book> }
</bib>
"""),
    # Q8: books mentioning a keyword (rendered as an equality; expressible)
    UseCase("XMP", "Q8", """
<results>
FOR $b IN document("default.xml")/book/row
WHERE $b/title = "Data on the Web"
RETURN { <book> $b/title </book> }
</results>
"""),
    # Q9: title + publisher pairs (expressible)
    UseCase("XMP", "Q9", """
<results>
FOR $b IN document("default.xml")/book/row,
    $p IN document("default.xml")/publisher/row
WHERE $b/pubid = $p/pubid
RETURN { <result> $b/title, $p/pubname </result> }
</results>
"""),
    # Q10: prices DISTINCT per title (excluded)
    UseCase("XMP", "Q10", """
<results>
FOR $b IN document("default.xml")/book/row
RETURN { <minprice> $b/title, distinct($b/price) </minprice> }
</results>
"""),
    # Q11: books paired with their (possibly absent) authors (expressible)
    UseCase("XMP", "Q11", """
<bib>
FOR $b IN document("default.xml")/book/row
RETURN {
    <book>
        $b/title,
        FOR $a IN document("default.xml")/author/row
        WHERE $a/bookid = $b/bookid
        RETURN { <author> $a/last </author> }
    </book> }
</bib>
"""),
    # Q12: pairs of books with different titles — double iteration is
    # still plain SPJ (expressible)
    UseCase("XMP", "Q12", """
<bib>
FOR $b1 IN document("default.xml")/book/row,
    $b2 IN document("default.xml")/author/row
WHERE $b1/bookid = $b2/bookid
RETURN { <book-pair> $b1/title, $b2/last </book-pair> }
</bib>
"""),
]


# ---------------------------------------------------------------------------
# TREE — the recursive document case
# ---------------------------------------------------------------------------

TREE_QUERIES: list[UseCase] = [
    # Q1: table of contents — section titles nested under their book
    UseCase("TREE", "Q1", """
<toc>
FOR $b IN document("default.xml")/book/row
RETURN {
    <book>
        $b/title,
        FOR $s IN document("default.xml")/section/row
        WHERE $s/bookid = $b/bookid
        RETURN { <section> $s/title </section> }
    </book> }
</toc>
"""),
    # Q2: flat list of all section titles (expressible)
    UseCase("TREE", "Q2", """
<all-sections>
FOR $s IN document("default.xml")/section/row
RETURN { <section> $s/title </section> }
</all-sections>
"""),
    # Q3..Q6: figure/section counting queries — all need count()
    UseCase("TREE", "Q3", """
<figcounts>
FOR $b IN document("default.xml")/book/row
RETURN { <book> $b/title, count($b/bookid) </book> }
</figcounts>
"""),
    UseCase("TREE", "Q4", """
<counts>
FOR $b IN document("default.xml")/book/row
RETURN { <book> count($b/bookid) </book> }
</counts>
"""),
    UseCase("TREE", "Q5", """
<figcounts>
FOR $s IN document("default.xml")/section/row
RETURN { <section> $s/title, count($s/figcount) </section> }
</figcounts>
"""),
    UseCase("TREE", "Q6", """
<section-counts>
FOR $b IN document("default.xml")/book/row
RETURN { <book> $b/title, count($b/bookid) </book> }
</section-counts>
"""),
]


# ---------------------------------------------------------------------------
# R — the relational (auction) case
# ---------------------------------------------------------------------------

def _r(name: str, query: str) -> UseCase:
    return UseCase("R", name, query)


R_QUERIES: list[UseCase] = [
    # Q1: items offered by a given user (expressible)
    _r("Q1", """
<result>
FOR $u IN document("default.xml")/users/row,
    $i IN document("default.xml")/items/row
WHERE $i/offered_by = $u/userid AND $u/name = "Tom Jones"
RETURN { <item> $i/description </item> }
</result>
"""),
    # Q2: items with their HIGHEST bid — max() (excluded)
    _r("Q2", """
<result>
FOR $i IN document("default.xml")/items/row
RETURN { <item> $i/description, max($i/reserve_price) </item> }
</result>
"""),
    # Q3: items with bids nested (expressible)
    _r("Q3", """
<result>
FOR $i IN document("default.xml")/items/row
RETURN {
    <item>
        $i/description,
        FOR $b IN document("default.xml")/bids/row
        WHERE $b/itemno = $i/itemno
        RETURN { <bid> $b/bid </bid> }
    </item> }
</result>
"""),
    # Q4: bidder/item pairs (expressible)
    _r("Q4", """
<result>
FOR $b IN document("default.xml")/bids/row,
    $u IN document("default.xml")/users/row
WHERE $b/userid = $u/userid
RETURN { <bid> $u/name, $b/bid </bid> }
</result>
"""),
    # Q5: ratings summary — avg() (excluded)
    _r("Q5", """
<result>
FOR $i IN document("default.xml")/items/row
RETURN { <item> $i/description, avg($i/reserve_price) </item> }
</result>
"""),
]

#: Q6..Q15 in the original suite are aggregation/report queries — the
#: paper excludes all of them for max()/avg()/count(); one rendition
#: per aggregate keeps the audit honest without ten near-copies
for _number, _fn in (
    ("Q6", "count"), ("Q7", "max"), ("Q8", "avg"), ("Q9", "count"),
    ("Q10", "max"), ("Q11", "avg"), ("Q12", "count"), ("Q13", "max"),
    ("Q14", "avg"), ("Q15", "count"),
):
    R_QUERIES.append(
        _r(_number, f"""
<result>
FOR $i IN document("default.xml")/items/row
RETURN {{ <item> $i/description, {_fn}($i/reserve_price) </item> }}
</result>
"""),
    )

R_QUERIES.extend([
    # Q16: items a user both offers and bids on (expressible join)
    _r("Q16", """
<result>
FOR $u IN document("default.xml")/users/row,
    $i IN document("default.xml")/items/row,
    $b IN document("default.xml")/bids/row
WHERE $i/offered_by = $u/userid AND $b/itemno = $i/itemno
RETURN { <match> $u/name, $i/description, $b/bid </match> }
</result>
"""),
    # Q17: expensive items (expressible selection)
    _r("Q17", """
<result>
FOR $i IN document("default.xml")/items/row
WHERE $i/reserve_price > 1000.00
RETURN { <item> $i/description, $i/reserve_price </item> }
</result>
"""),
    # Q18: distinct bidders — Distinct() (excluded)
    _r("Q18", """
<result>
FOR $b IN document("default.xml")/bids/row
RETURN { <bidder> distinct($b/userid) </bidder> }
</result>
"""),
])


def all_queries() -> list[UseCase]:
    return [*XMP_QUERIES, *TREE_QUERIES, *R_QUERIES]


#: the paper's Fig. 12, normalized to per-query expectations
PAPER_FIG12: dict[str, bool] = {}
for _q in ("Q1", "Q2", "Q3", "Q5", "Q7", "Q8", "Q9", "Q11", "Q12"):
    PAPER_FIG12[f"XMP-{_q}"] = True
for _q in ("Q4", "Q10", "Q6"):
    PAPER_FIG12[f"XMP-{_q}"] = False
PAPER_FIG12["TREE-Q1"] = True
PAPER_FIG12["TREE-Q2"] = True
for _q in ("Q3", "Q4", "Q5", "Q6"):
    PAPER_FIG12[f"TREE-{_q}"] = False
for _q in ("Q1", "Q3", "Q4", "Q16", "Q17"):
    PAPER_FIG12[f"R-{_q}"] = True
for _q in ("Q2", "Q5", "Q6", "Q7", "Q8", "Q9", "Q10", "Q11", "Q12",
           "Q13", "Q14", "Q15", "Q18"):
    PAPER_FIG12[f"R-{_q}"] = False


def run_audit() -> list[tuple[str, bool, str]]:
    """Regenerate Fig. 12: (query, included, reason) per use case."""
    schemas = build_usecase_schemas()
    rows: list[tuple[str, bool, str]] = []
    for case in all_queries():
        included, reason = audit_view_query(case.query, schemas[case.suite])
        rows.append((case.qualified_name, included, reason))
    return rows
