"""A Protein Sequence Database (PSD) scenario (Section 7.3).

The paper studied PIR's Protein Sequence Database with a biologist and
observed two things that break the assumptions of earlier view-update
work:

1. views are often **not well-nested** — nesting does not follow the
   key/foreign-key direction (here: each ``<reference>`` element embeds
   its *entry*, the reverse of the FK);
2. the **delete SET NULL policy** is typical, not CASCADE.

U-Filter handles both: the ASG builder accepts arbitrary nesting, and
the base-ASG closure honours the per-FK policy (a SET NULL child does
not join its parent's deletion closure).  This module builds a
synthetic PSD-like database and view exercising exactly those paths.
"""

from __future__ import annotations

import random

from ..rdb import Database, Schema, SQLEngine, parse_script
from ..xquery import ViewQuery, ViewUpdate, parse_view_query, parse_view_update

__all__ = [
    "PSD_DDL",
    "build_psd_database",
    "psd_view",
    "delete_feature_update",
    "delete_entry_of_reference",
    "insert_feature_update",
]

PSD_DDL = """
CREATE TABLE entry(
    eid VARCHAR2(12),
    protein_name VARCHAR2(120) NOT NULL,
    organism VARCHAR2(80),
    seq_length INTEGER CHECK (seq_length > 0),
    CONSTRAINT EntryPK PRIMARY KEY (eid));

CREATE TABLE reference(
    rid VARCHAR2(12),
    eid VARCHAR2(12),
    title VARCHAR2(200) NOT NULL,
    journal VARCHAR2(80),
    CONSTRAINT ReferencePK PRIMARY KEY (rid),
    FOREIGN KEY (eid) REFERENCES entry (eid) ON DELETE SET NULL);

CREATE TABLE feature(
    fid VARCHAR2(12),
    eid VARCHAR2(12),
    ftype VARCHAR2(40) NOT NULL,
    location VARCHAR2(40),
    CONSTRAINT FeaturePK PRIMARY KEY (fid),
    FOREIGN KEY (eid) REFERENCES entry (eid) ON DELETE CASCADE);
"""

_ORGANISMS = ["H. sapiens", "M. musculus", "E. coli", "S. cerevisiae"]
_FEATURE_TYPES = ["DOMAIN", "BINDING", "ACT_SITE", "MOD_RES"]
_JOURNALS = ["J Biol Chem", "Nature", "Science", "NAR"]


def build_psd_database(entries: int = 20, seed: int = 11) -> Database:
    """A synthetic PSD-like database (deterministic per seed)."""
    rng = random.Random(seed)
    db = Database(Schema())
    engine = SQLEngine(db)
    for statement in parse_script(PSD_DDL):
        engine.execute(statement)
    reference_id = 0
    feature_id = 0
    for index in range(entries):
        eid = f"P{index:05d}"
        db.insert(
            "entry",
            {
                "eid": eid,
                "protein_name": f"Protein {index}",
                "organism": _ORGANISMS[index % len(_ORGANISMS)],
                "seq_length": rng.randint(80, 2000),
            },
        )
        for _ in range(rng.randint(1, 3)):
            db.insert(
                "reference",
                {
                    "rid": f"R{reference_id:05d}",
                    "eid": eid,
                    "title": f"Characterization of protein {index}",
                    "journal": rng.choice(_JOURNALS),
                },
            )
            reference_id += 1
        for _ in range(rng.randint(0, 4)):
            db.insert(
                "feature",
                {
                    "fid": f"F{feature_id:05d}",
                    "eid": eid,
                    "ftype": rng.choice(_FEATURE_TYPES),
                    "location": f"{rng.randint(1, 500)}..{rng.randint(501, 999)}",
                },
            )
            feature_id += 1
    return db


def psd_view() -> ViewQuery:
    """A non-well-nested PSD view.

    ``<citation>`` elements nest their *entry* inside — the reverse of
    the FK direction (reference → entry), which the well-nested views
    of prior work cannot express.  ``<protein>`` elements nest features
    along the FK as usual.
    """
    return parse_view_query(
        """
<PSDView>
FOR $e IN document("default.xml")/entry/row
RETURN {
    <protein>
        $e/eid, $e/protein_name, $e/organism,
        FOR $f IN document("default.xml")/feature/row
        WHERE $f/eid = $e/eid
        RETURN {
            <feature>
                $f/ftype, $f/location
            </feature>}
    </protein>},
FOR $r IN document("default.xml")/reference/row,
    $e2 IN document("default.xml")/entry/row
WHERE $r/eid = $e2/eid
RETURN {
    <citation>
        $r/rid, $r/title, $r/journal,
        <about>
            $e2/eid, $e2/protein_name
        </about>
    </citation>}
</PSDView>
"""
    )


def delete_feature_update(ftype: str = "DOMAIN") -> ViewUpdate:
    """Delete every feature of a protein entry (safe, translatable)."""
    return parse_view_update(
        f"""
        FOR $p IN document("PSDView.xml")/protein,
            $f IN $p/feature
        WHERE $f/ftype/text() = "{ftype}"
        UPDATE $p {{
            DELETE $f }}
        """,
        name=f"psd-delete-feature-{ftype}",
    )


def delete_entry_of_reference(rid: str) -> ViewUpdate:
    """Delete the embedded entry of a citation — untranslatable: the
    entry is republished under <protein>."""
    return parse_view_update(
        f"""
        FOR $c IN document("PSDView.xml")/citation
        WHERE $c/rid/text() = "{rid}"
        UPDATE $c {{
            DELETE $c/about }}
        """,
        name=f"psd-delete-about-{rid}",
    )


def insert_feature_update(eid: str, ftype: str = "DOMAIN") -> ViewUpdate:
    """Insert a feature under one protein (translatable)."""
    return parse_view_update(
        f"""
        FOR $p IN document("PSDView.xml")/protein
        WHERE $p/eid/text() = "{eid}"
        UPDATE $p {{
        INSERT
            <feature>
                <ftype>{ftype}</ftype>
                <location>1..99</location>
            </feature>}}
        """,
        name=f"psd-insert-feature-{eid}",
    )
