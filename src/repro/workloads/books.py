"""The paper's running example: the book database and BookView.

Reproduces Fig. 1 (relational schema + sample data), Fig. 3a (the
BookView view query) and the updates u1–u4 of Fig. 4 and u5–u13 of
Fig. 10.  The paper's listings contain small typos (an unclosed
``<bookid>`` tag in u1/u4, curly quotes); the texts below are the
obviously-intended well-formed versions.
"""

from __future__ import annotations

from ..rdb import Database, Schema, SQLEngine, parse_script
from ..xquery import ViewQuery, ViewUpdate, parse_view_query, parse_view_update

__all__ = [
    "BOOK_DDL",
    "BOOK_ROWS",
    "BOOK_VIEW_QUERY",
    "UPDATE_TEXTS",
    "build_book_schema",
    "build_book_database",
    "book_view_query",
    "book_updates",
    "update",
]

#: Fig. 1 — CREATE TABLE statements (price > 0.00 CHECK included)
BOOK_DDL = """
CREATE TABLE publisher(
    pubid VARCHAR2(10),
    pubname VARCHAR2(100) UNIQUE NOT NULL,
    CONSTRAINTS PubPK PRIMARYKEY (pubid));

CREATE TABLE book(
    bookid VARCHAR2(20),
    title VARCHAR2(100) NOT NULL,
    pubid VARCHAR2(10),
    price DOUBLE CHECK (price > 0.00),
    year DATE,
    CONSTRAINTS BookPK PRIMARYKEY (bookid),
    FOREIGNKEY (pubid) REFERENCES publisher (pubid));

CREATE TABLE review(
    bookid VARCHAR2(20),
    reviewid VARCHAR2(3),
    comment VARCHAR2(100),
    reviewer VARCHAR2(10),
    CONSTRAINTS ReviewPK PRIMARYKEY (bookid, reviewid),
    FOREIGNKEY (bookid) REFERENCES book (bookid));
"""

#: Fig. 1 — sample tuples (t1..t3 per relation)
BOOK_ROWS = {
    "publisher": [
        {"pubid": "A01", "pubname": "McGraw-Hill Inc."},
        {"pubid": "B01", "pubname": "Prentice-Hall Inc."},
        {"pubid": "A02", "pubname": "Simon & Schuster Inc."},
    ],
    "book": [
        {"bookid": "98001", "title": "TCP/IP Illustrated", "pubid": "A01",
         "price": 37.00, "year": 1997},
        {"bookid": "98002", "title": "Programming in Unix", "pubid": "A02",
         "price": 45.00, "year": 1985},
        {"bookid": "98003", "title": "Data on the Web", "pubid": "A01",
         "price": 48.00, "year": 2004},
    ],
    "review": [
        {"bookid": "98001", "reviewid": "001",
         "comment": "A good book on network.", "reviewer": "William"},
        {"bookid": "98001", "reviewid": "002",
         "comment": "Useful for advanced user.", "reviewer": "John"},
    ],
}

#: Fig. 3a — the BookView view query
BOOK_VIEW_QUERY = """
<BookView>
FOR $book IN document("default.xml")/book/row,
    $publisher IN document("default.xml")/publisher/row
WHERE ($book/pubid = $publisher/pubid)
    AND ($book/price < 50.00) AND ($book/year > 1990)
RETURN {
    <book>
        $book/bookid, $book/title, $book/price,
        <publisher>
            $publisher/pubid, $publisher/pubname
        </publisher>,
        FOR $review IN document("default.xml")/review/row
        WHERE ($book/bookid = $review/bookid)
        RETURN {
            <review>
                $review/reviewid, $review/comment
            </review>}
    </book>},
FOR $publisher IN document("default.xml")/publisher/row
RETURN {
    <publisher>
        $publisher/pubid, $publisher/pubname
    </publisher>}
</BookView>
"""

#: Fig. 4 (u1–u4) and Fig. 10 (u5–u13)
UPDATE_TEXTS: dict[str, str] = {
    # u1: invalid — empty title (NOT NULL) and price 0.00 (CHECK)
    "u1": """
        FOR $root IN document("BookView.xml")
        UPDATE $root {
        INSERT
            <book>
                <bookid>"98004"</bookid>
                <title> </title>
                <price> 0.00 </price>
                <publisher>
                    <pubid>A01</pubid>
                    <pubname>McGraw-Hill Inc.</pubname>
                </publisher>
            </book> }
    """,
    # u2: valid but untranslatable — deleting a book's publisher
    "u2": """
        FOR $root IN document("BookView.xml"),
            $book IN $root/book
        WHERE $book/bookid/text() = "98001"
        UPDATE $root {
            DELETE $book/publisher }
    """,
    # u3: insert a review into a book that is not in the view
    "u3": """
        FOR $book IN document("BookView.xml")/book
        WHERE $book/title/text() = "DB2 Universal Database"
        UPDATE $book {
        INSERT
            <review>
                <reviewid>001</reviewid>
                <comment> Easy read and useful. </comment>
            </review>}
    """,
    # u4: insert a book whose key conflicts with book.t1
    "u4": """
        FOR $root IN document("BookView.xml")
        UPDATE $root {
        INSERT
            <book>
                <bookid>"98001"</bookid>
                <title>"Operating Systems"</title>
                <price> 20.00 </price>
                <publisher>
                    <pubid>A01</pubid>
                    <pubname> McGraw-Hill Inc. </pubname>
                </publisher>
            </book> }
    """,
    # u5: invalid — predicate price > 50 contradicts the view's price < 50
    "u5": """
        FOR $book IN document("BookView.xml")/book
        WHERE $book/price/text() > 50.00
        UPDATE $book {
            DELETE $book/review }
    """,
    # u6: invalid — bookid text is NOT NULL (cardinality-1 leaf)
    "u6": """
        FOR $book IN document("BookView.xml")/book
        UPDATE $book {
            DELETE $book/bookid/text() }
    """,
    # u7: invalid — a book must have exactly one publisher (edge type 1)
    "u7": """
        FOR $root IN document("BookView.xml")
        UPDATE $root {
        INSERT
            <book>
                <bookid>"98004"</bookid>
                <title>"Operating Systems"</title>
                <price> 20.00 </price>
            </book> }
    """,
    # u8: unconditionally translatable delete of reviews
    "u8": """
        FOR $book IN document("BookView.xml")/book
        WHERE $book/price < 40.00
        UPDATE $book {
            DELETE $book/review }
    """,
    # u9: conditionally translatable — requires translation minimization
    "u9": """
        FOR $root IN document("BookView.xml"),
            $book = $root/book
        WHERE $book/price > 40.00
        UPDATE $root {
            DELETE $book }
    """,
    # u10: untranslatable — deleting the publisher kills the book too
    "u10": """
        FOR $book IN document("BookView.xml")/book
        WHERE $book/price > 40.00
        UPDATE $book {
            DELETE $book/publisher }
    """,
    # u11: book not in the view (year 1985 fails the view predicate)
    "u11": """
        FOR $book IN document("BookView.xml")/book
        WHERE $book/title/text() = "Programming in Unix"
        UPDATE $book {
            DELETE $book/review}
    """,
    # u12: book in the view but it has no reviews (zero tuples deleted)
    "u12": """
        FOR $book IN document("BookView.xml")/book
        WHERE $book/title/text() = "Data on the Web"
        UPDATE $book {
            DELETE $book/review}
    """,
    # u13: translatable insert; probe result feeds the translation (U1)
    "u13": """
        FOR $book IN document("BookView.xml")/book
        WHERE $book/title/text() = "Data on the Web"
        UPDATE $book {
        INSERT
            <review>
                <reviewid>001</reviewid>
                <comment>Easy read and useful.</comment>
            </review>}
    """,
}


def build_book_schema() -> Schema:
    """Schema of Fig. 1 (no data)."""
    db = Database(Schema())
    engine = SQLEngine(db)
    for statement in parse_script(BOOK_DDL):
        engine.execute(statement)
    return db.schema


def build_book_database() -> Database:
    """Fig. 1's database with its sample tuples loaded."""
    db = Database(Schema())
    engine = SQLEngine(db)
    for statement in parse_script(BOOK_DDL):
        engine.execute(statement)
    for relation_name in ("publisher", "book", "review"):
        db.load(relation_name, BOOK_ROWS[relation_name])
    return db


def book_view_query() -> ViewQuery:
    """The parsed BookView definition (Fig. 3a)."""
    return parse_view_query(BOOK_VIEW_QUERY)


def update(name: str) -> ViewUpdate:
    """One named update (u1..u13) parsed."""
    return parse_view_update(UPDATE_TEXTS[name], name=name)


def book_updates() -> dict[str, ViewUpdate]:
    """All of u1..u13 parsed, keyed by name."""
    return {name: update(name) for name in UPDATE_TEXTS}
