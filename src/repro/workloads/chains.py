"""The FK-chain workload: parent <- child <- grand (+ offview).

Originally a QA-test fixture, promoted to a workload module because the
streaming benchmark needs it too: the chain view has **no shared
relations** (unlike BookView's publisher), so both ``<parent>`` and
``<child>`` inserts are unconditionally translatable — the only shape
in the sample workloads that can sustain an unbounded write stream
through a long-lived session.

``STREAM_INSERT_CHILD`` targets its parent by ``pname`` on purpose:
``pname`` carries no index, so recomputing the cached context probe
scans the whole parent table — exactly the work delta maintenance
avoids.
"""

from __future__ import annotations

from ..rdb import Database, Schema, SQLEngine, parse_script

__all__ = [
    "CHAIN_DDL",
    "CHAIN_VIEW",
    "STREAM_INSERT_CHILD",
    "STREAM_INSERT_PARENT",
    "build_chain_db",
]

CHAIN_DDL = """
CREATE TABLE parent(
    pid VARCHAR2(10),
    pname VARCHAR2(20),
    CONSTRAINTS QaParPK PRIMARYKEY (pid));

CREATE TABLE child(
    cid VARCHAR2(10),
    pid VARCHAR2(10),
    cname VARCHAR2(20),
    cnum INTEGER,
    CONSTRAINTS QaChPK PRIMARYKEY (cid),
    FOREIGNKEY (pid) REFERENCES parent (pid));

CREATE TABLE grand(
    gid VARCHAR2(10),
    cid VARCHAR2(10),
    gname VARCHAR2(20),
    CONSTRAINTS QaGrPK PRIMARYKEY (gid),
    FOREIGNKEY (cid) REFERENCES child (cid));

CREATE TABLE offview(
    oid VARCHAR2(10),
    CONSTRAINTS QaOffPK PRIMARYKEY (oid));
"""

CHAIN_VIEW = """
<GenView>
FOR $p IN document("default.xml")/parent/row
RETURN {
    <parent>
        $p/pid, $p/pname,
        FOR $c IN document("default.xml")/child/row
        WHERE ($c/pid = $p/pid)
        RETURN {
            <child>
                $c/cid, $c/cname, $c/cnum,
                FOR $g IN document("default.xml")/grand/row
                WHERE ($g/cid = $c/cid)
                RETURN {
                    <grand>
                        $g/gid, $g/gname
                    </grand>}
            </child>}
    </parent>}
</GenView>
"""

#: insert a child under the parent named "a" — the reused context probe
#: reads ``parent`` filtered on the unindexed ``pname``
STREAM_INSERT_CHILD = """
    FOR $root IN document("GenView.xml"),
        $p IN $root/parent
    WHERE $p/pname/text() = "a"
    UPDATE $p {{
    INSERT
        <child>
            <cid>{cid}</cid>
            <cname>streamed</cname>
            <cnum>{num}</cnum>
        </child> }}
"""

#: insert a fresh top-level parent — the write that forces the
#: invalidate-and-recompute baseline to re-scan the parent table
STREAM_INSERT_PARENT = """
    FOR $root IN document("GenView.xml")
    UPDATE $root {{
    INSERT
        <parent>
            <pid>{pid}</pid>
            <pname>seed</pname>
        </parent> }}
"""


def build_chain_db(seed_parents: int = 0) -> Database:
    """The chain database with its two sample families loaded.

    *seed_parents* extra parents (pids ``S0000``..) pad the parent
    table so full re-scans of it have a measurable cost.
    """
    db = Database(Schema())
    engine = SQLEngine(db)
    for statement in parse_script(CHAIN_DDL):
        engine.execute(statement)
    db.load("parent", [{"pid": "P1", "pname": "a"}, {"pid": "P2", "pname": "b"}])
    db.load(
        "child",
        [
            {"cid": "C1", "pid": "P1", "cname": "c", "cnum": 1},
            {"cid": "C2", "pid": "P2", "cname": "d", "cnum": 7},
        ],
    )
    db.load("grand", [{"gid": "G1", "cid": "C1", "gname": "g"}])
    for i in range(seed_parents):
        db.insert("parent", {"pid": f"S{i:04d}", "pname": "seed"})
    return db
