"""TPC-H-like benchmark workload (Section 7.2).

The paper runs its performance experiments over the TPC-H schema
(REGION, NATION, CUSTOMER, ORDER, LINEITEM) at database sizes from 1 MB
to 500 MB, nested into four views:

* ``Vsuccess`` / ``Vlinear`` — the five relations nested linearly along
  the key/foreign-key chain (every internal node ends up
  ``clean | safe``, so updates are unconditionally translatable);
* ``Vfail(R)`` — the linear nesting plus relation ``R`` republished
  under the root, which makes deleting an ``R`` element untranslatable;
* ``Vbush`` — the relations joined "evenly": customer pairs with its
  nation/region context at the top, orders/lineitems nest below.

We substitute dbgen with a deterministic seeded generator and express
"DB size" as a scale factor over row counts (see
:func:`scale_rows`); the FK fan-out (1 region : 5 nations : many
customers : more orders : most lineitems) matches TPC-H's shape, which
is all the experiments depend on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rdb import Database, Schema, SQLEngine, parse_script
from ..xquery import ViewQuery, ViewUpdate, parse_view_query, parse_view_update

__all__ = [
    "TPCH_DDL",
    "ScaleRows",
    "scale_rows",
    "build_tpch_database",
    "v_success",
    "v_linear",
    "v_fail",
    "v_bush",
    "delete_update",
    "delete_by_key",
    "insert_lineitem_update",
    "RELATIONS",
]

RELATIONS = ("region", "nation", "customer", "orders", "lineitem")

TPCH_DDL = """
CREATE TABLE region(
    r_regionkey INTEGER,
    r_name VARCHAR2(25) NOT NULL,
    r_comment VARCHAR2(152),
    CONSTRAINT RegionPK PRIMARY KEY (r_regionkey));

CREATE TABLE nation(
    n_nationkey INTEGER,
    n_name VARCHAR2(25) NOT NULL,
    n_regionkey INTEGER,
    n_comment VARCHAR2(152),
    CONSTRAINT NationPK PRIMARY KEY (n_nationkey),
    FOREIGN KEY (n_regionkey) REFERENCES region (r_regionkey) ON DELETE CASCADE);

CREATE TABLE customer(
    c_custkey INTEGER,
    c_name VARCHAR2(25) NOT NULL,
    c_nationkey INTEGER,
    c_acctbal DOUBLE,
    CONSTRAINT CustomerPK PRIMARY KEY (c_custkey),
    FOREIGN KEY (c_nationkey) REFERENCES nation (n_nationkey) ON DELETE CASCADE);

CREATE TABLE orders(
    o_orderkey INTEGER,
    o_custkey INTEGER,
    o_totalprice DOUBLE,
    o_orderstatus VARCHAR2(1),
    CONSTRAINT OrdersPK PRIMARY KEY (o_orderkey),
    FOREIGN KEY (o_custkey) REFERENCES customer (c_custkey) ON DELETE CASCADE);

CREATE TABLE lineitem(
    l_orderkey INTEGER,
    l_linenumber INTEGER,
    l_quantity INTEGER,
    l_extendedprice DOUBLE,
    CONSTRAINT LineitemPK PRIMARY KEY (l_orderkey, l_linenumber),
    FOREIGN KEY (l_orderkey) REFERENCES orders (o_orderkey) ON DELETE CASCADE);
"""


@dataclass(frozen=True)
class ScaleRows:
    """Row counts per relation for one nominal database size."""

    megabytes: float
    regions: int
    nations: int
    customers: int
    orders: int
    lineitems_per_order: int

    @property
    def total_rows(self) -> int:
        return (
            self.regions
            + self.nations
            + self.customers
            + self.orders
            + self.orders * self.lineitems_per_order
        )


def scale_rows(megabytes: float) -> ScaleRows:
    """Map a nominal "DB size in MB" onto TPC-H-shaped row counts.

    The constants keep the TPC-H fan-out (≈1:5:30:90:270 per MB here)
    while staying laptop-friendly; the experiments only rely on the
    *relative* growth of the five relations.
    """
    customers = max(3, int(30 * megabytes))
    orders = customers * 3
    return ScaleRows(
        megabytes=megabytes,
        regions=max(2, min(5, int(megabytes) + 2)),
        nations=max(4, min(25, 5 * max(1, int(megabytes)))),
        customers=customers,
        orders=orders,
        lineitems_per_order=3,
    )


_REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]


def build_tpch_database(scale: ScaleRows, seed: int = 7) -> Database:
    """Generate a database at *scale* (deterministic per seed)."""
    rng = random.Random(seed)
    db = Database(Schema())
    engine = SQLEngine(db)
    for statement in parse_script(TPCH_DDL):
        engine.execute(statement)

    for key in range(scale.regions):
        db.insert(
            "region",
            {
                "r_regionkey": key,
                "r_name": _REGION_NAMES[key % len(_REGION_NAMES)],
                "r_comment": f"region comment {key}",
            },
        )
    for key in range(scale.nations):
        db.insert(
            "nation",
            {
                "n_nationkey": key,
                "n_name": f"NATION_{key:03d}",
                "n_regionkey": key % scale.regions,
                "n_comment": f"nation comment {key}",
            },
        )
    for key in range(scale.customers):
        db.insert(
            "customer",
            {
                "c_custkey": key,
                "c_name": f"Customer#{key:06d}",
                "c_nationkey": key % scale.nations,
                "c_acctbal": round(rng.uniform(-999.0, 9999.0), 2),
            },
        )
    order_key = 0
    for customer_key in range(scale.customers):
        for _ in range(scale.orders // scale.customers):
            db.insert(
                "orders",
                {
                    "o_orderkey": order_key,
                    "o_custkey": customer_key,
                    "o_totalprice": round(rng.uniform(100.0, 50000.0), 2),
                    "o_orderstatus": rng.choice(["O", "F", "P"]),
                },
            )
            for line in range(1, scale.lineitems_per_order + 1):
                db.insert(
                    "lineitem",
                    {
                        "l_orderkey": order_key,
                        "l_linenumber": line,
                        "l_quantity": rng.randint(1, 50),
                        "l_extendedprice": round(rng.uniform(10.0, 9000.0), 2),
                    },
                )
            order_key += 1
    return db


# ---------------------------------------------------------------------------
# views
# ---------------------------------------------------------------------------

_LINEAR_BODY = """
FOR $r IN document("default.xml")/region/row
RETURN {
    <region>
        $r/r_regionkey, $r/r_name,
        FOR $n IN document("default.xml")/nation/row
        WHERE $n/n_regionkey = $r/r_regionkey
        RETURN {
            <nation>
                $n/n_nationkey, $n/n_name,
                FOR $c IN document("default.xml")/customer/row
                WHERE $c/c_nationkey = $n/n_nationkey
                RETURN {
                    <customer>
                        $c/c_custkey, $c/c_name, $c/c_acctbal,
                        FOR $o IN document("default.xml")/orders/row
                        WHERE $o/o_custkey = $c/c_custkey
                        RETURN {
                            <order>
                                $o/o_orderkey, $o/o_totalprice,
                                FOR $l IN document("default.xml")/lineitem/row
                                WHERE $l/l_orderkey = $o/o_orderkey
                                RETURN {
                                    <lineitem>
                                        $l/l_orderkey, $l/l_linenumber,
                                        $l/l_quantity, $l/l_extendedprice
                                    </lineitem>}
                            </order>}
                    </customer>}
            </nation>}
    </region>}
"""

_REPUBLISH = {
    "region": """
FOR $r2 IN document("default.xml")/region/row
RETURN {
    <regionAgain>
        $r2/r_regionkey, $r2/r_name
    </regionAgain>}
""",
    "nation": """
FOR $n2 IN document("default.xml")/nation/row
RETURN {
    <nationAgain>
        $n2/n_nationkey, $n2/n_name
    </nationAgain>}
""",
    "customer": """
FOR $c2 IN document("default.xml")/customer/row
RETURN {
    <customerAgain>
        $c2/c_custkey, $c2/c_name
    </customerAgain>}
""",
    "orders": """
FOR $o2 IN document("default.xml")/orders/row
RETURN {
    <orderAgain>
        $o2/o_orderkey, $o2/o_totalprice
    </orderAgain>}
""",
    "lineitem": """
FOR $l2 IN document("default.xml")/lineitem/row
RETURN {
    <lineitemAgain>
        $l2/l_orderkey, $l2/l_linenumber, $l2/l_quantity
    </lineitemAgain>}
""",
}


def v_success() -> ViewQuery:
    """Five relations nested along the key/FK chain (Fig. 13)."""
    return parse_view_query(f"<TpchView>{_LINEAR_BODY}</TpchView>")


def v_linear() -> ViewQuery:
    """Alias of Vsuccess: the linear join used in Figs. 15 and 17."""
    return parse_view_query(f"<TpchView>{_LINEAR_BODY}</TpchView>")


def v_fail(republished: str = "region") -> ViewQuery:
    """Linear nesting plus *republished* published again (Fig. 14)."""
    if republished not in _REPUBLISH:
        raise ValueError(f"unknown relation {republished!r}")
    return parse_view_query(
        f"<TpchView>{_LINEAR_BODY},{_REPUBLISH[republished]}</TpchView>"
    )


def v_bush() -> ViewQuery:
    """The relations joined "evenly": flat context at the top, orders
    and lineitems nested below (Fig. 16)."""
    return parse_view_query(
        """
<TpchBush>
FOR $c IN document("default.xml")/customer/row,
    $n IN document("default.xml")/nation/row,
    $r IN document("default.xml")/region/row
WHERE $c/c_nationkey = $n/n_nationkey AND $n/n_regionkey = $r/r_regionkey
RETURN {
    <customer>
        $c/c_custkey, $c/c_name, $n/n_name, $r/r_name,
        FOR $o IN document("default.xml")/orders/row
        WHERE $o/o_custkey = $c/c_custkey
        RETURN {
            <order>
                $o/o_orderkey, $o/o_totalprice,
                FOR $l IN document("default.xml")/lineitem/row
                WHERE $l/l_orderkey = $o/o_orderkey
                RETURN {
                    <lineitem>
                        $l/l_orderkey, $l/l_linenumber, $l/l_quantity
                    </lineitem>}
            </order>}
    </customer>}
</TpchBush>
"""
    )


# ---------------------------------------------------------------------------
# updates
# ---------------------------------------------------------------------------

#: path from the root to each relation's element in the linear views
_ELEMENT_PATHS = {
    "region": ("region",),
    "nation": ("region", "nation"),
    "customer": ("region", "nation", "customer"),
    "orders": ("region", "nation", "customer", "order"),
    "lineitem": ("region", "nation", "customer", "order", "lineitem"),
}

#: key element inside each relation's view element
_KEY_TAGS = {
    "region": "r_regionkey",
    "nation": "n_nationkey",
    "customer": "c_custkey",
    "orders": "o_orderkey",
    "lineitem": "l_orderkey",
}


def delete_by_key(relation: str, key: int) -> ViewUpdate:
    """Delete one element of *relation* (by key) from a linear view."""
    path = _ELEMENT_PATHS[relation]
    var = "$x"
    binding_path = "/".join(path)
    text = f"""
        FOR $root IN document("TpchView.xml"),
            {var} IN $root/{binding_path}
        WHERE {var}/{_KEY_TAGS[relation]}/text() = "{key}"
        UPDATE $root {{
            DELETE {var} }}
    """
    return parse_view_update(text, name=f"delete-{relation}-{key}")


def delete_update(relation: str, key: int = 0) -> ViewUpdate:
    """Fig. 13/14's per-relation delete (defaults to key 0)."""
    return delete_by_key(relation, key)


def insert_lineitem_update(
    order_key: int, line_number: int, quantity: int = 5, price: float = 100.0
) -> ViewUpdate:
    """Fig. 15's update: insert a new lineitem under an order."""
    text = f"""
        FOR $o IN document("TpchView.xml")/region/nation/customer/order
        WHERE $o/o_orderkey/text() = "{order_key}"
        UPDATE $o {{
        INSERT
            <lineitem>
                <l_orderkey>{order_key}</l_orderkey>
                <l_linenumber>{line_number}</l_linenumber>
                <l_quantity>{quantity}</l_quantity>
                <l_extendedprice>{price:.2f}</l_extendedprice>
            </lineitem>}}
    """
    return parse_view_update(text, name=f"insert-lineitem-{order_key}-{line_number}")
