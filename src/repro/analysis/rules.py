"""The engine's invariant rules, REP001–REP005.

Each rule encodes one load-bearing correctness invariant that earlier
PRs established in prose and test folklore:

* **REP001** — a ``_physical_*`` storage primitive journals its undo
  image (``_journal_undo``) *before* the first tuple mutation, so a
  crash mid-primitive always leaves a journaled image recovery can
  replay (the PR 7 torn-state ordering).
* **REP002** — every ``Table`` / ``HashIndex`` DML primitive opens with
  a ``faults.hit("site", ...)`` injection site whose name is a string
  literal, and no two storage primitives share a site name — otherwise
  the crash-at-every-site sweep silently loses coverage.
* **REP003** — no handler may catch ``BaseException`` or use a bare
  ``except``: :class:`repro.rdb.faults.SimulatedCrash` is a
  ``BaseException`` precisely so it sails past every handler the way a
  killed process would.  In apply/recovery/WAL modules, even
  ``except Exception`` must re-raise (or carry an explicit
  ``# repro: allow[REP003]`` tag saying why it may swallow).
* **REP004** — a ``Database`` method that mutates rows must bump
  ``data_versions`` (or ``schema_versions``, which invalidates
  strictly more), and one that mutates schema objects must bump
  ``schema_versions`` — cached compiled plans must never outlive the
  state that justified them (the PR 2 invalidation contract).
* **REP005** — a retry handler (one that calls ``_backoff_sleep`` or
  increments ``retries_used``) may catch only transient error types;
  retrying a constraint violation or timeout only reproduces it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Sequence

from .findings import LintFinding
from .linter import ModuleSource, Rule

__all__ = ["RULES", "register"]

#: rule registry, id -> singleton instance (rules are stateless)
RULES: Dict[str, Rule] = {}


def register(cls: type) -> type:
    RULES[cls.rule_id] = cls()
    return cls


# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------

def dotted_name(node: ast.AST) -> str:
    """Flatten an attribute chain: ``self.db.faults.hit`` and friends."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def calls_in(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def call_tail(call: ast.Call) -> str:
    """The last component of the called name (``table.insert_row`` ->
    ``insert_row``)."""
    name = dotted_name(call.func)
    return name.rsplit(".", 1)[-1] if name else ""


def first_call_line(node: ast.AST, tails: set[str]) -> Optional[int]:
    """Line of the lexically first call whose name ends in *tails*."""
    best: Optional[int] = None
    for call in calls_in(node):
        if call_tail(call) in tails:
            if best is None or call.lineno < best:
                best = call.lineno
    return best


def handler_names(handler: ast.ExceptHandler) -> list[str]:
    """The exception names an ``except`` clause catches ([] = bare)."""
    node = handler.type
    if node is None:
        return []
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for elt in elts:
        if isinstance(elt, ast.Name):
            names.append(elt.id)
        elif isinstance(elt, ast.Attribute):
            names.append(elt.attr)
    return names


#: the tuple-storage mutation primitives of repro.rdb.table.Table
TABLE_MUTATORS = {"insert_row", "restore_row", "delete_row", "update_row"}


# ---------------------------------------------------------------------------
# REP001: journal before mutation
# ---------------------------------------------------------------------------

@register
class JournalBeforeMutation(Rule):
    rule_id = "REP001"
    title = "physical primitives journal undo images before mutating"

    def check(self, module: ModuleSource) -> Iterator[LintFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if not node.name.startswith("_physical_"):
                continue
            mutation = first_call_line(node, TABLE_MUTATORS)
            if mutation is None:
                continue
            journal = first_call_line(node, {"_journal_undo"})
            if journal is None:
                yield self.finding(
                    module,
                    node.lineno,
                    f"{node.name} mutates tuple storage without journaling "
                    f"an undo image (_journal_undo) first — a crash inside "
                    f"it would be unrecoverable",
                )
            elif journal > mutation:
                yield self.finding(
                    module,
                    mutation,
                    f"{node.name} mutates tuple storage (line {mutation}) "
                    f"before journaling its undo image (line {journal}); "
                    f"the write-ahead ordering is journal first",
                )


# ---------------------------------------------------------------------------
# REP002: fault-site coverage + uniqueness
# ---------------------------------------------------------------------------

#: the storage DML primitives that must each open with a fault site
_STORAGE_PRIMITIVES = {
    "Table": {"insert_row", "restore_row", "delete_row", "update_row"},
    "HashIndex": {"add", "remove"},
}


def _opening_site(node: ast.FunctionDef) -> Optional[ast.Call]:
    """The ``faults.hit(...)`` call a primitive opens with, if any."""
    for statement in node.body:
        if (
            isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
            and isinstance(statement.value.value, str)
        ):
            continue  # docstring
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Call
        ):
            call = statement.value
            if dotted_name(call.func).endswith("faults.hit"):
                return call
        return None
    return None


def _storage_sites(
    module: ModuleSource,
) -> Iterator[tuple[str, str, ast.FunctionDef, Optional[ast.Call]]]:
    """Yield (class, method, def-node, opening hit call) for every
    storage DML primitive defined in *module*."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        primitives = _STORAGE_PRIMITIVES.get(node.name)
        if primitives is None:
            continue
        for item in node.body:
            if isinstance(item, ast.FunctionDef) and item.name in primitives:
                yield node.name, item.name, item, _opening_site(item)


@register
class FaultSiteCoverage(Rule):
    rule_id = "REP002"
    title = "storage DML primitives open with a uniquely named fault site"

    def check(self, module: ModuleSource) -> Iterator[LintFinding]:
        for class_name, method, node, call in _storage_sites(module):
            where = f"{class_name}.{method}"
            if call is None:
                yield self.finding(
                    module,
                    node.lineno,
                    f"storage primitive {where} must open with a "
                    f"faults.hit(...) injection site — the fault sweep "
                    f"cannot enumerate crash points it never sees",
                )
                continue
            if not (
                call.args
                and isinstance(call.args[0], ast.Constant)
                and isinstance(call.args[0].value, str)
            ):
                yield self.finding(
                    module,
                    call.lineno,
                    f"{where}: the fault-site name must be a string "
                    f"literal so crash traces stay replayable",
                )

    def finalize(self, modules: Sequence[ModuleSource]) -> Iterator[LintFinding]:
        seen: dict[str, tuple[str, int]] = {}
        for module in modules:
            for class_name, method, _node, call in _storage_sites(module):
                if call is None or not call.args:
                    continue
                site = call.args[0]
                if not (isinstance(site, ast.Constant) and isinstance(site.value, str)):
                    continue
                previous = seen.get(site.value)
                if previous is None:
                    seen[site.value] = (module.path, call.lineno)
                else:
                    yield self.finding(
                        module,
                        call.lineno,
                        f"fault site {site.value!r} in {class_name}.{method} "
                        f"is already used at {previous[0]}:{previous[1]} — "
                        f"site names must be unique per storage primitive",
                    )


# ---------------------------------------------------------------------------
# REP003: exception hygiene around SimulatedCrash
# ---------------------------------------------------------------------------

#: module stems forming the apply/recovery/WAL paths, where swallowing
#: ``Exception`` can swallow the failure the crash-consistency story
#: depends on observing
_APPLY_PATH_STEMS = {
    "database",
    "datacheck",
    "faults",
    "faultsweep",
    "scenario_gen",
    "session",
    "transactions",
    "wal",
}


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


@register
class ExceptionHygiene(Rule):
    rule_id = "REP003"
    title = "no handler may be blind to SimulatedCrash semantics"

    def check(self, module: ModuleSource) -> Iterator[LintFinding]:
        in_apply_path = module.stem in _APPLY_PATH_STEMS
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = handler_names(node)
            if node.type is None:
                yield self.finding(
                    module,
                    node.lineno,
                    "bare 'except:' catches SimulatedCrash (a "
                    "BaseException) and would hide a simulated kill; "
                    "catch a concrete error type",
                )
                continue
            if "BaseException" in names:
                yield self.finding(
                    module,
                    node.lineno,
                    "'except BaseException' catches SimulatedCrash; only "
                    "the fault-sweep harness may do that, via the "
                    "exception's own type",
                )
                continue
            if in_apply_path and "Exception" in names and not _reraises(node):
                yield self.finding(
                    module,
                    node.lineno,
                    "'except Exception' in an apply/recovery/WAL path "
                    "must re-raise (or carry a '# repro: allow[REP003]' "
                    "tag stating why it may swallow engine failures)",
                )


# ---------------------------------------------------------------------------
# REP004: version bumps on row/schema mutation
# ---------------------------------------------------------------------------

def _assigned_subscript_chains(node: ast.AST) -> Iterator[str]:
    """Dotted chains of subscripted assignment/delete targets
    (``self.tables[name] = ...`` yields ``self.tables``)."""
    for sub in ast.walk(node):
        targets: list[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            targets = [sub.target]
        elif isinstance(sub, ast.Delete):
            targets = list(sub.targets)
        for target in targets:
            if isinstance(target, ast.Subscript):
                yield dotted_name(target.value)


@register
class VersionBumpOnMutation(Rule):
    rule_id = "REP004"
    title = "Database mutations bump the plan-cache versions"

    _EXEMPT = {"__init__", "_bump_data_version", "_bump_schema_version"}

    def check(self, module: ModuleSource) -> Iterator[LintFinding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.ClassDef) and node.name == "Database"):
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name in self._EXEMPT:
                    continue
                yield from self._check_method(module, item)

    def _check_method(
        self, module: ModuleSource, node: ast.FunctionDef
    ) -> Iterator[LintFinding]:
        bumps_data = first_call_line(node, {"_bump_data_version"}) is not None
        bumps_schema = first_call_line(node, {"_bump_schema_version"}) is not None
        mutates_rows = first_call_line(node, TABLE_MUTATORS) is not None
        mutates_schema = any(
            dotted_name(call.func)
            in (
                "self.schema.add_relation",
                "self.schema.relations.pop",
                "self.tables.pop",
                "self.indexes.pop",
            )
            for call in calls_in(node)
        ) or any(
            chain in ("self.tables", "self.indexes")
            for chain in _assigned_subscript_chains(node)
        )
        # a schema bump invalidates strictly more than a data bump, so
        # it satisfies the row-mutation obligation too
        if mutates_rows and not (bumps_data or bumps_schema):
            yield self.finding(
                module,
                node.lineno,
                f"Database.{node.name} mutates rows without bumping "
                f"data_versions — a cached compiled plan would outlive "
                f"the cardinalities that justified it",
            )
        if mutates_schema and not bumps_schema:
            yield self.finding(
                module,
                node.lineno,
                f"Database.{node.name} mutates schema objects without "
                f"bumping schema_versions — compiled plans referencing "
                f"stale schema objects would survive",
            )


# ---------------------------------------------------------------------------
# REP005: retry loops absorb only transient failures
# ---------------------------------------------------------------------------

#: names statically known to be TransientError subclasses (see
#: repro.errors: the transient/fatal taxonomy is closed on purpose)
_TRANSIENT_NAMES = {"TransientError", "ConflictError", "FaultInjectedError"}


def _is_retry_handler(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Call) and call_tail(node) == "_backoff_sleep":
            return True
        if isinstance(node, ast.AugAssign):
            target = node.target
            name = (
                target.attr
                if isinstance(target, ast.Attribute)
                else target.id if isinstance(target, ast.Name) else ""
            )
            if name == "retries_used":
                return True
    return False


@register
class RetryTaxonomy(Rule):
    rule_id = "REP005"
    title = "retry handlers catch only TransientError subclasses"

    def check(self, module: ModuleSource) -> Iterator[LintFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_retry_handler(node):
                continue
            bad = [
                name
                for name in (handler_names(node) or ["<bare>"])
                if name not in _TRANSIENT_NAMES
            ]
            if bad:
                yield self.finding(
                    module,
                    node.lineno,
                    f"retry handler catches {', '.join(bad)} — only "
                    f"TransientError subclasses may be retried; retrying "
                    f"a fatal failure only reproduces it",
                )
