"""The rule framework behind ``repro lint``.

Rules are AST visitors registered in :data:`repro.analysis.rules.RULES`.
Each rule examines one parsed module at a time (:meth:`Rule.check`) and
may run a whole-run pass over every module at the end
(:meth:`Rule.finalize` — cross-module checks such as fault-site
uniqueness).  The runner applies suppressions centrally: a finding is
dropped when its line — or the line directly above it — carries a
``# repro: allow[RULE]`` tag naming the rule (comma-separated ids tag
several rules at once).  Suppressed findings are counted, not silently
discarded, so the JSON report still shows where the escape hatches are.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional, Sequence

from .findings import SEVERITY_ERROR, LintFinding

__all__ = [
    "LintReport",
    "ModuleSource",
    "Rule",
    "lint_paths",
    "lint_source",
]

#: ``# repro: allow[REP003]`` / ``# repro: allow[REP003, REP004]``
_ALLOW_TAG = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


@dataclass
class ModuleSource:
    """One parsed module: path, raw lines and the AST, parsed once."""

    path: str
    text: str
    tree: ast.Module
    lines: list[str]

    @classmethod
    def parse(cls, path: str, text: Optional[str] = None) -> "ModuleSource":
        if text is None:
            text = Path(path).read_text()
        return cls(
            path=path,
            text=text,
            tree=ast.parse(text, filename=path),
            lines=text.splitlines(),
        )

    @property
    def stem(self) -> str:
        return Path(self.path).stem

    def allow_tags(self, line: int) -> set[str]:
        """Rule ids allowed at *line* (tags on the line or the line above)."""
        tags: set[str] = set()
        for lineno in (line, line - 1):
            if 1 <= lineno <= len(self.lines):
                match = _ALLOW_TAG.search(self.lines[lineno - 1])
                if match:
                    tags.update(
                        part.strip() for part in match.group(1).split(",")
                    )
        return tags


class Rule:
    """Base class for invariant rules.

    Subclasses set :attr:`rule_id` / :attr:`title` and implement
    :meth:`check`; cross-module rules additionally implement
    :meth:`finalize`, which runs once after every module was checked.
    """

    rule_id: str = "REP000"
    title: str = ""
    severity: str = SEVERITY_ERROR

    def check(self, module: ModuleSource) -> Iterator[LintFinding]:
        raise NotImplementedError

    def finalize(self, modules: Sequence[ModuleSource]) -> Iterator[LintFinding]:
        return iter(())

    def finding(self, module: ModuleSource, line: int, detail: str) -> LintFinding:
        return LintFinding(
            rule=self.rule_id,
            severity=self.severity,
            path=module.path,
            line=line,
            detail=detail,
        )


@dataclass
class LintReport:
    """The outcome of one linter run."""

    findings: list[LintFinding] = field(default_factory=list)
    suppressed: list[LintFinding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def describe(self) -> str:
        lines = [finding.describe() for finding in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s) "
            f"({len(self.errors)} error(s)), "
            f"{len(self.suppressed)} suppressed, "
            f"{self.files_checked} file(s) checked"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "files_checked": self.files_checked,
            "ok": self.ok,
        }

    def write_json(self, path: str) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")


def _select_rules(rule_ids: Optional[Iterable[str]]) -> list[Rule]:
    from .rules import RULES

    if rule_ids is None:
        return list(RULES.values())
    unknown = set(rule_ids) - set(RULES)
    if unknown:
        raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
    return [RULES[rule_id] for rule_id in rule_ids]


def _run(modules: Sequence[ModuleSource], rules: Sequence[Rule]) -> LintReport:
    report = LintReport(files_checked=len(modules))
    raw: list[LintFinding] = []
    per_module: dict[str, ModuleSource] = {m.path: m for m in modules}
    for rule in rules:
        for module in modules:
            raw.extend(rule.check(module))
        raw.extend(rule.finalize(modules))
    raw.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in raw:
        module = per_module.get(finding.path)
        if module is not None and finding.rule in module.allow_tags(finding.line):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[str] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(str(p) for p in path.rglob("*.py"))
        else:
            out.add(str(path))
    return sorted(out)


def lint_paths(
    paths: Iterable[str], rule_ids: Optional[Iterable[str]] = None
) -> LintReport:
    """Lint every ``.py`` file under *paths* (files or directories)."""
    modules = [
        ModuleSource.parse(file) for file in iter_python_files(paths)
    ]
    return _run(modules, _select_rules(rule_ids))


def lint_source(
    text: str,
    path: str = "<memory>",
    rule_ids: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint one in-memory module (test helper)."""
    return _run([ModuleSource.parse(path, text)], _select_rules(rule_ids))
