"""Static analysis over the engine's own source and plans.

Two layers, one finding vocabulary (the ERROR/WARNING severities of
:mod:`repro.core.qa`):

* :mod:`repro.analysis.linter` — an AST-based **repo invariant linter**
  (``repro lint``).  PRs 2–7 accumulated load-bearing correctness rules
  that previously existed only as prose: undo images are journaled
  before any physical mutation, every storage DML primitive fires a
  named fault site, ``SimulatedCrash`` must sail past broad handlers,
  every row/schema mutation bumps the plan-cache versions, and session
  retry loops may absorb only transient failures.
  :mod:`repro.analysis.rules` encodes each as a checkable rule
  (REP001–REP005) with ``# repro: allow[RULE]`` escape hatches.
* :mod:`repro.analysis.planlint` — a **plan-IR verifier** that checks
  every lowered physical operator tree against the schema and the
  plan's own invariants (column bindings, join-key types, leaf
  coverage, estimate bounds, output shape).  Armed via the
  ``REPRO_PLAN_VERIFY=1`` environment variable it runs as a debug hook
  on lowering; ``repro lint --plans`` sweeps it across generated
  scenarios.
"""

from .findings import SEVERITY_ERROR, SEVERITY_WARNING, LintFinding
from .linter import LintReport, ModuleSource, Rule, lint_paths, lint_source
from .planlint import (
    PlanFinding,
    plan_verify_enabled,
    sweep_plans,
    verify_or_raise,
    verify_plan,
)
from .rules import RULES

__all__ = [
    "LintFinding",
    "LintReport",
    "ModuleSource",
    "PlanFinding",
    "RULES",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "lint_paths",
    "lint_source",
    "plan_verify_enabled",
    "sweep_plans",
    "verify_or_raise",
    "verify_plan",
]
