"""Layer 2: static verification of lowered physical plan trees.

Every query path lowers through the one pipeline of
:mod:`repro.rdb.plan`; this module checks the lowered operator tree
*before* it compiles, against the schema and the plan's own structural
invariants:

* **shape** — the tree is ``[Distinct] -> Project -> Sort -> body``
  with only access/join/filter operators inside the body, so the
  output contract (rowid-ordered, shaped rows) cannot be silently
  dropped by a lowering bug;
* **leaf coverage** — every relation of the logical plan appears
  exactly once as a leaf (a double-used or dropped leaf would return
  rows of the wrong arity);
* **column bindings** — every column reference in filter predicates,
  index-probe keys and hash-join keys resolves against the schema of a
  relation bound *below* (or outer to) the referencing operator;
* **index probes** — the probed index belongs to the probed relation,
  is registered with the database, and its key arity matches;
* **hash-join key types** — both sides of an equi-join key agree on
  their type category (text/number/date); untyped temp-table
  materializations are exempt;
* **estimates** — every per-node row estimate satisfies
  ``0 <= est <= input bound`` (child estimate for unary operators, the
  product of child estimates for joins).

The vectorized compiler of :mod:`repro.rdb.compiled` lowers the same
trees into a flat post-order *stage list* (scan / index_probe / filter /
hash_join / fallback / finalize descriptors); :func:`verify_vector_plan`
checks that lowering too — every FROM-item name produced exactly once,
references only to already-produced names, registered relations and
indexes, and a finalize stage agreeing with the tree's
Project/Sort/Distinct contract.

Armed via ``REPRO_PLAN_VERIFY=1``, :func:`verify_or_raise` runs as a
debug hook on every lowering (and :func:`verify_vector_or_raise` on
every vectorized compile) and raises
:class:`repro.errors.PlanVerificationError` on any finding.
``repro lint --plans`` sweeps the verifier across the seeded scenario
generator (:func:`sweep_plans`).
"""

from __future__ import annotations

import datetime
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..errors import PlanVerificationError
from ..rdb.database import Database
from ..rdb.expr import ColumnRef, Expr, Literal
from ..rdb.plan import (
    Distinct,
    Filter,
    HashJoin,
    IndexProbe,
    NestedLoopJoin,
    PlanNode,
    Project,
    Scan,
    Sort,
)
from ..rdb.schema import Relation
from ..rdb.types import Date, Double, Integer, SQLType, VarChar

__all__ = [
    "CHECK_ESTIMATE",
    "CHECK_KEY_ARITY",
    "CHECK_KEY_TYPES",
    "CHECK_LEAF_COVERAGE",
    "CHECK_MAINTENANCE",
    "CHECK_SHAPE",
    "CHECK_UNBOUND_COLUMN",
    "CHECK_UNKNOWN_COLUMN",
    "CHECK_UNKNOWN_RELATION",
    "CHECK_VECTOR_STAGES",
    "PlanFinding",
    "PlanSweepReport",
    "plan_verify_enabled",
    "sweep_plans",
    "verified_plan_count",
    "verify_maintenance_or_raise",
    "verify_maintenance_plan",
    "verify_or_raise",
    "verify_plan",
    "verify_vector_or_raise",
    "verify_vector_plan",
]

CHECK_SHAPE = "plan-shape"
CHECK_LEAF_COVERAGE = "plan-leaf-coverage"
CHECK_UNKNOWN_RELATION = "plan-unknown-relation"
CHECK_UNBOUND_COLUMN = "plan-unbound-column"
CHECK_UNKNOWN_COLUMN = "plan-unknown-column"
CHECK_KEY_ARITY = "plan-key-arity"
CHECK_KEY_TYPES = "plan-key-type-mismatch"
CHECK_ESTIMATE = "plan-estimate-bounds"
CHECK_VECTOR_STAGES = "plan-vector-stages"
CHECK_MAINTENANCE = "plan-maintenance"

#: estimate comparisons tolerate float noise, not real violations
_EST_TOLERANCE = 1.0001
_EST_EPSILON = 1e-6


@dataclass(frozen=True)
class PlanFinding:
    """One structural violation in a lowered plan tree."""

    check: str
    detail: str

    def describe(self) -> str:
        return f"{self.check}: {self.detail}"

    def to_dict(self) -> dict[str, Any]:
        return {"check": self.check, "detail": self.detail}


class _Verifier:
    """One verification pass over a lowered tree."""

    def __init__(self, db: Database, expected_names: Optional[Sequence[str]]):
        self.db = db
        self.expected = tuple(expected_names) if expected_names else None
        self.findings: list[PlanFinding] = []
        #: leaf binding name -> relation schema (None when unknown)
        self.bindings: dict[str, Optional[Relation]] = {}
        self.leaf_names: list[str] = []

    def bad(self, check: str, detail: str) -> None:
        self.findings.append(PlanFinding(check, detail))

    # -- entry ----------------------------------------------------------------

    def run(self, root: PlanNode) -> list[PlanFinding]:
        body = self._unwrap_shape(root)
        if body is not None:
            self._body(body, frozenset())
            self._check_leaf_coverage()
        return self.findings

    def _unwrap_shape(self, root: PlanNode) -> Optional[PlanNode]:
        node = root
        if isinstance(node, Distinct):
            node = node.child
        if not isinstance(node, Project):
            self.bad(
                CHECK_SHAPE,
                f"root must be Project (under an optional Distinct), "
                f"got {type(node).__name__}",
            )
            return None
        project = node
        node = node.child
        if not isinstance(node, Sort):
            self.bad(
                CHECK_SHAPE,
                f"Project must sit directly on Sort (the rowid-order "
                f"contract), got {type(node).__name__}",
            )
            return None
        if self.expected is not None:
            if tuple(node.names) != self.expected:
                self.bad(
                    CHECK_SHAPE,
                    f"Sort orders on {node.names!r}, the logical plan "
                    f"binds {self.expected!r}",
                )
            project_names = tuple(item.name for item in project.from_items)
            if project_names != self.expected:
                self.bad(
                    CHECK_SHAPE,
                    f"Project shapes {project_names!r}, the logical plan "
                    f"binds {self.expected!r}",
                )
        return node.child

    # -- body walk ------------------------------------------------------------

    def _body(self, node: PlanNode, outer: frozenset) -> frozenset:
        """Verify the join/filter/access subtree rooted at *node*, with
        *outer* naming the relations already bound by enclosing
        operators; returns the names the subtree binds."""
        self._check_estimate_nonnegative(node)
        if isinstance(node, Scan):
            self._register_leaf(node.name, node.relation_name)
            return frozenset((node.name,))
        if isinstance(node, IndexProbe):
            self._register_leaf(node.name, node.relation_name)
            self._check_index_probe(node, outer)
            return frozenset((node.name,))
        if isinstance(node, Filter):
            inner = self._body(node.child, outer)
            for predicate in node.predicates:
                self._check_refs(predicate, outer | inner, "Filter predicate")
            self._check_estimate_bound(node, node.child.estimated_rows)
            return inner
        if isinstance(node, NestedLoopJoin):
            outer_names = self._body(node.outer, outer)
            inner_names = self._body(node.inner, outer | outer_names)
            self._check_estimate_bound(
                node,
                node.outer.estimated_rows * node.inner.estimated_rows,
            )
            return outer_names | inner_names
        if isinstance(node, HashJoin):
            outer_names = self._body(node.outer, outer)
            # the build side runs standalone, once — outer names are
            # not in scope there
            inner_names = self._body(node.inner, frozenset())
            for _conjunct, outer_expr, inner_expr in node.keys:
                self._check_refs(
                    outer_expr, outer | outer_names, "HashJoin probe key"
                )
                self._check_refs(inner_expr, inner_names, "HashJoin build key")
                self._check_key_types(outer_expr, inner_expr)
            self._check_estimate_bound(
                node,
                node.outer.estimated_rows * node.inner.estimated_rows,
            )
            return outer_names | inner_names
        self.bad(
            CHECK_SHAPE,
            f"{type(node).__name__} may not appear inside the join body "
            f"(only access, filter and join operators belong below Sort)",
        )
        children = node.children()
        bound = frozenset()
        for child in children:
            bound = bound | self._body(child, outer | bound)
        return bound

    # -- leaves ---------------------------------------------------------------

    def _register_leaf(self, name: str, relation_name: str) -> None:
        self.leaf_names.append(name)
        relation = self.db.schema.relations.get(relation_name)
        if relation is None:
            self.bad(
                CHECK_UNKNOWN_RELATION,
                f"leaf {name!r} reads unknown relation {relation_name!r}",
            )
        self.bindings[name] = relation

    def _check_leaf_coverage(self) -> None:
        counts = Counter(self.leaf_names)
        for name, count in sorted(counts.items()):
            if count > 1:
                self.bad(
                    CHECK_LEAF_COVERAGE,
                    f"relation binding {name!r} appears {count} times as "
                    f"a leaf; every logical relation must appear exactly "
                    f"once",
                )
        if self.expected is not None:
            expected = Counter(self.expected)
            for name in sorted(set(expected) - set(counts)):
                self.bad(
                    CHECK_LEAF_COVERAGE,
                    f"logical relation {name!r} has no leaf in the "
                    f"physical tree",
                )
            for name in sorted(set(counts) - set(expected)):
                self.bad(
                    CHECK_LEAF_COVERAGE,
                    f"physical leaf {name!r} binds no relation of the "
                    f"logical plan",
                )

    # -- index probes ---------------------------------------------------------

    def _check_index_probe(self, node: IndexProbe, outer: frozenset) -> None:
        index = node.index
        if index.relation_name != node.relation_name:
            self.bad(
                CHECK_UNKNOWN_RELATION,
                f"IndexProbe {node.name!r} probes index {index.name!r} of "
                f"{index.relation_name!r}, not of {node.relation_name!r}",
            )
        elif index not in self.db.indexes.get(node.relation_name, ()):
            self.bad(
                CHECK_UNKNOWN_RELATION,
                f"IndexProbe {node.name!r} references index {index.name!r} "
                f"that is not registered with the database (dangling after "
                f"DDL?)",
            )
        if len(node.keys) != len(index.columns):
            self.bad(
                CHECK_KEY_ARITY,
                f"IndexProbe {node.name!r} supplies {len(node.keys)} key(s) "
                f"for index {index.name!r} over {len(index.columns)} "
                f"column(s)",
            )
        relation = self.bindings.get(node.name)
        if relation is not None:
            for column in index.columns:
                if column not in relation.attributes:
                    self.bad(
                        CHECK_UNKNOWN_COLUMN,
                        f"index {index.name!r} covers {column!r}, which is "
                        f"not a column of {node.relation_name!r}",
                    )
        for _conjunct, value in node.keys:
            # key values are evaluated against the already-bound outer
            # rows (or the parameter vector) before this leaf binds
            self._check_refs(value, outer, "IndexProbe key")

    # -- column resolution ----------------------------------------------------

    def _check_refs(self, expr: Expr, bound: frozenset, context: str) -> None:
        columns: set[tuple[Optional[str], str]] = set()
        expr._collect_columns(columns)
        for qualifier, column in sorted(
            columns, key=lambda pair: (pair[0] or "", pair[1])
        ):
            if qualifier is None:
                if not any(
                    self.bindings.get(name) is not None
                    and column in self.bindings[name].attributes
                    for name in bound
                ):
                    self.bad(
                        CHECK_UNKNOWN_COLUMN,
                        f"{context} references unqualified column "
                        f"{column!r}, which no relation bound below it "
                        f"provides",
                    )
                continue
            if qualifier not in bound:
                self.bad(
                    CHECK_UNBOUND_COLUMN,
                    f"{context} references {qualifier}.{column}, but "
                    f"{qualifier!r} is not bound below (or outer to) the "
                    f"referencing operator",
                )
                continue
            relation = self.bindings.get(qualifier)
            if relation is not None and column not in relation.attributes:
                self.bad(
                    CHECK_UNKNOWN_COLUMN,
                    f"{context} references {qualifier}.{column}, but "
                    f"{relation.name!r} has no column {column!r}",
                )

    # -- key types ------------------------------------------------------------

    def _type_category(self, expr: Expr) -> Optional[str]:
        if isinstance(expr, ColumnRef) and expr.qualifier is not None:
            relation = self.bindings.get(expr.qualifier)
            if relation is None or relation.temp:
                return None  # unknown or untyped materialization
            attribute = relation.attributes.get(expr.column)
            if attribute is None:
                return None
            return _category_of(attribute.sql_type)
        if isinstance(expr, Literal):
            value = expr.value
            if value is None or isinstance(value, bool):
                return None
            if isinstance(value, (int, float)):
                return "number"
            if isinstance(value, datetime.date):
                return "date"
            if isinstance(value, str):
                return "text"
        return None

    def _check_key_types(self, outer_expr: Expr, inner_expr: Expr) -> None:
        outer_category = self._type_category(outer_expr)
        inner_category = self._type_category(inner_expr)
        if (
            outer_category is not None
            and inner_category is not None
            and outer_category != inner_category
        ):
            self.bad(
                CHECK_KEY_TYPES,
                f"hash-join key compares {outer_expr.to_sql()} "
                f"({outer_category}) with {inner_expr.to_sql()} "
                f"({inner_category}); equi-join keys must agree on their "
                f"type category",
            )

    # -- estimates ------------------------------------------------------------

    def _check_estimate_nonnegative(self, node: PlanNode) -> None:
        est = node.estimated_rows
        if not (est >= 0.0) or est != est or est == float("inf"):
            self.bad(
                CHECK_ESTIMATE,
                f"{type(node).__name__} carries row estimate {est!r}; "
                f"estimates must be finite and >= 0",
            )

    def _check_estimate_bound(self, node: PlanNode, bound: float) -> None:
        est = node.estimated_rows
        if est > bound * _EST_TOLERANCE + _EST_EPSILON:
            self.bad(
                CHECK_ESTIMATE,
                f"{type(node).__name__} estimates {est:g} rows, above its "
                f"input bound {bound:g}; an operator cannot emit more than "
                f"its inputs admit",
            )


def _category_of(sql_type: SQLType) -> Optional[str]:
    if isinstance(sql_type, VarChar):
        return "text"
    if isinstance(sql_type, (Integer, Double)):
        return "number"
    if isinstance(sql_type, Date):
        return "date"
    return None


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

def verify_plan(
    db: Database,
    root: PlanNode,
    expected_names: Optional[Sequence[str]] = None,
) -> list[PlanFinding]:
    """Statically check one lowered physical tree; returns findings.

    *expected_names* is the ordered relation-binding list of the
    logical plan (FROM-item names); when given, leaf coverage and the
    Sort/Project output contract are checked against it.
    """
    return _Verifier(db, expected_names).run(root)


#: plans verified since import (the sweep and tests read the delta)
_verified_plans = 0


def verified_plan_count() -> int:
    return _verified_plans


def verify_or_raise(
    db: Database,
    root: PlanNode,
    expected_names: Optional[Sequence[str]] = None,
) -> None:
    """The lowering debug hook: verify, count, raise on any finding."""
    global _verified_plans
    findings = verify_plan(db, root, expected_names)
    _verified_plans += 1
    if findings:
        raise PlanVerificationError(
            [finding.describe() for finding in findings],
            plan_text=root.explain(),
        )


def plan_verify_enabled() -> bool:
    """True iff the ``REPRO_PLAN_VERIFY`` debug hook is armed."""
    return os.environ.get("REPRO_PLAN_VERIFY", "") not in ("", "0")


# ---------------------------------------------------------------------------
# vectorized-lowering verification
# ---------------------------------------------------------------------------

def verify_vector_plan(
    db: Database, root: PlanNode, plan: Any
) -> list[PlanFinding]:
    """Statically check a vectorized lowering's stage list.

    *plan* is the :class:`repro.rdb.compiled.VectorizedPlan`; its
    ``stages`` tuple is the post-order trace of the batch operators the
    compiler emitted.  The invariants:

    * the list ends with exactly one ``finalize`` stage;
    * producing stages (scan / index_probe / fallback) bind every
      FROM-item name exactly once, over registered relations and
      indexes;
    * consuming stages (filter / hash_join) reference only names
      already produced, and a hash join's sides are disjoint;
    * the finalize descriptor (projection mode, sort names, distinct)
      matches the physical tree's Project/Sort/Distinct contract, and
      the produced names cover the sort names exactly.
    """
    findings: list[PlanFinding] = []

    def bad(detail: str) -> None:
        findings.append(PlanFinding(CHECK_VECTOR_STAGES, detail))

    stages = tuple(getattr(plan, "stages", ()) or ())
    if not stages or stages[-1][0] != "finalize":
        bad("stage list must end with a finalize stage")
        return findings
    if sum(1 for stage in stages if stage[0] == "finalize") != 1:
        bad("stage list must contain exactly one finalize stage")
        return findings

    produced: set[str] = set()

    def produce(name: str, stage_kind: str) -> None:
        if name in produced:
            bad(
                f"{stage_kind} stage produces {name!r}, which an earlier "
                f"stage already produced"
            )
        produced.add(name)

    for stage in stages[:-1]:
        kind = stage[0]
        if kind == "scan":
            _, name, relation_name = stage
            if relation_name not in db.tables:
                bad(f"scan stage reads unknown relation {relation_name!r}")
            produce(name, "scan")
        elif kind == "index_probe":
            _, name, relation_name, index_name = stage
            if relation_name not in db.tables:
                bad(
                    f"index_probe stage reads unknown relation "
                    f"{relation_name!r}"
                )
            elif index_name not in {
                index.name for index in db.indexes.get(relation_name, ())
            }:
                bad(
                    f"index_probe stage references index {index_name!r}, "
                    f"which is not registered for {relation_name!r}"
                )
            produce(name, "index_probe")
        elif kind == "fallback":
            _, names, _subtree_kind = stage
            for name in names:
                produce(name, "fallback")
        elif kind == "filter":
            _, names, predicate_count = stage
            for name in names:
                if name not in produced:
                    bad(
                        f"filter stage narrows {name!r} before any stage "
                        f"produced it"
                    )
            if predicate_count < 1:
                bad("filter stage carries no predicates")
        elif kind == "hash_join":
            _, outer_names, inner_names, key_count = stage
            overlap = set(outer_names) & set(inner_names)
            if overlap:
                bad(
                    f"hash_join stage binds {sorted(overlap)!r} on both "
                    f"sides"
                )
            for name in tuple(outer_names) + tuple(inner_names):
                if name not in produced:
                    bad(
                        f"hash_join stage joins {name!r} before any stage "
                        f"produced it"
                    )
            if key_count < 1:
                bad("hash_join stage carries no equi-join keys")
        else:
            bad(f"unknown stage kind {kind!r}")

    node = root
    distinct = isinstance(node, Distinct)
    if distinct:
        node = node.child
    if not isinstance(node, Project) or not isinstance(node.child, Sort):
        bad(
            f"physical tree root is {type(root).__name__}; vectorized "
            f"plans require the [Distinct] -> Project -> Sort shape"
        )
        return findings
    _, mode, sort_names, stage_distinct = stages[-1]
    if mode != node.mode:
        bad(
            f"finalize stage projects mode {mode!r}, the tree's Project "
            f"uses {node.mode!r}"
        )
    if tuple(sort_names) != tuple(node.child.names):
        bad(
            f"finalize stage orders on {tuple(sort_names)!r}, the tree's "
            f"Sort orders on {tuple(node.child.names)!r}"
        )
    if bool(stage_distinct) != distinct:
        bad(
            f"finalize stage distinct={bool(stage_distinct)!r} disagrees "
            f"with the tree (distinct={distinct!r})"
        )
    if produced != set(node.child.names):
        bad(
            f"stages produce {sorted(produced)!r}, the Sort contract "
            f"needs exactly {sorted(set(node.child.names))!r}"
        )
    return findings


def verify_vector_or_raise(db: Database, root: PlanNode, plan: Any) -> None:
    """The vectorized-compile debug hook: verify, count, raise."""
    global _verified_plans
    findings = verify_vector_plan(db, root, plan)
    _verified_plans += 1
    if findings:
        raise PlanVerificationError(
            [finding.describe() for finding in findings],
            plan_text=getattr(plan, "explain_text", root.explain()),
        )


# ---------------------------------------------------------------------------
# maintenance-plan verification
# ---------------------------------------------------------------------------

def verify_maintenance_plan(db: Database, mplan: Any) -> list[PlanFinding]:
    """Statically check a maintenance lowering (:mod:`repro.rdb.ivm`).

    *mplan* is the :class:`~repro.rdb.ivm.MaintenancePlan` the
    maintenance compiler produced.  The invariants, per delta rule:

    * rules cover the plan's FROM names exactly, each over a registered
      relation;
    * the rule's join-completion levels cover every *other* FROM name
      exactly once, never the delta relation itself;
    * every WHERE conjunct is consumed exactly once (as an own filter,
      an equality binding, or a level residual), so no predicate is
      dropped or double-applied;
    * own filters reference only the delta relation; binding value
      expressions reference only relations bound before their level;
      binding and residual conjuncts reference only relations bound at
      their level; binding columns exist in the level's schema.
    """
    findings: list[PlanFinding] = []

    def bad(detail: str) -> None:
        findings.append(PlanFinding(CHECK_MAINTENANCE, detail))

    names = tuple(mplan.names)
    if not names or len(set(names)) != len(names):
        bad(f"FROM names must be non-empty and unique, got {names!r}")
        return findings
    for name in names:
        if name not in db.tables:
            bad(f"rule target {name!r} is not a registered relation")
    if set(mplan.rules) != set(names):
        bad(
            f"rules cover {sorted(mplan.rules)!r}, the plan's FROM "
            f"names are {sorted(names)!r}"
        )
        return findings
    where = mplan.plan.where
    conjuncts = where.conjuncts() if where is not None else []
    expected = sorted(id(conjunct) for conjunct in conjuncts)
    for delta_name, rule in mplan.rules.items():
        level_names = [level.relation for level in rule.levels]
        if delta_name in level_names:
            bad(f"rule {delta_name!r} joins back against its own deltas")
        if sorted(level_names) != sorted(set(names) - {delta_name}):
            bad(
                f"rule {delta_name!r} completes over {level_names!r}, "
                f"expected the other FROM names exactly once each"
            )
        consumed: list[int] = [id(expr) for expr in rule.own]
        for expr in rule.own:
            qualifiers = {
                qualifier for qualifier, _ in expr.columns()
                if qualifier is not None
            }
            if not qualifiers <= {delta_name}:
                bad(
                    f"rule {delta_name!r} own filter {expr.to_sql()} "
                    f"references {sorted(qualifiers)!r}"
                )
        bound = {delta_name}
        for level in rule.levels:
            schema_columns: Optional[set] = None
            if level.relation in db.tables:
                schema_columns = set(
                    db.relation(level.relation).attribute_names
                )
            here = bound | {level.relation}
            for column, value_expr, conjunct in level.bindings:
                consumed.append(id(conjunct))
                if schema_columns is not None and column not in schema_columns:
                    bad(
                        f"rule {delta_name!r} binds unknown column "
                        f"{level.relation}.{column}"
                    )
                value_quals = {
                    qualifier for qualifier, _ in value_expr.columns()
                    if qualifier is not None
                }
                if not value_quals <= bound:
                    bad(
                        f"rule {delta_name!r} binding value for "
                        f"{level.relation}.{column} references unbound "
                        f"{sorted(value_quals - bound)!r}"
                    )
                conjunct_quals = {
                    qualifier for qualifier, _ in conjunct.columns()
                    if qualifier is not None
                }
                if not conjunct_quals <= here:
                    bad(
                        f"rule {delta_name!r} binding conjunct "
                        f"{conjunct.to_sql()} references unbound "
                        f"{sorted(conjunct_quals - here)!r}"
                    )
            for expr in level.residuals:
                consumed.append(id(expr))
                qualifiers = {
                    qualifier for qualifier, _ in expr.columns()
                    if qualifier is not None
                }
                if not qualifiers <= here:
                    bad(
                        f"rule {delta_name!r} residual {expr.to_sql()} at "
                        f"level {level.relation!r} references unbound "
                        f"{sorted(qualifiers - here)!r}"
                    )
            bound = here
        if sorted(consumed) != expected:
            bad(
                f"rule {delta_name!r} consumes {len(consumed)} "
                f"conjunct(s), the plan has {len(expected)} — every "
                f"WHERE conjunct must be applied exactly once"
            )
    return findings


def verify_maintenance_or_raise(db: Database, mplan: Any) -> None:
    """The maintenance-compile debug hook: verify, count, raise."""
    global _verified_plans
    findings = verify_maintenance_plan(db, mplan)
    _verified_plans += 1
    if findings:
        raise PlanVerificationError(
            [finding.describe() for finding in findings],
            plan_text=mplan.plan.to_sql(),
        )


# ---------------------------------------------------------------------------
# scenario sweep (repro lint --plans)
# ---------------------------------------------------------------------------

@dataclass
class PlanSweepReport:
    """Outcome of verifying every plan a scenario sweep lowers."""

    scenarios: int = 0
    updates_checked: int = 0
    plans_verified: int = 0
    divergences: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        status = "OK" if self.ok else f"{len(self.divergences)} divergence(s)"
        return (
            f"plan verifier: {self.plans_verified} plan(s) verified over "
            f"{self.scenarios} scenario(s) "
            f"({self.updates_checked} update(s)): {status}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenarios": self.scenarios,
            "updates_checked": self.updates_checked,
            "plans_verified": self.plans_verified,
            "divergences": [d.to_dict() for d in self.divergences],
            "ok": self.ok,
        }


def sweep_plans(scenarios: int, seed: int = 0) -> PlanSweepReport:
    """Round-trip seeded scenarios with plan verification armed.

    Every plan lowered anywhere in the sweep — probe queries, rowid
    paths, constraint checks, session applies — passes through
    :func:`verify_or_raise`; a verification failure surfaces as an
    ``exception`` divergence of the scenario run (the generator's
    broad catches exist exactly to report escapes as findings).
    """
    from ..core.scenario_gen import run_many

    before = _verified_plans
    previous = os.environ.get("REPRO_PLAN_VERIFY")
    os.environ["REPRO_PLAN_VERIFY"] = "1"
    try:
        summary = run_many(scenarios, seed=seed)
    finally:
        if previous is None:
            del os.environ["REPRO_PLAN_VERIFY"]
        else:
            os.environ["REPRO_PLAN_VERIFY"] = previous
    return PlanSweepReport(
        scenarios=summary.scenarios,
        updates_checked=summary.updates_checked,
        plans_verified=_verified_plans - before,
        divergences=list(summary.divergences),
    )
