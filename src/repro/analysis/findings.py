"""Typed findings for the static-analysis layers.

The severity vocabulary is shared with the post-translation QA audit
(:mod:`repro.core.qa`): an ``ERROR`` is a broken invariant the build
must not ship, a ``WARNING`` is reported but does not fail the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.qa import SEVERITY_ERROR, SEVERITY_WARNING

__all__ = ["LintFinding", "SEVERITY_ERROR", "SEVERITY_WARNING"]


@dataclass(frozen=True)
class LintFinding:
    """One invariant violation found in a source module."""

    rule: str
    severity: str
    path: str
    line: int
    detail: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}: {self.severity} {self.rule}: {self.detail}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "detail": self.detail,
        }
