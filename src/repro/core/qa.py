"""Post-translation QA: structured audits of a translated plan.

Step 3 produces a :class:`repro.core.datacheck.DataCheckResult` whose
``planned_ops`` are the structured SQL translation.  This module audits
those ops *independently of the translator that built them* — the same
shape as a post-translation QA pass in a content pipeline (typed
ERROR/WARNING findings, per-strategy policies, bounded auto-retry at
the session layer):

* **duplication consistency** (`duplication-consistency`) — dirty
  inserts whose duplicate parts must agree with existing base data: a
  *driving* insert may not duplicate an existing key; a *supporting*
  insert that does must agree attribute-for-attribute; an insert the
  strategy downgraded to ``skip`` must actually have a consistent
  existing tuple to stand in for it.
* **parent-before-child ordering** (`insert-order` /
  `missing-parent`) — an INSERT whose foreign key is satisfied only by
  a *later* INSERT of the same plan violates FK execution order; one
  whose parent neither exists nor is planned at all would be rejected
  by the engine outright.
* **minimized dirty deletes** (`dirty-delete-referenced`) — a
  minimization-produced delete of a shared tuple is only sound when no
  surviving tuple still references it; anything else silently removes
  view content published elsewhere.
* **untouched-relation preservation** (`relation-scope`) — planned ops
  may only write relations the update's anchor nodes bind in the view;
  a write outside that scope would change parts of the view (or base)
  the update never addressed.
* **no-op statements** (`empty-rowid-set` / `stale-rowid`) — DELETEs /
  UPDATEs addressing zero rowids execute as no-ops and are surfaced as
  warnings, as are rowids that vanished between probe and audit (the
  stale-probe-cache signature the session layer retries on).

Findings are :class:`QAFinding` values attached to
``DataCheckResult.qa_findings``.  State-dependent checks (duplication,
dirty deletes, missing parents) audit the *pre-apply* database; when a
result was produced with ``execute=True`` the audit runs in
``applied`` mode and keeps only the state-independent checks, so it
never reports the plan's own effects as violations.

Severities come from :data:`DEFAULT_SEVERITIES`, overridden per
strategy through :data:`POLICIES` (e.g. the internal strategy applies
inserts through the mapping relational view, which completes parent
tuples itself — a missing parent is a warning there, not an error).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Optional

from ..errors import QAError
from ..rdb.database import Database
from .asg import NodeKind, ViewASG
from .translation import TupleDelete, TupleInsert, TupleUpdate
from .update_binding import ResolvedUpdate

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "CHECK_EMPTY_ROWIDS",
    "CHECK_STALE_ROWID",
    "CHECK_INSERT_ORDER",
    "CHECK_MISSING_PARENT",
    "CHECK_DUP_CONSISTENCY",
    "CHECK_DIRTY_DELETE",
    "CHECK_RELATION_SCOPE",
    "DEFAULT_SEVERITIES",
    "POLICIES",
    "QAFinding",
    "QAAuditor",
    "qa_errors",
    "raise_on_error",
]

SEVERITY_ERROR = "ERROR"
SEVERITY_WARNING = "WARNING"

CHECK_EMPTY_ROWIDS = "empty-rowid-set"
CHECK_STALE_ROWID = "stale-rowid"
CHECK_INSERT_ORDER = "insert-order"
CHECK_MISSING_PARENT = "missing-parent"
CHECK_DUP_CONSISTENCY = "duplication-consistency"
CHECK_DIRTY_DELETE = "dirty-delete-referenced"
CHECK_RELATION_SCOPE = "relation-scope"

#: baseline severity per check id
DEFAULT_SEVERITIES = {
    CHECK_EMPTY_ROWIDS: SEVERITY_WARNING,
    CHECK_STALE_ROWID: SEVERITY_WARNING,
    CHECK_INSERT_ORDER: SEVERITY_ERROR,
    CHECK_MISSING_PARENT: SEVERITY_ERROR,
    CHECK_DUP_CONSISTENCY: SEVERITY_ERROR,
    CHECK_DIRTY_DELETE: SEVERITY_ERROR,
    CHECK_RELATION_SCOPE: SEVERITY_ERROR,
}

#: per-strategy severity overrides (strategy -> {check id -> severity})
POLICIES: dict[str, dict[str, str]] = {
    # the mapping relational view completes missing parent tuples while
    # applying, so an unplanned parent is survivable there
    "internal": {CHECK_MISSING_PARENT: SEVERITY_WARNING},
    "hybrid": {},
    "outside": {},
}


@dataclass(frozen=True)
class QAFinding:
    """One structured audit finding over a translated plan."""

    check: str
    severity: str
    detail: str
    relation: str = ""
    #: position in ``DataCheckResult.planned_ops`` (-1: plan-level)
    op_index: int = -1

    def describe(self) -> str:
        where = f" [{self.relation}]" if self.relation else ""
        return f"{self.severity} {self.check}{where}: {self.detail}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "check": self.check,
            "severity": self.severity,
            "detail": self.detail,
            "relation": self.relation,
            "op_index": self.op_index,
        }


def qa_errors(findings: Iterable[QAFinding]) -> list[QAFinding]:
    """The ERROR-severity subset of *findings*."""
    return [f for f in findings if f.severity == SEVERITY_ERROR]


def raise_on_error(findings: Iterable[QAFinding]) -> None:
    """Raise :class:`repro.errors.QAError` if any finding is an ERROR."""
    errors = qa_errors(findings)
    if errors:
        raise QAError(errors)


class QAAuditor:
    """Audits one :class:`DataCheckResult`'s planned ops against view
    semantics, returning structured findings.

    The auditor deliberately re-derives every conclusion from the
    database and schema rather than trusting the translator's notes —
    it is the independent reviewer of the translation, not its echo.
    """

    def __init__(self, db: Database, asg: ViewASG) -> None:
        self.db = db
        self.asg = asg

    # ------------------------------------------------------------------

    def audit(
        self,
        result: Any,
        resolved: Optional[ResolvedUpdate] = None,
        *,
        applied: bool = False,
        strategy: Optional[str] = None,
    ) -> list[QAFinding]:
        """Audit *result* (a ``DataCheckResult``); returns findings.

        ``applied=True`` marks the plan as already executed: checks
        that compare against pre-apply base state are skipped (they
        would flag the plan's own effects).
        """
        ops = list(getattr(result, "planned_ops", ()))
        findings: list[QAFinding] = []
        self._check_rowid_sets(ops, findings, applied)
        self._check_insert_order(ops, findings, applied)
        if not applied:
            self._check_duplication(ops, findings)
            self._check_dirty_deletes(ops, findings)
        self._check_relation_scope(ops, resolved, findings)
        policy = POLICIES.get(strategy or getattr(result, "strategy", ""), {})
        if policy:
            findings = [
                replace(f, severity=policy.get(f.check, f.severity))
                for f in findings
            ]
        return findings

    # ------------------------------------------------------------------
    # no-op statements
    # ------------------------------------------------------------------

    def _check_rowid_sets(
        self, ops: list, findings: list[QAFinding], applied: bool
    ) -> None:
        for index, op in enumerate(ops):
            if not isinstance(op, (TupleDelete, TupleUpdate)):
                continue
            verb = "DELETE" if isinstance(op, TupleDelete) else "UPDATE"
            if not op.rowids:
                findings.append(
                    QAFinding(
                        CHECK_EMPTY_ROWIDS,
                        DEFAULT_SEVERITIES[CHECK_EMPTY_ROWIDS],
                        f"{verb} on {op.relation} addresses zero rowids — "
                        f"the statement is a no-op",
                        relation=op.relation,
                        op_index=index,
                    )
                )
                continue
            if applied or op.relation not in self.db.tables:
                continue
            table = self.db.table(op.relation)
            missing = sorted(r for r in op.rowids if r not in table)
            if missing:
                findings.append(
                    QAFinding(
                        CHECK_STALE_ROWID,
                        DEFAULT_SEVERITIES[CHECK_STALE_ROWID],
                        f"{verb} on {op.relation} addresses vanished "
                        f"rowid(s) {missing} — a stale probe result fed "
                        f"this plan",
                        relation=op.relation,
                        op_index=index,
                    )
                )

    # ------------------------------------------------------------------
    # parent-before-child INSERT ordering
    # ------------------------------------------------------------------

    def _check_insert_order(
        self, ops: list, findings: list[QAFinding], applied: bool
    ) -> None:
        inserts = [
            (index, op)
            for index, op in enumerate(ops)
            if isinstance(op, TupleInsert)
        ]
        for position, (index, op) in enumerate(inserts):
            if op.relation not in self.db.schema or op.role == "skip":
                continue
            for fk in self.db.relation(op.relation).foreign_keys:
                values = tuple(op.values.get(column) for column in fk.columns)
                if any(value is None for value in values):
                    continue  # NULL FK references nothing

                def provides(other: TupleInsert) -> bool:
                    return other.relation == fk.ref_relation and all(
                        other.values.get(ref_column) == value
                        for ref_column, value in zip(fk.ref_columns, values)
                    )

                if any(provides(other) for _, other in inserts[:position]):
                    continue  # parent planned earlier: correct order
                key = dict(zip(fk.ref_columns, values))
                if self.db.find_rowids(fk.ref_relation, key):
                    continue  # parent already in the base data
                later = [
                    later_index
                    for later_index, other in inserts[position + 1:]
                    if provides(other)
                ]
                if later:
                    findings.append(
                        QAFinding(
                            CHECK_INSERT_ORDER,
                            DEFAULT_SEVERITIES[CHECK_INSERT_ORDER],
                            f"INSERT into {op.relation} (op {index}) runs "
                            f"before the {fk.ref_relation} INSERT (op "
                            f"{later[0]}) that provides its FK "
                            f"{tuple(fk.columns)} -> {tuple(fk.ref_columns)}",
                            relation=op.relation,
                            op_index=index,
                        )
                    )
                elif not applied:
                    findings.append(
                        QAFinding(
                            CHECK_MISSING_PARENT,
                            DEFAULT_SEVERITIES[CHECK_MISSING_PARENT],
                            f"INSERT into {op.relation} references a "
                            f"{fk.ref_relation} tuple {key!r} that neither "
                            f"exists nor is inserted by this plan",
                            relation=op.relation,
                            op_index=index,
                        )
                    )

    # ------------------------------------------------------------------
    # duplication consistency (dirty inserts)
    # ------------------------------------------------------------------

    @staticmethod
    def _agrees(planned: dict[str, Any], existing: dict[str, Any]) -> bool:
        return all(
            existing.get(attribute) == value
            for attribute, value in planned.items()
            if value is not None
        )

    def _check_duplication(self, ops: list, findings: list[QAFinding]) -> None:
        for index, op in enumerate(ops):
            if not isinstance(op, TupleInsert) or op.relation not in self.db.schema:
                continue
            key = self.db.relation(op.relation).primary_key
            if key is None:
                continue
            key_values = {
                column: op.values.get(column) for column in key.columns
            }
            if any(value is None for value in key_values.values()):
                continue
            rowids = self.db.find_rowids(op.relation, key_values)
            if op.role == "skip":
                if not rowids:
                    findings.append(
                        QAFinding(
                            CHECK_DUP_CONSISTENCY,
                            DEFAULT_SEVERITIES[CHECK_DUP_CONSISTENCY],
                            f"INSERT into {op.relation} was skipped as a "
                            f"consistent duplicate, but no existing tuple "
                            f"has key {tuple(key_values.values())!r}",
                            relation=op.relation,
                            op_index=index,
                        )
                    )
                    continue
                existing = self.db.row(op.relation, min(rowids))
                if not self._agrees(op.values, existing):
                    findings.append(
                        QAFinding(
                            CHECK_DUP_CONSISTENCY,
                            DEFAULT_SEVERITIES[CHECK_DUP_CONSISTENCY],
                            f"skipped {op.relation} INSERT disagrees with "
                            f"the existing tuple it relies on "
                            f"(key {tuple(key_values.values())!r})",
                            relation=op.relation,
                            op_index=index,
                        )
                    )
                continue
            if not rowids:
                continue
            if op.role == "driving":
                findings.append(
                    QAFinding(
                        CHECK_DUP_CONSISTENCY,
                        DEFAULT_SEVERITIES[CHECK_DUP_CONSISTENCY],
                        f"driving INSERT into {op.relation} duplicates an "
                        f"existing tuple (key {tuple(key_values.values())!r}) "
                        f"— the new region would not be new",
                        relation=op.relation,
                        op_index=index,
                    )
                )
                continue
            existing = self.db.row(op.relation, min(rowids))
            if not self._agrees(op.values, existing):
                findings.append(
                    QAFinding(
                        CHECK_DUP_CONSISTENCY,
                        DEFAULT_SEVERITIES[CHECK_DUP_CONSISTENCY],
                        f"supporting {op.relation} INSERT duplicates key "
                        f"{tuple(key_values.values())!r} but disagrees with "
                        f"the existing tuple's values",
                        relation=op.relation,
                        op_index=index,
                    )
                )

    # ------------------------------------------------------------------
    # minimized dirty deletes
    # ------------------------------------------------------------------

    def _check_dirty_deletes(self, ops: list, findings: list[QAFinding]) -> None:
        deleted: dict[str, set[int]] = {}
        for op in ops:
            if isinstance(op, TupleDelete):
                deleted.setdefault(op.relation, set()).update(op.rowids)
        for index, op in enumerate(ops):
            if not isinstance(op, TupleDelete) or op.kind != "minimized":
                continue
            if op.relation not in self.db.schema:
                continue
            table = self.db.table(op.relation)
            for rowid in sorted(op.rowids):
                if rowid not in table:
                    continue  # stale rowid: reported by _check_rowid_sets
                target = self.db.row(op.relation, rowid)
                for fk in self.db.schema.foreign_keys_into(op.relation):
                    key = {
                        column: target.get(ref_column)
                        for column, ref_column in zip(fk.columns, fk.ref_columns)
                    }
                    if any(value is None for value in key.values()):
                        continue
                    referrers = self.db.find_rowids(fk.relation_name, key)
                    referrers -= deleted.get(fk.relation_name, set())
                    if referrers:
                        findings.append(
                            QAFinding(
                                CHECK_DIRTY_DELETE,
                                DEFAULT_SEVERITIES[CHECK_DIRTY_DELETE],
                                f"minimized DELETE of {op.relation} rowid "
                                f"{rowid} removes a tuple still referenced "
                                f"by surviving {fk.relation_name} tuple(s) "
                                f"{sorted(referrers)} — view content "
                                f"published elsewhere would disappear",
                                relation=op.relation,
                                op_index=index,
                            )
                        )
                        break

    # ------------------------------------------------------------------
    # untouched-relation preservation
    # ------------------------------------------------------------------

    def _allowed_relations(
        self, resolved: Optional[ResolvedUpdate]
    ) -> Optional[set[str]]:
        """Relations the update's anchor nodes may write: the cumulative
        UC bindings of each anchor's subject subtree (join-completion
        may touch any relation bound on the nesting path)."""
        if resolved is None:
            return None
        allowed: set[str] = set()
        for op in resolved.ops:
            node = op.node
            if node is None:
                return None  # unresolved anchor: scope undecidable
            subject = node
            while subject.kind not in (NodeKind.INTERNAL, NodeKind.ROOT):
                if subject.parent is None:
                    break
                subject = subject.parent
            for member in subject.iter_subtree():
                allowed |= set(member.uc_binding)
        return allowed or None

    def _check_relation_scope(
        self,
        ops: list,
        resolved: Optional[ResolvedUpdate],
        findings: list[QAFinding],
    ) -> None:
        allowed = self._allowed_relations(resolved)
        if allowed is None:
            return
        for index, op in enumerate(ops):
            relation = getattr(op, "relation", None)
            if relation is None or relation in allowed:
                continue
            findings.append(
                QAFinding(
                    CHECK_RELATION_SCOPE,
                    DEFAULT_SEVERITIES[CHECK_RELATION_SCOPE],
                    f"planned op writes {relation}, which none of the "
                    f"update's anchor nodes bind (allowed: "
                    f"{sorted(allowed)}) — untouched relations must be "
                    f"preserved",
                    relation=relation,
                    op_index=index,
                )
            )
