"""Step 3 — data-driven translatability checking (Section 6).

Two checks need base data:

* the **update context check** (6.1): does the view element being
  inserted into / deleted from actually exist?  A probe query composed
  from the view query and the update's predicates decides (PQ1/PQ2);
* the **update point check** (6.2): does the updated data itself
  conflict with base data (key conflicts for inserts, missing tuples
  for deletes)?

Three strategies implement the point check, mirroring the paper:

* **internal** (6.2.1): map the XML view to the flat relational view of
  Fig. 11 and update through it.  Requires retrieving *all* attributes
  of *all* joined relations to assemble the full view tuple — the
  inefficiency Fig. 15 measures.
* **hybrid** (6.2.2): translate into single-table statements, execute
  them inside a transaction and let the engine's constraint errors (or
  "zero rows" warnings) reveal conflicts; roll back on failure.  Joins
  run against indexed base tables; no intermediate materialization.
* **outside** (6.2.2): materialize the context probe once (an
  *unindexed* temp table), probe each target relation against it before
  issuing any DML, and skip statements whose probes come back empty —
  detecting failed cases early (Fig. 17) at the price of joining
  through the unindexed materialization in successful ones (Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import ConstraintViolation, UFilterError
from ..rdb.database import Database
from ..rdb.optimizer import choose_index
from .asg import NodeKind, ViewASG
from .star import (
    CONDITION_DUP_CONSISTENCY,
    CONDITION_MINIMIZATION,
    StarVerdict,
)
from .translation import (
    ProbeResult,
    Translator,
    TupleDelete,
    TupleInsert,
)
from .update_binding import OpResolution, ResolvedUpdate

__all__ = ["DataCheckResult", "DataChecker", "STRATEGIES"]

STRATEGIES = ("internal", "hybrid", "outside")

Row = dict[str, Any]


PlannedOp = Any  # TupleDelete | TupleInsert | TupleUpdate, in execution order


@dataclass
class DataCheckResult:
    strategy: str
    ok: bool = True
    conflict: str = ""
    zero_effect: bool = False
    probes: list[str] = field(default_factory=list)
    statements: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    rows_affected: int = 0
    context_sql: str = ""
    context_rows: int = 0
    #: lazily rendered by :attr:`context_plan` — a thunk until read
    _context_plan: Any = field(default="", repr=False)
    #: the structured translation, in execution order — batch sessions
    #: use these for conflict detection and the deferred apply phase
    planned_ops: list[PlannedOp] = field(default_factory=list)
    #: structured findings from the post-translation QA audit
    #: (:mod:`repro.core.qa`); populated only when the check ran with
    #: ``qa=True``
    qa_findings: list[Any] = field(default_factory=list)

    @property
    def context_plan(self) -> str:
        """EXPLAIN rendering of the context probe's physical plan — the
        operator tree with per-node row estimates (diagnostics for "why
        was this check slow/empty").  Rendered lazily on first read so
        checks that never look at it pay nothing; the rendering reflects
        the plan cache *at read time* — if DML applied after the check
        crossed the re-planning threshold, the tree shown is the one the
        probe would compile to now, not necessarily the one it ran."""
        if callable(self._context_plan):
            try:
                self._context_plan = self._context_plan()
            # Diagnostics-only lazy EXPLAIN: a failed rendering must
            # degrade to a placeholder string, not fail the check that
            # already succeeded (SimulatedCrash is a BaseException and
            # still propagates past this handler).
            # repro: allow[REP003]
            except Exception as exc:  # schema moved on (e.g. DROP TABLE)
                self._context_plan = f"(context plan unavailable: {exc})"
        return self._context_plan

    def mutated_relations(self) -> set[str]:
        """Relations the planned ops write (direct targets only)."""
        return {
            op.relation
            for op in self.planned_ops
            if getattr(op, "relation", None) is not None
        }


class DataChecker:
    """Runs Step 3 and (optionally) applies the translation."""

    def __init__(self, db: Database, asg: ViewASG) -> None:
        self.db = db
        self.asg = asg
        self.translator = Translator(db, asg)
        self._temp_counter = 0
        self._expand_cascades = False
        self._index_temp_tables = False

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def check_and_translate(
        self,
        resolved: ResolvedUpdate,
        verdict: StarVerdict,
        strategy: str = "outside",
        execute: bool = True,
        expand_cascades: bool = False,
        index_temp_tables: bool = False,
        qa: bool = False,
    ) -> DataCheckResult:
        if strategy not in STRATEGIES:
            raise UFilterError(
                f"unknown strategy {strategy!r}; pick one of {STRATEGIES}"
            )
        result = DataCheckResult(strategy=strategy)
        self._expand_cascades = expand_cascades
        self._index_temp_tables = index_temp_tables

        # ---- update context check (6.1) --------------------------------
        target = resolved.target
        assert target is not None
        context: Optional[ProbeResult] = None
        if target.kind is not NodeKind.ROOT:
            # hybrid fetches only what the translation needs (U2/U3 are
            # single-table statements); internal must assemble the full
            # view tuple; outside materializes the full probe result so
            # it can be reused (the paper's TAB_book)
            context = self.translator.run_probe(
                target, resolved, narrow=(strategy == "hybrid")
            )
            result.context_sql = context.sql
            result.context_rows = len(context.rows)
            narrow = strategy == "hybrid"
            result._context_plan = (
                lambda: self.translator.explain_probe(
                    target, resolved, narrow=narrow
                )
            )
            result.probes.append(context.sql)
            if context.empty:
                result.ok = False
                result.conflict = (
                    f"context check: no instance of <{target.name}> "
                    f"satisfies the update's predicates — the element is "
                    f"not in the view"
                )
                return result

        # ---- update point check + translation (6.2) ---------------------
        conditions = set()
        if verdict.condition:
            conditions = {c.strip() for c in verdict.condition.split("+")}
        minimize = CONDITION_MINIMIZATION in conditions
        consistency = CONDITION_DUP_CONSISTENCY in conditions

        if strategy == "hybrid":
            self._run_hybrid(resolved, context, minimize, execute, result)
        elif strategy == "outside":
            self._run_outside(resolved, context, minimize, execute, result)
        else:
            self._run_internal(resolved, context, execute, result)
        if consistency and result.ok:
            result.notes.append(
                "duplication consistency verified against existing tuples"
            )
        if qa:
            self._run_qa(result, resolved, applied=execute)
        return result

    def _run_qa(
        self,
        result: DataCheckResult,
        resolved: ResolvedUpdate,
        *,
        applied: bool,
    ) -> None:
        """Post-translation QA audit (:mod:`repro.core.qa`).

        Pre-apply (``execute=False``) ERROR findings demote the result
        to a conflict — the plan never reaches the apply phase.  After
        an apply, only state-independent checks ran; ERRORs there are
        surfaced on :attr:`DataCheckResult.qa_findings` for the caller
        (the session layer raises / retries on them).
        """
        from .qa import QAAuditor, qa_errors

        auditor = QAAuditor(self.db, self.asg)
        result.qa_findings = auditor.audit(
            result, resolved, applied=applied, strategy=result.strategy
        )
        errors = qa_errors(result.qa_findings)
        if errors and not applied and result.ok:
            result.ok = False
            result.conflict = "QA: " + "; ".join(
                finding.describe() for finding in errors[:3]
            )

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def _context_row(self, context: Optional[ProbeResult]) -> Optional[Row]:
        if context is None or context.empty:
            return None
        return context.rows[0]

    def _op_probe(
        self, op: OpResolution, resolved: ResolvedUpdate
    ) -> ProbeResult:
        assert op.node is not None
        return self.translator.run_probe(op.node, resolved)

    def _apply_deletes(
        self, deletes: list[TupleDelete], execute: bool, result: DataCheckResult
    ) -> None:
        for delete in deletes:
            result.statements.append(delete.sql())
            result.planned_ops.append(delete)
            if execute and delete.rowids:
                self.db.faults.hit("datacheck.delete", delete.relation)
                result.rows_affected += self.db.delete(
                    delete.relation, delete.rowids
                )

    def _insert_tuple(
        self, insert: TupleInsert, execute: bool, result: DataCheckResult
    ) -> None:
        result.statements.append(insert.sql())
        result.planned_ops.append(insert)
        if execute:
            self.db.faults.hit("datacheck.insert", insert.relation)
            self.db.insert(insert.relation, insert.values)
            result.rows_affected += 1

    def _is_leaf_replace(self, op: OpResolution) -> bool:
        return (
            op.kind == "replace"
            and op.node is not None
            and op.node.kind in (NodeKind.TAG, NodeKind.LEAF)
        )

    def _apply_leaf_replace(
        self,
        op: OpResolution,
        resolved: ResolvedUpdate,
        execute: bool,
        result: DataCheckResult,
    ) -> None:
        """REPLACE over a simple element becomes a one-attribute UPDATE."""
        probe = self.translator.run_probe(op.node, resolved)
        result.probes.append(probe.sql)
        update = self.translator.build_leaf_replace(op, probe)
        result.statements.append(update.sql())
        result.planned_ops.append(update)
        if not update.rowids:
            result.zero_effect = True
            return
        if execute:
            try:
                self.db.faults.hit("datacheck.replace", update.relation)
                for rowid in sorted(update.rowids):
                    self.db.update(update.relation, rowid, update.changes)
                    result.rows_affected += 1
            except ConstraintViolation as exc:
                result.ok = False
                result.conflict = f"replace rejected by the engine: {exc}"

    def _consistent_with_existing(
        self, insert: TupleInsert, existing: Row
    ) -> bool:
        for attribute, value in insert.values.items():
            if value is None:
                continue
            if existing.get(attribute) != value:
                return False
        return True

    # ------------------------------------------------------------------
    # hybrid strategy
    # ------------------------------------------------------------------

    def _run_hybrid(
        self,
        resolved: ResolvedUpdate,
        context: Optional[ProbeResult],
        minimize: bool,
        execute: bool,
        result: DataCheckResult,
    ) -> None:
        """Translate blindly, execute, trust the engine's errors."""
        own_txn = not self.db.txn.active
        if execute and own_txn:
            self.db.begin()
        try:
            for op in resolved.ops:
                if self._is_leaf_replace(op):
                    self._apply_leaf_replace(op, resolved, execute, result)
                elif op.kind == "delete":
                    # probes here only *feed* the translation (the paper
                    # reuses the context result); emptiness is NOT
                    # checked — the engine's zero-rows warning handles it
                    affected_before = result.rows_affected
                    if self._expand_cascades:
                        self._hybrid_expanded_delete(
                            op, resolved, minimize, execute, result
                        )
                    else:
                        probe = self._op_probe(op, resolved)
                        deletes, notes = self.translator.build_deletes(
                            op, probe, minimize
                        )
                        result.notes.extend(notes)
                        self._apply_deletes(deletes, execute, result)
                    if result.rows_affected == affected_before:
                        result.zero_effect = True
                        result.notes.append(
                            "warning: zero tuples deleted"
                        )
                elif op.kind in ("insert", "replace"):
                    if op.kind == "replace":
                        probe = self._op_probe(op, resolved)
                        deletes, notes = self.translator.build_deletes(
                            op, probe, minimize
                        )
                        result.notes.extend(notes)
                        self._apply_deletes(deletes, execute, result)
                    inserts = self.translator.build_inserts(
                        op, self._context_row(context)
                    )
                    for insert in inserts:
                        try:
                            self._insert_tuple(insert, execute, result)
                        except ConstraintViolation as exc:
                            if insert.role == "supporting":
                                existing = self._existing_row(insert)
                                if existing is not None and (
                                    self._consistent_with_existing(insert, existing)
                                ):
                                    result.notes.append(
                                        f"{insert.relation}: consistent "
                                        f"duplicate — kept existing tuple"
                                    )
                                    continue
                            raise
            if execute and own_txn:
                self.db.commit()
        except ConstraintViolation as exc:
            result.ok = False
            result.conflict = f"engine error: {exc}"
            if execute and own_txn:
                undone = self.db.rollback()
                result.notes.append(f"rolled back {undone} change(s)")

    def _hybrid_expanded_delete(
        self,
        op: OpResolution,
        resolved: ResolvedUpdate,
        minimize: bool,
        execute: bool,
        result: DataCheckResult,
    ) -> None:
        """Expanded mode: one DELETE per subtree relation, deepest first.

        Hybrid pays for *every* statement — the wasted deletes of the
        failed cases in Fig. 17 — because nothing is probed up front.
        """
        subject, members = self.translator.subtree_internal_nodes(op)
        for member in reversed(members):  # deepest first
            probe = self.translator.run_probe(member, resolved, narrow=True)
            deletes, notes = self.translator.member_deletes(
                member, subject, probe, minimize
            )
            result.notes.extend(notes)
            self._apply_deletes_as_statements(deletes, execute, result)

    def _apply_deletes_as_statements(
        self, deletes: list[TupleDelete], execute: bool, result: DataCheckResult
    ) -> None:
        """Execute deletes the way a DELETE *statement* would.

        The hybrid strategy ships ``DELETE ... WHERE key IN (subquery)``
        statements to the engine; each one scans its target relation to
        evaluate the membership predicate — paid even when zero rows
        qualify.  (The outside strategy deletes by ROWID because its
        probe already located the tuples.)
        """
        for delete in deletes:
            result.statements.append(delete.sql())
            result.planned_ops.append(delete)
            if not execute:
                continue
            table = self.db.table(delete.relation)
            matched = []
            for rowid in table.rowids():  # the statement's scan
                self.db.stats["rows_scanned"] += 1
                if rowid in delete.rowids:
                    matched.append(rowid)
            if matched:
                self.db.faults.hit("datacheck.delete", delete.relation)
                result.rows_affected += self.db.delete(delete.relation, matched)

    def _existing_row(self, insert: TupleInsert) -> Optional[Row]:
        probe = self.translator.key_probe(insert)
        if probe is None or probe.empty:
            return None
        row = dict(probe.rows[0])
        row.pop("ROWID", None)
        return row

    # ------------------------------------------------------------------
    # outside strategy
    # ------------------------------------------------------------------

    def _materialize_context(self, context: Optional[ProbeResult]) -> Optional[str]:
        """Write the context probe result into a temp table.

        Plain checks materialize it *unindexed* (the paper's TAB_book);
        with ``index_temp_tables`` the primary-key columns of every
        relation present get an ad-hoc hash index so later probes join
        by index nested loop instead of pure nested loops.
        """
        if context is None:
            return None
        self._temp_counter += 1
        name = f"TAB_ctx_{self._temp_counter}"
        columns: list[str] = []
        rows: list[Row] = []
        for row in context.rows:
            converted = {
                key.replace(".", "__"): value for key, value in row.items()
            }
            rows.append(converted)
            if not columns:
                columns = list(converted)
        if not columns and context.rows == []:
            columns = ["__empty__"]
        index_columns = (
            self._temp_index_columns(columns) if self._index_temp_tables else []
        )
        self.db.create_temp_table(name, columns, rows, index_columns=index_columns)
        return name

    def _temp_index_columns(self, columns: list[str]) -> list[list[str]]:
        """Per-relation primary-key column lists present in the temp table."""
        present = set(columns)
        relations = sorted(
            {column.split("__", 1)[0] for column in columns if "__" in column}
        )
        index_columns: list[list[str]] = []
        for relation in relations:
            if relation not in self.db.schema:
                continue
            key = self.db.relation(relation).primary_key
            if key is None:
                continue
            converted = [f"{relation}__{column}" for column in key.columns]
            if all(column in present for column in converted):
                index_columns.append(converted)
        return index_columns

    def _run_outside(
        self,
        resolved: ResolvedUpdate,
        context: Optional[ProbeResult],
        minimize: bool,
        execute: bool,
        result: DataCheckResult,
    ) -> None:
        """Probe first against the materialization, then issue DML."""
        temp_name = self._materialize_context(context)
        if temp_name is not None:
            result.notes.append(
                f"materialized {len(context.rows) if context else 0} context "
                f"row(s) into {temp_name}"
            )
        try:
            for op in resolved.ops:
                if self._is_leaf_replace(op):
                    self._apply_leaf_replace(op, resolved, execute, result)
                elif op.kind == "delete":
                    if self._expand_cascades:
                        self._outside_expanded_delete(
                            op, resolved, minimize, execute, temp_name, result
                        )
                        continue
                    probe = self._outside_delete_probe(op, resolved, temp_name)
                    result.probes.append(probe.sql)
                    if probe.empty:
                        result.zero_effect = True
                        result.notes.append(
                            "probe found no tuples to delete — statement "
                            "not issued"
                        )
                        continue
                    deletes, notes = self.translator.build_deletes(
                        op, probe, minimize
                    )
                    result.notes.extend(notes)
                    self._apply_deletes(deletes, execute, result)
                elif op.kind in ("insert", "replace"):
                    if op.kind == "replace":
                        probe = self._outside_delete_probe(op, resolved, temp_name)
                        result.probes.append(probe.sql)
                        if not probe.empty:
                            deletes, notes = self.translator.build_deletes(
                                op, probe, minimize
                            )
                            result.notes.extend(notes)
                            self._apply_deletes(deletes, execute, result)
                    inserts = self.translator.build_inserts(
                        op, self._context_row(context)
                    )
                    if not self._outside_insert_probes(inserts, result):
                        return
                    for insert in inserts:
                        if insert.role == "skip":
                            continue
                        self._insert_tuple(insert, execute, result)
        finally:
            if temp_name is not None:
                self.db.drop_table(temp_name)

    def _outside_expanded_delete(
        self,
        op: OpResolution,
        resolved: ResolvedUpdate,
        minimize: bool,
        execute: bool,
        temp_name: Optional[str],
        result: DataCheckResult,
    ) -> None:
        """Expanded mode, probing TOP first with early termination.

        An empty probe at some level implies every deeper level is empty
        too, so the remaining probes and statements are skipped — the
        early failure detection the paper credits the outside strategy
        with (Fig. 17).
        """
        subject, members = self.translator.subtree_internal_nodes(op)
        planned: list[tuple] = []
        for member in members:  # top first
            probe = self.translator.run_probe(member, resolved, narrow=True)
            result.probes.append(probe.sql)
            if temp_name is not None:
                probe = self._verify_against_temp(probe, temp_name)
            if probe.empty:
                result.zero_effect = result.zero_effect or not planned
                result.notes.append(
                    f"probe at <{member.name}> found nothing — deeper "
                    f"statements skipped"
                )
                break
            planned.append((member, probe))
        for member, probe in reversed(planned):  # delete deepest first
            deletes, notes = self.translator.member_deletes(
                member, subject, probe, minimize
            )
            result.notes.extend(notes)
            self._apply_deletes(deletes, execute, result)

    def _verify_against_temp(
        self, probe: ProbeResult, temp_name: str
    ) -> ProbeResult:
        """Membership check against the materialization.

        Only the columns both sides carry are compared (probes may be
        narrow while the materialization holds the full view tuple).
        A probe sharing no columns with the materialization cannot be
        filtered by it and passes through unchanged.

        When the temp table carries an ad-hoc index over a subset of
        the shared columns, the check runs as an index nested loop —
        one hash lookup per probe row plus a residual comparison.
        Without an index, a transient hash table over the shared
        columns is built once (the same degradation path
        ``execute_select`` handles with its hash-join operator), so an
        unindexed TAB_book costs one pass instead of |probe| × |temp|.
        """
        temp_rows = self.db.rows(temp_name)
        if not probe.rows:
            return probe
        shared = [
            key
            for key in temp_rows[0]
            if not key.endswith("__ROWID")
            and key.replace("__", ".", 1) in probe.rows[0]
        ] if temp_rows else []
        if not shared:
            return probe
        # same rule the planner applies: widest index the shared columns pin
        index = choose_index(self.db, temp_name, set(shared))
        verified: list[Row] = []
        if index is not None:
            temp_table = self.db.table(temp_name)
            residual = [key for key in shared if key not in index.columns]
            for row in probe.rows:
                lookup_key = tuple(
                    row.get(column.replace("__", ".", 1))
                    for column in index.columns
                )
                for rowid in sorted(index.lookup(lookup_key)):
                    temp_row = temp_table.get(rowid)
                    self.db.stats["rows_scanned"] += 1
                    if all(
                        row.get(key.replace("__", ".", 1)) == temp_row[key]
                        for key in residual
                    ):
                        verified.append(row)
                        break
            return ProbeResult(sql=probe.sql, rows=verified)
        # no index: one transient hash build over the materialization
        self.db.stats["hash_joins"] += 1
        members: set[tuple] = set()
        for temp_row in temp_rows:
            self.db.stats["rows_scanned"] += 1
            members.add(tuple(temp_row[key] for key in shared))
        probe_keys = [key.replace("__", ".", 1) for key in shared]
        for row in probe.rows:
            if tuple(row.get(key) for key in probe_keys) in members:
                verified.append(row)
        return ProbeResult(sql=probe.sql, rows=verified)

    def _outside_delete_probe(
        self,
        op: OpResolution,
        resolved: ResolvedUpdate,
        temp_name: Optional[str],
    ) -> ProbeResult:
        """PQ4-style probe: join the target against the materialization.

        The temp table carries no indexes, so the join is a raw nested
        loop — the cost the paper attributes to the outside strategy in
        successful cases.  An empty materialization short-circuits.
        """
        assert op.node is not None
        if temp_name is not None and self.db.count(temp_name) == 0:
            return ProbeResult(
                sql=f"-- {temp_name} is empty; probe skipped", rows=[]
            )
        probe = self.translator.run_probe(op.node, resolved)
        if temp_name is None:
            return probe
        verified = self._verify_against_temp(probe, temp_name)
        sql = (
            f"SELECT ROWID FROM {op.node.name} WHERE ... IN "
            f"(SELECT ... FROM {temp_name})"
        )
        return ProbeResult(sql=sql, rows=verified.rows)

    def _outside_insert_probes(
        self, inserts: list[TupleInsert], result: DataCheckResult
    ) -> bool:
        """PQ3-style key probes before inserting.  False on conflict."""
        for insert in inserts:
            probe = self.translator.key_probe(insert)
            if probe is None:
                continue
            result.probes.append(probe.sql)
            if probe.empty:
                continue
            existing = dict(probe.rows[0])
            existing.pop("ROWID", None)
            if insert.role == "driving":
                result.ok = False
                result.conflict = (
                    f"data conflict: a {insert.relation} tuple with the "
                    f"same key already exists"
                )
                return False
            if self._consistent_with_existing(insert, existing):
                insert.role = "skip"
                result.notes.append(
                    f"{insert.relation}: consistent duplicate — kept "
                    f"existing tuple"
                )
            else:
                result.ok = False
                result.conflict = (
                    f"duplication consistency violated: existing "
                    f"{insert.relation} tuple disagrees with the inserted "
                    f"values"
                )
                return False
        return True

    # ------------------------------------------------------------------
    # internal strategy
    # ------------------------------------------------------------------

    def _run_internal(
        self,
        resolved: ResolvedUpdate,
        context: Optional[ProbeResult],
        execute: bool,
        result: DataCheckResult,
    ) -> None:
        """Update through the mapping relational view (Fig. 11)."""
        from ..publishing.relational_view import MappingRelationalView

        view = MappingRelationalView(self.db, self.asg)
        result.notes.append(view.create_view_sql())
        for op in resolved.ops:
            if self._is_leaf_replace(op):
                self._apply_leaf_replace(op, resolved, execute, result)
            elif op.kind == "insert":
                # the full view tuple needs *all* attributes of *all*
                # other relations: a wide probe (Fig. 15's overhead)
                wide: Optional[Row] = self._context_row(context)
                if wide is None and resolved.target is not None:
                    if resolved.target.kind is not NodeKind.ROOT:
                        probe = self.translator.run_probe(
                            resolved.target, resolved
                        )
                        result.probes.append(probe.sql)
                        wide = probe.rows[0] if probe.rows else None
                inserts = self.translator.build_inserts(op, wide)
                # the flat view cannot tell "new child element" apart
                # from "new descendant under an existing child": a
                # driving tuple whose key already exists would be
                # silently skipped by the LEFT-JOIN decomposition even
                # though the XML semantics demand a NEW element — probe
                # the driving keys first (same rule as the outside
                # strategy's PQ3)
                for insert in inserts:
                    if insert.role != "driving":
                        continue
                    probe = self.translator.key_probe(insert)
                    if probe is None or probe.empty:
                        continue
                    result.probes.append(probe.sql)
                    result.ok = False
                    result.conflict = (
                        f"data conflict: a {insert.relation} tuple with "
                        f"the same key already exists"
                    )
                    return
                result.planned_ops.extend(inserts)
                view_row: Row = {}
                if wide is not None:
                    view_row.update(
                        {k: v for k, v in wide.items() if not k.endswith(".ROWID")}
                    )
                for insert in inserts:
                    for attribute, value in insert.values.items():
                        if value is not None:
                            view_row[f"{insert.relation}.{attribute}"] = value
                try:
                    if execute:
                        issued = view.insert(view_row)
                        result.statements.extend(issued)
                        result.rows_affected += len(issued)
                    else:
                        result.statements.append(
                            f"INSERT INTO MappingView VALUES ({len(view_row)} cols)"
                        )
                except ConstraintViolation as exc:
                    result.ok = False
                    result.conflict = f"relational view rejected the update: {exc}"
                    return
            elif op.kind == "delete":
                probe = self._op_probe(op, resolved)
                result.probes.append(probe.sql)
                if probe.empty:
                    result.zero_effect = True
                    continue
                deletes, notes = self.translator.build_deletes(
                    op, probe, minimize=True
                )
                result.notes.extend(notes)
                self._apply_deletes(deletes, execute, result)
            else:
                raise UFilterError(
                    "the internal strategy supports insert and delete only"
                )
