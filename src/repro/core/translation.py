"""The update translation engine (and the probe-query composer).

Given an update that survived Steps 1–2, this module:

* composes the **context probe query** — the view query joined with the
  update's predicates (PQ1/PQ2 in the paper), returning the base tuples
  (values + rowids) behind the view elements the update anchors at;
* builds the **translated SQL**: single-table DELETEs addressing the
  node's *clean source* relation, or parent-first INSERT sequences whose
  missing values are completed from the probe result and the join
  conditions (U1/U2/U3 in the paper);
* applies **translation minimization** for dirty deletes (shared tuples
  are only deleted when nothing else references them — and never when
  the relation is republished elsewhere in the view);
* enforces **duplication consistency** for dirty inserts (duplicate
  parts must agree with existing data; the driving relation must be new).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..errors import TypeMismatchError, UFilterError
from ..rdb.database import Database
from ..rdb.expr import ColumnRef, Comparison, Expr, Literal, conjoin
from ..rdb.ivm import (
    BULK,
    UPDATE,
    DeltaEvent,
    IncrementalView,
    IvmError,
    ivm_forced,
)
from ..rdb.plan import FromItem, OutputColumn, SelectPlan, execute_select
from ..rdb.types import sql_literal
from ..xml.nodes import XMLElement
from .asg import NodeKind, ValueConstraint, ViewASG, ViewNode
from .update_binding import OpResolution, ResolvedUpdate

__all__ = [
    "ProbeCache",
    "ProbeResult",
    "TupleInsert",
    "TupleDelete",
    "TupleUpdate",
    "Translator",
]

Row = dict[str, Any]


@dataclass
class ProbeResult:
    """Rows returned by a probe query, with the SQL that produced them."""

    sql: str
    rows: list[Row]
    #: executor rows visited to produce this result — 0 when the probe
    #: was served from a :class:`ProbeCache` (no engine work happened)
    rows_scanned: int = 0

    @property
    def empty(self) -> bool:
        return not self.rows

    def copy(self) -> "ProbeResult":
        return ProbeResult(
            sql=self.sql,
            rows=[dict(row) for row in self.rows],
            rows_scanned=self.rows_scanned,
        )


class _CacheEntry:
    """One cached probe plus what it takes to keep it current."""

    __slots__ = ("probe", "read", "plan", "born_seq", "view", "no_view")

    def __init__(
        self,
        probe: ProbeResult,
        read: frozenset[str],
        plan: Optional[SelectPlan],
        born_seq: int,
    ) -> None:
        self.probe = probe
        self.read = read
        self.plan = plan
        #: delta-log position the rows reflect; only later events apply
        self.born_seq = born_seq
        #: lazily-built maintainer (first maintenance pass compiles it)
        self.view: Optional[IncrementalView] = None
        #: the maintenance compiler declined this plan — don't retry
        self.no_view = plan is None


class ProbeCache:
    """Memoized probe results, shared across the updates of a batch.

    Context probes (PQ1/PQ2) are keyed on ``(view node, narrow flag,
    predicate signature)``: two updates anchored at the same view node
    with the same literal predicates compose the exact same probe
    query, so a session only executes it once.  Key probes (PQ3) are
    keyed on ``(relation, key values)``.

    Every entry records the set of base relations its query read and
    the plan that produced it.  Mutations reach the cache one of two
    ways: :meth:`invalidate` drops the entries whose read set
    intersects the mutated relations (the recompute path), while
    :meth:`maintain` streams DML delta events into each entry through
    :class:`~repro.rdb.ivm.IncrementalView` — falling back to a drop
    (counted in ``db.stats['ivm_fallbacks']``) on bulk markers,
    unsupported plans, deltas over ``db.ivm_threshold``, or **cold
    entries**: maintenance is reserved for keys requested more than
    once, so the one-shot key probes a write stream leaves behind are
    dropped at their first delta instead of being maintained forever
    (per-drain work would otherwise grow with every update ever run
    through the session).
    """

    #: past this many distinct requested keys, forget the cold ones
    REQUEST_CAP = 65536

    def __init__(self) -> None:
        self._entries: dict[tuple, _CacheEntry] = {}
        self._requests: dict[tuple, int] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @staticmethod
    def context_key(
        node: ViewNode,
        resolved: Optional[ResolvedUpdate],
        narrow: bool,
        canon: Optional[Any] = None,
    ) -> tuple:
        """The (view node, predicate signature) cache key of the issue's
        design: literal predicates are order-insensitive.

        Literals are canonicalized through *canon* — ``canon(relation,
        attribute, literal)`` returns the literal's SQL rendering after
        column-type coercion (:meth:`Translator._literal_signature`), so
        SQL-equal literals of distinct Python types (``1`` vs ``1.0`` on
        a DOUBLE column, ``"1"`` vs ``1`` on an INTEGER column) share
        one entry, while type-distinct renderings (``'1'`` vs ``1``)
        stay apart.  The bare-``repr()`` keys this replaces split those
        entries (cache misses) or — for values whose ``repr`` collides
        across types — wrongly shared them.
        """
        if canon is None:
            def canon(relation: str, attribute: str, literal: Any) -> str:
                return sql_literal(literal)
        signature: list[tuple] = []
        if resolved is not None:
            for resolution in resolved.predicates:
                if resolution.constraint is None or resolution.relation is None:
                    continue
                signature.append(
                    (
                        resolution.relation,
                        resolution.attribute,
                        resolution.constraint.op,
                        canon(
                            resolution.relation,
                            resolution.attribute,
                            resolution.constraint.literal,
                        ),
                    )
                )
        return ("context", node.node_id, narrow, tuple(sorted(signature)))

    @staticmethod
    def key_probe_key(relation: str, key_values: tuple) -> tuple:
        """PQ3 cache key: canonical SQL literals, not bare ``repr``."""
        return ("key", relation, tuple(sql_literal(value) for value in key_values))

    def get(self, key: tuple) -> Optional[ProbeResult]:
        if len(self._requests) > self.REQUEST_CAP:
            self._requests = {
                k: n for k, n in self._requests.items() if n >= 2
            }
        self._requests[key] = self._requests.get(key, 0) + 1
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        probe = entry.probe.copy()
        probe.rows_scanned = 0  # served from cache: no executor work
        return probe

    def put(
        self,
        key: tuple,
        probe: ProbeResult,
        read_relations: frozenset[str],
        plan: Optional[SelectPlan] = None,
        born_seq: int = 0,
    ) -> None:
        self._entries[key] = _CacheEntry(
            probe.copy(), read_relations, plan, born_seq
        )

    def invalidate(self, relations: set[str]) -> int:
        """Drop entries that read any of *relations*; returns the count."""
        stale = [
            key
            for key, entry in self._entries.items()
            if entry.read & relations
        ]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    def maintain(self, db: Database, events: list[DeltaEvent]) -> int:
        """Stream drained delta *events* into the affected entries.

        Each entry applies exactly the events newer than the state its
        rows reflect.  Entries that cannot be maintained — bulk markers
        in their delta, a plan the maintenance compiler declined, a
        delta over ``db.ivm_threshold`` (unless ``REPRO_IVM=1`` forces
        it), a multiplicity conflict, or a cold key (requested once:
        no evidence it will ever be served again) — are dropped, which
        makes the next probe recompute them.  Returns the entries
        maintained.
        """
        if not events:
            return 0
        forced = ivm_forced()
        maintained = 0
        for key in list(self._entries):
            entry = self._entries[key]
            relevant = [
                event for event in events
                if event.relation in entry.read
                and event.seq > entry.born_seq
            ]
            if not relevant:
                continue
            drop = (
                entry.no_view
                or self._requests.get(key, 0) < 2
                or any(event.kind == BULK for event in relevant)
            )
            delta_rows = sum(
                2 if event.kind == UPDATE else 1 for event in relevant
            )
            if not drop and forced is not True and delta_rows > db.ivm_threshold:
                drop = True
            if not drop and entry.view is None:
                try:
                    entry.view = IncrementalView.build(
                        db,
                        entry.plan,
                        rows=entry.probe.rows,
                        born_seq=entry.born_seq,
                    )
                except IvmError:
                    entry.view = None
                if entry.view is None:
                    entry.no_view = True
                    drop = True
            if not drop:
                try:
                    absorbed = entry.view.apply(db, relevant)
                except IvmError:
                    absorbed = None
                if absorbed is None:
                    drop = True
                else:
                    entry.probe.rows = entry.view.render()
                    entry.born_seq = relevant[-1].seq
                    maintained += 1
                    db.stats["ivm_maintained"] += 1
                    db.stats["ivm_delta_rows"] += absorbed
            if drop:
                del self._entries[key]
                self.invalidations += 1
                db.stats["ivm_fallbacks"] += 1
        return maintained

    def clear(self) -> None:
        self._entries.clear()
        self._requests.clear()

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class TupleInsert:
    relation: str
    values: dict[str, Any]
    #: "driving" tuples must be new; "supporting" ones may already exist
    role: str = "driving"

    def sql(self) -> str:
        rendered = ", ".join(sql_literal(v) for v in self.values.values())
        columns = ", ".join(self.values)
        return f"INSERT INTO {self.relation} ({columns}) VALUES ({rendered})"


@dataclass
class TupleDelete:
    relation: str
    rowids: set[int]
    #: display form (the executed op addresses rowids directly)
    description: str = ""
    #: "primary" targets the clean source, "minimized" an unshared dirty
    #: tuple, "expanded" one subtree level of the multi-statement mode —
    #: the QA pass scopes its referenced-tuple audit by this tag
    kind: str = "primary"

    def sql(self) -> str:
        if not self.rowids:
            # an empty IN () list is not valid SQL; render the no-op the
            # executor actually performs (zero matching rowids)
            return f"DELETE FROM {self.relation} WHERE 1 = 0"
        ids = ", ".join(str(r) for r in sorted(self.rowids))
        return f"DELETE FROM {self.relation} WHERE ROWID IN ({ids})"


@dataclass
class TupleUpdate:
    """A single-attribute UPDATE — the natural translation of a REPLACE
    over a simple (tag/leaf) view element."""

    relation: str
    rowids: set[int]
    changes: dict[str, Any]

    def sql(self) -> str:
        assignments = ", ".join(
            f"{column} = {sql_literal(value)}" for column, value in self.changes.items()
        )
        if not self.rowids:
            return f"UPDATE {self.relation} SET {assignments} WHERE 1 = 0"
        ids = ", ".join(str(r) for r in sorted(self.rowids))
        return f"UPDATE {self.relation} SET {assignments} WHERE ROWID IN ({ids})"


class Translator:
    """Probe composition and SQL generation against one view's ASGs.

    When *cache* is attached (batch sessions do), probe executions are
    memoized through it; standalone checkers keep the paper's
    probe-per-update behaviour.  Either way, probes composed from the
    same view node share a structural shape, so the engine's compiled
    plan cache (:mod:`repro.rdb.compiled`) serves repeated shapes —
    even across differing update literals — without re-planning.
    """

    def __init__(
        self,
        db: Database,
        asg: ViewASG,
        cache: Optional[ProbeCache] = None,
    ) -> None:
        self.db = db
        self.asg = asg
        self.cache = cache

    # ------------------------------------------------------------------
    # probe queries
    # ------------------------------------------------------------------

    def _relations_for(self, node: ViewNode) -> list[str]:
        """UCBinding(node) ordered parents-first along the nesting path."""
        ordered: list[str] = []
        chain = [node]
        chain.extend(
            ancestor
            for ancestor in node.ancestors()
        )
        for member in reversed(chain):
            if member.kind not in (NodeKind.INTERNAL, NodeKind.ROOT):
                continue
            for relation in sorted(self.asg.current_relations(member)):
                if relation not in ordered:
                    ordered.append(relation)
        return ordered

    def _coerce_literal(self, relation: str, attribute: str, literal: Any) -> Any:
        try:
            return (
                self.db.relation(relation).attribute(attribute).sql_type.coerce(literal)
            )
        except TypeMismatchError:
            return literal

    def _literal_signature(self, relation: str, attribute: str, literal: Any) -> str:
        """Canonical cache-key rendering of a predicate literal: coerce
        through the column's SQL type (exactly what probe composition
        does), then render with :func:`sql_literal` — the key equals the
        probe SQL the literal actually produces."""
        return sql_literal(self._coerce_literal(relation, attribute, literal))

    def _constraint_expr(
        self, relation: str, attribute: str, constraint: ValueConstraint
    ) -> Expr:
        literal = self._coerce_literal(relation, attribute, constraint.literal)
        return Comparison(
            constraint.op, ColumnRef(attribute, relation), Literal(literal)
        )

    def probe_plan(
        self,
        node: ViewNode,
        resolved: Optional[ResolvedUpdate] = None,
        narrow: bool = False,
    ) -> SelectPlan:
        """The probe query for *node*'s context (PQ1/PQ2 composition).

        ``narrow=True`` projects only what a translation needs — key
        columns and join-condition attributes — the way the paper's
        external strategy "only retrieves the necessary information to
        form a lineitem tuple".  The internal strategy needs the full
        width (all attributes of all joined relations), which is
        exactly the Fig. 15 overhead.
        """
        relations = self._relations_for(node)
        if not relations:
            raise UFilterError(
                f"node {node.node_id} binds no relations — nothing to probe"
            )
        predicates: list[Expr] = []
        for condition in self.asg.conditions_in_scope(node):
            predicates.append(
                Comparison(
                    condition.op,
                    ColumnRef(condition.attr_a, condition.rel_a),
                    ColumnRef(condition.attr_b, condition.rel_b),
                )
            )
        for relation, attribute, constraint in self.asg.value_filters_in_scope(node):
            predicates.append(self._constraint_expr(relation, attribute, constraint))
        if resolved is not None:
            for resolution in resolved.predicates:
                if (
                    resolution.constraint is not None
                    and resolution.relation in relations
                ):
                    predicates.append(
                        self._constraint_expr(
                            resolution.relation,
                            resolution.attribute,
                            resolution.constraint,
                        )
                    )
        if narrow:
            needed: dict[str, set[str]] = {relation: set() for relation in relations}
            for relation in relations:
                key = self.db.relation(relation).primary_key
                if key is not None:
                    needed[relation].update(key.columns)
            for condition in self.asg.conditions_in_scope(node):
                for rel, attr in (
                    (condition.rel_a, condition.attr_a),
                    (condition.rel_b, condition.attr_b),
                ):
                    if rel in needed:
                        needed[rel].add(attr)
            columns = [
                OutputColumn(
                    column=attribute,
                    qualifier=relation,
                    label=f"{relation}.{attribute}",
                )
                for relation in relations
                for attribute in sorted(needed[relation])
            ]
        else:
            columns = [
                OutputColumn(
                    column=attribute,
                    qualifier=relation,
                    label=f"{relation}.{attribute}",
                )
                for relation in relations
                for attribute in self.db.relation(relation).attribute_names
            ]
        return SelectPlan(
            from_items=[FromItem(relation) for relation in relations],
            columns=columns,
            where=conjoin(predicates),
            include_rowids=True,
        )

    def run_probe(
        self,
        node: ViewNode,
        resolved: Optional[ResolvedUpdate] = None,
        narrow: bool = False,
    ) -> ProbeResult:
        key: Optional[tuple] = None
        if self.cache is not None:
            key = ProbeCache.context_key(
                node, resolved, narrow, canon=self._literal_signature
            )
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        plan = self.probe_plan(node, resolved, narrow=narrow)
        scanned_before = self.db.stats["rows_scanned"]
        rows = execute_select(self.db, plan)
        probe = ProbeResult(
            sql=plan.to_sql(),
            rows=rows,
            rows_scanned=self.db.stats["rows_scanned"] - scanned_before,
        )
        if self.cache is not None and key is not None:
            self.cache.put(
                key,
                probe,
                frozenset(item.relation_name for item in plan.from_items),
                plan=plan,
                born_seq=self.db.deltas.seq,
            )
        return probe

    def explain_probe(
        self,
        node: ViewNode,
        resolved: Optional[ResolvedUpdate] = None,
        narrow: bool = False,
    ) -> str:
        """The physical operator tree the probe for *node* runs through
        (per-node row estimates included).  Served from the plan cache
        after the probe first compiles, so reading it is cheap.
        """
        from repro.rdb.plan import explain_select

        plan = self.probe_plan(node, resolved, narrow=narrow)
        return explain_select(self.db, plan)

    # ------------------------------------------------------------------
    # delete translation
    # ------------------------------------------------------------------

    def build_deletes(
        self,
        op: OpResolution,
        probe: ProbeResult,
        minimize: bool,
    ) -> tuple[list[TupleDelete], list[str]]:
        """Translate a delete op given its probe rows.

        Returns (deletes, notes).  The primary delete targets the clean
        source; under minimization, other current relations' tuples are
        deleted only when provably unreferenced and not republished.
        """
        node = op.node
        assert node is not None
        subject = node
        while subject.kind not in (NodeKind.INTERNAL, NodeKind.ROOT):
            assert subject.parent is not None
            subject = subject.parent
        source = subject.clean_source
        if source is None:
            raise UFilterError(
                f"no clean source recorded for {subject.node_id} — "
                f"STAR should have rejected this delete"
            )
        notes: list[str] = []
        deletes: list[TupleDelete] = []
        primary_rowids = {
            row[f"{source}.ROWID"] for row in probe.rows if f"{source}.ROWID" in row
        }
        deletes.append(
            TupleDelete(
                relation=source,
                rowids=primary_rowids,
                description=f"delete the clean source tuples of <{subject.name}>",
            )
        )
        if not minimize:
            return deletes, notes

        republished = self._republished_relations(subject)
        for relation in sorted(self.asg.current_relations(subject) - {source}):
            if relation in republished:
                notes.append(
                    f"minimization: keep {relation} tuples — the relation is "
                    f"republished elsewhere in the view"
                )
                continue
            keep, extra = self._deletable_shared_tuples(
                relation, source, primary_rowids, probe
            )
            notes.extend(keep)
            deletes.extend(extra)
        return deletes, notes

    def subtree_internal_nodes(
        self, op: OpResolution
    ) -> tuple[ViewNode, list[ViewNode]]:
        """The delete subject plus its internal subtree, TOP first.

        Used by the *expanded* translation mode: one DELETE statement
        per relation of the subtree instead of relying on the engine's
        cascades — the multi-statement shape the paper's Fig. 13/14/17
        experiments execute (and the only correct one under RESTRICT
        foreign keys).  Strategies iterate the levels themselves:
        outside walks top-first and stops at the first empty probe;
        hybrid executes every level (deepest first).
        """
        node = op.node
        assert node is not None
        subject = node
        while subject.kind not in (NodeKind.INTERNAL, NodeKind.ROOT):
            assert subject.parent is not None
            subject = subject.parent
        members = [
            member
            for member in subject.iter_subtree()
            if member.kind is NodeKind.INTERNAL
        ]
        members.sort(key=lambda member: len(list(member.ancestors())))
        return subject, members

    def member_deletes(
        self,
        member: ViewNode,
        subject: ViewNode,
        probe: ProbeResult,
        minimize: bool,
    ) -> tuple[list[TupleDelete], list[str]]:
        """Per-relation deletes for one subtree level, given its probe."""
        deletes: list[TupleDelete] = []
        notes: list[str] = []
        republished = self._republished_relations(subject)
        targets = set(self.asg.current_relations(member))
        if member is subject and subject.clean_source is not None:
            primary: Optional[str] = subject.clean_source
        else:
            primary = member.driving_relation or (
                sorted(targets)[0] if targets else None
            )
        for relation in sorted(targets):
            if relation != primary and minimize and relation in republished:
                notes.append(
                    f"minimization: keep {relation} tuples — republished "
                    f"elsewhere in the view"
                )
                continue
            rowids = {
                row[f"{relation}.ROWID"]
                for row in probe.rows
                if f"{relation}.ROWID" in row
            }
            deletes.append(
                TupleDelete(
                    relation=relation,
                    rowids=rowids,
                    description=f"expanded delete at <{member.name}>",
                    kind="expanded" if relation != primary else "primary",
                )
            )
        return deletes, notes

    def _republished_relations(self, node: ViewNode) -> set[str]:
        subtree = {id(member) for member in node.iter_subtree()}
        republished: set[str] = set()
        for other in self.asg.internal_nodes():
            if id(other) in subtree:
                continue
            republished |= set(other.uc_binding)
        return republished

    def _deletable_shared_tuples(
        self,
        relation: str,
        source: str,
        deleted_rowids: set[int],
        probe: ProbeResult,
    ) -> tuple[list[str], list[TupleDelete]]:
        """Shared tuples are deletable when nothing else references them."""
        notes: list[str] = []
        deletes: list[TupleDelete] = []
        seen: set[int] = set()
        for row in probe.rows:
            rowid = row.get(f"{relation}.ROWID")
            if rowid is None or rowid in seen:
                continue
            seen.add(rowid)
            referenced = False
            for fk in self.db.schema.foreign_keys_into(relation):
                target = self.db.row(relation, rowid)
                key = {
                    column: target[ref_column]
                    for column, ref_column in zip(fk.columns, fk.ref_columns)
                }
                referrers = self.db.find_rowids(fk.relation_name, key)
                if fk.relation_name == source:
                    referrers = referrers - deleted_rowids
                if referrers:
                    referenced = True
                    break
            if referenced:
                notes.append(
                    f"minimization: keep {relation} rowid {rowid} — still "
                    f"referenced after the delete"
                )
            else:
                deletes.append(
                    TupleDelete(
                        relation=relation,
                        rowids={rowid},
                        description=f"minimized delete of unshared {relation} tuple",
                        kind="minimized",
                    )
                )
        return notes, deletes

    # ------------------------------------------------------------------
    # insert translation
    # ------------------------------------------------------------------

    def build_inserts(
        self,
        op: OpResolution,
        context_row: Optional[Row],
    ) -> list[TupleInsert]:
        """Translate an insert op into parent-first tuple inserts."""
        node = op.node
        assert node is not None and op.fragment is not None
        known: dict[tuple[str, str], Any] = {}
        if context_row is not None:
            for key, value in context_row.items():
                if key.endswith(".ROWID"):
                    continue
                relation, attribute = key.split(".", 1)
                known[(relation, attribute)] = value
        tuples: list[TupleInsert] = []
        self._collect_region(node, op.fragment, dict(known), tuples)
        for tuple_insert in tuples:
            self._synthesize_missing_key(tuple_insert)
        return self._order_parent_first(tuples)

    def _synthesize_missing_key(self, insert: TupleInsert) -> None:
        """Generate surrogate key values the view does not publish.

        PSD-style schemas key tuples by ids (feature.fid) that the view
        never exposes; an insert through the view must mint fresh ones,
        the way a production view-update system would use a sequence.
        """
        relation_schema = self.db.relation(insert.relation)
        key = relation_schema.primary_key
        if key is None:
            return
        for column in key.columns:
            if insert.values.get(column) is not None:
                continue
            sql_type = relation_schema.attribute(column).sql_type
            existing = [
                row[column]
                for _, row in self.db.table(insert.relation).scan()
                if row.get(column) is not None
            ]
            from ..rdb.types import Integer

            if isinstance(sql_type, Integer):
                insert.values[column] = (
                    max((v for v in existing if isinstance(v, int)), default=0) + 1
                )
            else:
                counter = len(existing) + 1
                candidate = f"GEN{counter:06d}"
                taken = set(existing)
                while candidate in taken:
                    counter += 1
                    candidate = f"GEN{counter:06d}"
                insert.values[column] = candidate

    def _collect_region(
        self,
        node: ViewNode,
        fragment: XMLElement,
        known: dict[tuple[str, str], Any],
        out: list[TupleInsert],
    ) -> None:
        """One region = one instance of a many-cardinality node."""
        values: dict[tuple[str, str], Any] = {}
        nested: list[tuple[ViewNode, XMLElement]] = []
        self._harvest(node, fragment, values, nested)
        merged = dict(known)
        merged.update(values)
        self._propagate(node, merged)
        region_relations = self.asg.current_relations(node)
        driving = node.driving_relation
        for relation in sorted(region_relations):
            relation_schema = self.db.relation(relation)
            tuple_values = {
                attribute: merged.get((relation, attribute))
                for attribute in relation_schema.attribute_names
            }
            out.append(
                TupleInsert(
                    relation=relation,
                    values=tuple_values,
                    role="driving" if relation == driving else "supporting",
                )
            )
        for child_node, child_fragment in nested:
            self._collect_region(child_node, child_fragment, merged, out)

    def _harvest(
        self,
        node: ViewNode,
        fragment: XMLElement,
        values: dict[tuple[str, str], Any],
        nested: list[tuple[ViewNode, XMLElement]],
    ) -> None:
        """Read leaf values of the flat (cardinality 1/?) region."""
        for child_node in node.children:
            edge = self.asg.edge(node, child_node)
            elements = fragment.child_elements(child_node.name)
            if child_node.kind is NodeKind.TAG:
                if not elements:
                    continue
                leaf = child_node.children[0] if child_node.children else None
                if leaf is None or leaf.kind is not NodeKind.LEAF:
                    continue
                text = elements[0].text_content().strip()
                value: Any = text if text else None
                if value is not None and leaf.sql_type is not None:
                    try:
                        value = leaf.sql_type.coerce(value)
                    except TypeMismatchError:
                        pass
                assert leaf.relation is not None and leaf.attribute is not None
                values[(leaf.relation, leaf.attribute)] = value
            elif child_node.kind is NodeKind.INTERNAL:
                if edge.cardinality.is_many:
                    for element in elements:
                        nested.append((child_node, element))
                elif elements:
                    self._harvest(child_node, elements[0], values, nested)

    def _propagate(
        self, node: ViewNode, values: dict[tuple[str, str], Any]
    ) -> None:
        """Complete missing values through equality join conditions."""
        conditions = [
            condition
            for condition in self.asg.conditions_in_scope(node)
            if condition.op == "="
        ]
        changed = True
        while changed:
            changed = False
            for condition in conditions:
                a = (condition.rel_a, condition.attr_a)
                b = (condition.rel_b, condition.attr_b)
                if values.get(a) is not None and values.get(b) is None:
                    values[b] = values[a]
                    changed = True
                elif values.get(b) is not None and values.get(a) is None:
                    values[a] = values[b]
                    changed = True

    def _order_parent_first(self, tuples: list[TupleInsert]) -> list[TupleInsert]:
        schema = self.db.schema
        ordered: list[TupleInsert] = []
        remaining = list(tuples)
        placed: set[int] = set()
        progress = True
        while remaining and progress:
            progress = False
            for index, candidate in enumerate(list(remaining)):
                parents = {
                    fk.ref_relation
                    for fk in schema.relation(candidate.relation).foreign_keys
                }
                pending_parents = {
                    other.relation
                    for other in remaining
                    if other is not candidate and other.relation in parents
                }
                if not pending_parents:
                    ordered.append(candidate)
                    remaining.remove(candidate)
                    progress = True
        ordered.extend(remaining)  # FK cycles: best-effort order
        return ordered

    # ------------------------------------------------------------------
    # leaf replacement (REPLACE over a simple element)
    # ------------------------------------------------------------------

    def build_leaf_replace(
        self, op: OpResolution, probe: ProbeResult
    ) -> TupleUpdate:
        """Translate ``REPLACE $x/attr WITH <attr>value</attr>``.

        The paper folds replace into delete-then-insert (footnote 4);
        for simple elements the composed effect is a one-attribute SQL
        UPDATE on the tuples the probe located.
        """
        node = op.node
        assert node is not None and op.fragment is not None
        leaf = node
        if leaf.kind is not NodeKind.LEAF:
            for child in node.children:
                if child.kind is NodeKind.LEAF:
                    leaf = child
                    break
        if leaf.kind is not NodeKind.LEAF or leaf.relation is None:
            raise UFilterError(
                f"replace target <{node.name}> is not a simple element"
            )
        text = op.fragment.text_content().strip()
        value: Any = text if text else None
        if value is not None and leaf.sql_type is not None:
            try:
                value = leaf.sql_type.coerce(value)
            except TypeMismatchError:
                pass
        rowids = {
            row[f"{leaf.relation}.ROWID"]
            for row in probe.rows
            if f"{leaf.relation}.ROWID" in row
        }
        assert leaf.attribute is not None
        return TupleUpdate(
            relation=leaf.relation,
            rowids=rowids,
            changes={leaf.attribute: value},
        )

    # ------------------------------------------------------------------
    # point probes (outside strategy)
    # ------------------------------------------------------------------

    def key_probe(self, insert: TupleInsert) -> Optional[ProbeResult]:
        """PQ3-style probe: does the keyed tuple already exist?"""
        relation_schema = self.db.relation(insert.relation)
        key = relation_schema.primary_key
        if key is None:
            return None
        if any(insert.values.get(column) is None for column in key.columns):
            return None
        cache_key: Optional[tuple] = None
        if self.cache is not None:
            cache_key = ProbeCache.key_probe_key(
                insert.relation,
                tuple(
                    self._coerce_literal(
                        insert.relation, column, insert.values[column]
                    )
                    for column in key.columns
                ),
            )
            cached = self.cache.get(cache_key)
            if cached is not None:
                return cached
        predicates = [
            Comparison(
                "=",
                ColumnRef(column, insert.relation),
                Literal(insert.values[column]),
            )
            for column in key.columns
        ]
        plan = SelectPlan(
            from_items=[FromItem(insert.relation)],
            columns=None,
            where=conjoin(predicates),
            include_rowids=True,
        )
        scanned_before = self.db.stats["rows_scanned"]
        rows = execute_select(self.db, plan)
        probe = ProbeResult(
            sql=plan.to_sql(),
            rows=rows,
            rows_scanned=self.db.stats["rows_scanned"] - scanned_before,
        )
        if self.cache is not None and cache_key is not None:
            self.cache.put(
                cache_key,
                probe,
                frozenset({insert.relation}),
                plan=plan,
                born_seq=self.db.deltas.seq,
            )
        return probe
