"""Seeded scenario generator: random schema/view/update round-trips.

Property-based QA for the whole pipeline.  Each *scenario* is a small
random world drawn from a seed:

* a relational schema shaped like the paper's running example — an FK
  chain ``parent <- child [<- grand]``, optionally with the parent
  relation *shared* (republished at the view's top level, the BookView
  publisher pattern that makes minimization and duplication
  consistency interesting);
* sample data with deliberate duplicates and FK fan-out;
* a view query publishing the chain as nested elements (with an
  optional value filter on an integer column);
* a handful of view updates (subtree inserts, deletes, leaf replaces)
  whose keys sometimes collide with existing data on purpose.

Each update is then **round-tripped** — publish, check, translate,
apply — independently under every data-check strategy, and the runs
are cross-checked:

* all three strategies must agree on accept/reject
  (``outcome-mismatch``) and on the final base state
  (``state-mismatch``);
* the compiled engine paths must agree with the interpreted oracles
  (``oracle-mismatch``: the same check re-run with
  ``Database.oracle_mode`` forcing ``optimize=False`` /
  ``compiled=False`` everywhere);
* the rectangle rule of Definition 1 must hold for accepted updates
  (``rectangle``, via :func:`repro.core.verify.check_rectangle`);
* the post-translation QA audit (:mod:`repro.core.qa`) must be free of
  ERROR findings on accepted updates (``qa-error``);
* an interleaved :class:`repro.core.session.UpdateSession` over the
  whole update list must land on the same final state as checking the
  updates one by one with no session (``session-mismatch`` — this is
  the probe-cache invalidation cross-check);
* nothing may escape as an unhandled exception (``exception``).

Every failed cross-check becomes a :class:`Divergence` carrying the
scenario seed; ``repro qa --seed N --scenarios 1`` (or
``replay(seed)`` here) reproduces it deterministically.  The module is
pure stdlib — the hypothesis integration lives in the test-suite,
which feeds seeds through :func:`generate_scenario` so failures shrink
to the smallest misbehaving seed.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..rdb import Database, Schema, SQLEngine, parse_script
from .asg_cache import ASGStore
from .qa import qa_errors
from .session import UpdateSession
from .ufilter import UFilter
from .verify import check_rectangle

__all__ = [
    "Scenario",
    "Divergence",
    "RunSummary",
    "generate_scenario",
    "run_scenario",
    "run_many",
    "replay",
]

STRATEGIES = ("internal", "hybrid", "outside")

_NAME_POOL = ("alpha", "beta", "gamma", "delta")


@dataclass
class Scenario:
    """One generated world: schema + data + view + updates."""

    seed: int
    depth: int                     # 2 = parent/child, 3 = ... /grand
    shared: bool                   # parent republished at the top level
    ddl: str
    rows: dict[str, list[dict[str, Any]]]
    view_text: str
    #: (name, update text) in intended application order
    updates: list[tuple[str, str]] = field(default_factory=list)

    def describe(self) -> str:
        shapes = ", ".join(name for name, _ in self.updates)
        return (
            f"seed={self.seed} depth={self.depth} shared={self.shared} "
            f"rows={ {r: len(v) for r, v in self.rows.items()} } "
            f"updates=[{shapes}]"
        )


@dataclass(frozen=True)
class Divergence:
    """One failed cross-check, reproducible from the scenario seed."""

    kind: str                      # outcome-mismatch | state-mismatch |
    #                                oracle-mismatch | rectangle |
    #                                qa-error | session-mismatch | exception
    seed: int
    update: str                    # update name within the scenario
    detail: str

    def describe(self) -> str:
        return f"[seed {self.seed}] {self.update}: {self.kind} — {self.detail}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "update": self.update,
            "detail": self.detail,
        }


@dataclass
class RunSummary:
    scenarios: int = 0
    updates_checked: int = 0
    accepted: int = 0
    rejected: int = 0
    qa_warnings: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        lines = [
            f"{self.scenarios} scenario(s), {self.updates_checked} update "
            f"round-trip(s): {self.accepted} accepted, {self.rejected} "
            f"rejected, {self.qa_warnings} QA warning(s), "
            f"{len(self.divergences)} divergence(s)",
        ]
        lines.extend(f"  {d.describe()}" for d in self.divergences[:20])
        extra = len(self.divergences) - 20
        if extra > 0:
            lines.append(f"  (+{extra} more)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------

def _ddl(depth: int) -> str:
    parts = [
        """
CREATE TABLE parent(
    pid VARCHAR2(10),
    pname VARCHAR2(20),
    CONSTRAINTS GenParPK PRIMARYKEY (pid));
""",
        """
CREATE TABLE child(
    cid VARCHAR2(10),
    pid VARCHAR2(10),
    cname VARCHAR2(20),
    cnum INTEGER,
    CONSTRAINTS GenChPK PRIMARYKEY (cid),
    FOREIGNKEY (pid) REFERENCES parent (pid));
""",
    ]
    if depth >= 3:
        parts.append(
            """
CREATE TABLE grand(
    gid VARCHAR2(10),
    cid VARCHAR2(10),
    gname VARCHAR2(20),
    CONSTRAINTS GenGrPK PRIMARYKEY (gid),
    FOREIGNKEY (cid) REFERENCES child (cid));
"""
        )
    return "".join(parts)


def _view_text(depth: int, shared: bool, cnum_cap: Optional[int]) -> str:
    child_filter = f" AND ($c/cnum < {cnum_cap})" if cnum_cap is not None else ""
    grand = ""
    if depth >= 3:
        grand = """,
                FOR $g IN document("default.xml")/grand/row
                WHERE ($g/cid = $c/cid)
                RETURN {
                    <grand>
                        $g/gid, $g/gname
                    </grand>}"""
    republish = ""
    if shared:
        republish = """,
FOR $q IN document("default.xml")/parent/row
RETURN {
    <pub>
        $q/pid, $q/pname
    </pub>}"""
    return f"""
<GenView>
FOR $p IN document("default.xml")/parent/row
RETURN {{
    <parent>
        $p/pid, $p/pname,
        FOR $c IN document("default.xml")/child/row
        WHERE ($c/pid = $p/pid){child_filter}
        RETURN {{
            <child>
                $c/cid, $c/cname, $c/cnum{grand}
            </child>}}
    </parent>}}{republish}
</GenView>
"""


def _insert_child(rng: random.Random, scenario: Scenario) -> tuple[str, str]:
    existing = [row["cid"] for row in scenario.rows["child"]]
    # collide with an existing key ~1/4 of the time (conflict paths)
    if existing and rng.random() < 0.25:
        cid = rng.choice(existing)
    else:
        cid = f"C{rng.randrange(10, 99)}"
    pid = rng.choice([row["pid"] for row in scenario.rows["parent"]]
                     + [f"P{rng.randrange(10, 99)}"])
    grand = ""
    if scenario.depth >= 3 and rng.random() < 0.6:
        gid = f"G{rng.randrange(10, 99)}"
        grand = f"""
        <grand>
            <gid>{gid}</gid>
            <gname>{rng.choice(_NAME_POOL)}</gname>
        </grand>"""
    text = f"""
FOR $p IN document("GenView.xml")/parent
WHERE $p/pid/text() = "{pid}"
UPDATE $p {{
INSERT
    <child>
        <cid>{cid}</cid>
        <cname>{rng.choice(_NAME_POOL)}</cname>
        <cnum>{rng.randrange(0, 10)}</cnum>{grand}
    </child>}}
"""
    return ("insert-child", text)


def _insert_grand(rng: random.Random, scenario: Scenario) -> tuple[str, str]:
    children = [row["cid"] for row in scenario.rows["child"]]
    cid = rng.choice(children) if children and rng.random() < 0.8 else "C0"
    existing = [row["gid"] for row in scenario.rows.get("grand", [])]
    if existing and rng.random() < 0.25:
        gid = rng.choice(existing)
    else:
        gid = f"G{rng.randrange(10, 99)}"
    text = f"""
FOR $c IN document("GenView.xml")/parent/child
WHERE $c/cid/text() = "{cid}"
UPDATE $c {{
INSERT
    <grand>
        <gid>{gid}</gid>
        <gname>{rng.choice(_NAME_POOL)}</gname>
    </grand>}}
"""
    return ("insert-grand", text)


def _delete_children(rng: random.Random, scenario: Scenario) -> tuple[str, str]:
    pids = [row["pid"] for row in scenario.rows["parent"]]
    pid = rng.choice(pids) if pids and rng.random() < 0.8 else "P0"
    text = f"""
FOR $root IN document("GenView.xml"),
    $p IN $root/parent
WHERE $p/pid/text() = "{pid}"
UPDATE $p {{
    DELETE $p/child }}
"""
    return ("delete-children", text)


def _delete_one_child(rng: random.Random, scenario: Scenario) -> tuple[str, str]:
    children = [row["cid"] for row in scenario.rows["child"]]
    cid = rng.choice(children) if children and rng.random() < 0.8 else "C0"
    text = f"""
FOR $p IN document("GenView.xml")/parent,
    $c IN $p/child
WHERE $c/cid/text() = "{cid}"
UPDATE $p {{
    DELETE $c }}
"""
    return ("delete-child", text)


def _delete_parent(rng: random.Random, scenario: Scenario) -> tuple[str, str]:
    pids = [row["pid"] for row in scenario.rows["parent"]]
    pid = rng.choice(pids) if pids and rng.random() < 0.8 else "P0"
    text = f"""
FOR $root IN document("GenView.xml"),
    $p IN $root/parent
WHERE $p/pid/text() = "{pid}"
UPDATE $root {{
    DELETE $p }}
"""
    return ("delete-parent", text)


def _replace_leaf(rng: random.Random, scenario: Scenario) -> tuple[str, str]:
    children = [row["cid"] for row in scenario.rows["child"]]
    cid = rng.choice(children) if children and rng.random() < 0.8 else "C0"
    if rng.random() < 0.5:
        leaf, value = "cname", rng.choice(_NAME_POOL)
    else:
        leaf, value = "cnum", rng.randrange(0, 10)
    text = f"""
FOR $c IN document("GenView.xml")/parent/child
WHERE $c/cid/text() = "{cid}"
UPDATE $c {{
    REPLACE $c/{leaf} WITH <{leaf}>{value}</{leaf}> }}
"""
    return (f"replace-{leaf}", text)


def generate_scenario(seed: int) -> Scenario:
    """Draw one scenario deterministically from *seed*."""
    rng = random.Random(seed)
    depth = rng.choice((2, 3, 3))
    shared = rng.random() < 0.4
    cnum_cap = rng.choice((None, 5, 8))

    parents = [
        {"pid": f"P{i + 1}", "pname": rng.choice(_NAME_POOL)}
        for i in range(rng.randrange(1, 4))
    ]
    children = [
        {
            "cid": f"C{i + 1}",
            "pid": rng.choice(parents)["pid"],
            "cname": rng.choice(_NAME_POOL),
            "cnum": rng.randrange(0, 10),
        }
        for i in range(rng.randrange(0, 5))
    ]
    rows: dict[str, list[dict[str, Any]]] = {
        "parent": parents,
        "child": children,
    }
    if depth >= 3:
        rows["grand"] = [
            {
                "gid": f"G{i + 1}",
                "cid": rng.choice(children)["cid"],
                "gname": rng.choice(_NAME_POOL),
            }
            for i in range(rng.randrange(0, 4) if children else 0)
        ]

    scenario = Scenario(
        seed=seed,
        depth=depth,
        shared=shared,
        ddl=_ddl(depth),
        rows=rows,
        view_text=_view_text(depth, shared, cnum_cap),
    )
    makers: list[Callable[[random.Random, Scenario], tuple[str, str]]] = [
        _insert_child,
        _delete_children,
        _delete_one_child,
        _delete_parent,
        _replace_leaf,
    ]
    if depth >= 3:
        makers += [_insert_grand]
    for index in range(rng.randrange(2, 5)):
        name, text = rng.choice(makers)(rng, scenario)
        scenario.updates.append((f"u{index + 1}-{name}", text))
    return scenario


# ---------------------------------------------------------------------------
# round-trip execution
# ---------------------------------------------------------------------------

def _build_db(scenario: Scenario) -> Database:
    db = Database(Schema())
    engine = SQLEngine(db)
    for statement in parse_script(scenario.ddl):
        engine.execute(statement)
    for relation_name, rows in scenario.rows.items():
        db.load(relation_name, rows)
    return db


def _fingerprint(db: Database) -> dict[str, list[tuple]]:
    """Content-only state image (rowids excluded: allocation may differ
    between strategies that insert helper tuples in different orders)."""
    return {
        name: sorted(
            tuple(sorted(row.items())) for _, row in db.table(name).scan()
        )
        for name in db.tables
    }


def _checked(
    db: Database,
    scenario: Scenario,
    update_text: str,
    strategy: str,
    store: ASGStore,
    *,
    oracle: bool = False,
    qa: bool = True,
):
    """One isolated check+apply on a clone; returns (report, fingerprint)."""
    working = db.clone()
    working.oracle_mode = oracle
    ufilter = UFilter(
        working,
        scenario.view_text,
        cached_asg=store.get_or_build(scenario.view_text, working.schema),
    )
    report = ufilter.check(update_text, strategy=strategy, execute=True, qa=qa)
    return report, _fingerprint(working)


def run_scenario(
    scenario: Scenario,
    store: Optional[ASGStore] = None,
    summary: Optional[RunSummary] = None,
) -> list[Divergence]:
    """Round-trip every update of *scenario*; returns the divergences."""
    store = ASGStore() if store is None else store
    summary = RunSummary() if summary is None else summary
    divergences: list[Divergence] = []

    def bad(kind: str, update: str, detail: str) -> None:
        divergences.append(
            Divergence(kind=kind, seed=scenario.seed, update=update, detail=detail)
        )

    base = _build_db(scenario)
    for name, text in scenario.updates:
        summary.updates_checked += 1
        results: dict[str, tuple[Any, dict]] = {}
        failed = False
        for strategy in STRATEGIES:
            try:
                results[strategy] = _checked(base, scenario, text, strategy, store)
            # The divergence harness: every escape becomes an "exception"
            # finding instead of aborting the sweep; SimulatedCrash stays
            # a BaseException and sails past this handler by design.
            # repro: allow[REP003]
            except Exception as exc:  # noqa: BLE001 — every escape is a finding
                bad("exception", name, f"{strategy}: {type(exc).__name__}: {exc}")
                failed = True
        if failed:
            continue

        flags = {s: results[s][0].outcome.accepted for s in STRATEGIES}
        if len(set(flags.values())) > 1:
            detail = "; ".join(
                f"{s}: {results[s][0].outcome.value}"
                f" ({results[s][0].reason})" if results[s][0].reason else
                f"{s}: {results[s][0].outcome.value}"
                for s in STRATEGIES
            )
            bad("outcome-mismatch", name, detail)
            continue
        accepted = flags["outside"]
        if accepted:
            summary.accepted += 1
        else:
            summary.rejected += 1

        if accepted:
            prints = {s: results[s][1] for s in STRATEGIES}
            if any(prints[s] != prints["outside"] for s in STRATEGIES):
                bad(
                    "state-mismatch",
                    name,
                    "final base state differs between strategies",
                )

        # QA: warnings are tallied, ERRORs on accepted updates are bugs
        for strategy in STRATEGIES:
            data = results[strategy][0].data
            findings = data.qa_findings if data is not None else []
            errors = qa_errors(findings)
            summary.qa_warnings += len(findings) - len(errors)
            if accepted and errors:
                bad(
                    "qa-error",
                    name,
                    f"{strategy}: " + "; ".join(f.describe() for f in errors),
                )

        # interpreted oracle must agree with the compiled engine paths
        try:
            oracle_report, oracle_print = _checked(
                base, scenario, text, "outside", store, oracle=True
            )
        # Oracle escapes are findings, not aborts.
        # repro: allow[REP003]
        except Exception as exc:  # noqa: BLE001
            bad("exception", name, f"oracle: {type(exc).__name__}: {exc}")
        else:
            if oracle_report.outcome.accepted != accepted:
                bad(
                    "oracle-mismatch",
                    name,
                    f"compiled: {results['outside'][0].outcome.value}, "
                    f"interpreted: {oracle_report.outcome.value} "
                    f"({oracle_report.reason})",
                )
            elif accepted and oracle_print != results["outside"][1]:
                bad(
                    "oracle-mismatch",
                    name,
                    "final base state differs between compiled and "
                    "interpreted engine paths",
                )

        # Definition 1 (the rectangle) for accepted updates
        try:
            rectangle = check_rectangle(base, scenario.view_text, text)
        # Rectangle-check escapes are findings, not aborts.
        # repro: allow[REP003]
        except Exception as exc:  # noqa: BLE001
            bad("exception", name, f"rectangle: {type(exc).__name__}: {exc}")
        else:
            if rectangle.accepted and rectangle.holds is False:
                bad(
                    "rectangle",
                    name,
                    "u(DEF_V(D)) != DEF_V(U(D))"
                    + (" (spurious base change)"
                       if rectangle.spurious_base_change else ""),
                )

    # whole-list session cross-check: interleaved session == no-session
    if scenario.updates:
        try:
            sequential = base.clone()
            ufilter = UFilter(
                sequential,
                scenario.view_text,
                cached_asg=store.get_or_build(
                    scenario.view_text, sequential.schema
                ),
            )
            for _, text in scenario.updates:
                ufilter.check(text, strategy="outside", execute=True, qa=False)

            batched = base.clone()
            session = UpdateSession(
                batched, scenario.view_text, strategy="outside", qa=True
            )
            for name, text in scenario.updates:
                session.add(text, name=name)
            session.execute(mode="interleaved", atomic=False)

            if _fingerprint(sequential) != _fingerprint(batched):
                bad(
                    "session-mismatch",
                    "*batch*",
                    "interleaved session final state differs from "
                    "per-update checking (probe-cache invalidation?)",
                )

            # third leg: the same session with probe maintenance forced
            # (REPRO_IVM=1) — cached probes are delta-maintained instead
            # of recomputed, and the final state must still agree
            maintained = base.clone()
            previous_ivm = os.environ.get("REPRO_IVM")
            os.environ["REPRO_IVM"] = "1"
            try:
                session = UpdateSession(
                    maintained, scenario.view_text, strategy="outside", qa=True
                )
                for name, text in scenario.updates:
                    session.add(text, name=name)
                session.execute(mode="interleaved", atomic=False)
            finally:
                if previous_ivm is None:
                    os.environ.pop("REPRO_IVM", None)
                else:
                    os.environ["REPRO_IVM"] = previous_ivm

            if _fingerprint(sequential) != _fingerprint(maintained):
                bad(
                    "ivm-mismatch",
                    "*batch*",
                    "maintained session final state differs from "
                    "per-update checking (delta maintenance bug?)",
                )
        # Session cross-check escapes are findings, not aborts.
        # repro: allow[REP003]
        except Exception as exc:  # noqa: BLE001
            bad("exception", "*batch*", f"session: {type(exc).__name__}: {exc}")

    summary.scenarios += 1
    summary.divergences.extend(divergences)
    return divergences


def run_many(
    count: int,
    seed: int = 0,
    on_progress: Optional[Callable[[int, RunSummary], None]] = None,
) -> RunSummary:
    """Round-trip *count* scenarios drawn from ``seed, seed+1, ...``."""
    summary = RunSummary()
    store = ASGStore()
    for offset in range(count):
        run_scenario(generate_scenario(seed + offset), store, summary)
        if on_progress is not None:
            on_progress(offset + 1, summary)
    return summary


def replay(seed: int) -> RunSummary:
    """Re-run exactly one scenario (for reproducing a divergence)."""
    summary = RunSummary()
    run_scenario(generate_scenario(seed), ASGStore(), summary)
    return summary
