"""Construction of the view and base ASGs (Section 3.2).

``build_view_asg`` walks a parsed :class:`ViewQuery` with the relational
schema at hand and produces the annotated graph of Fig. 8;
``build_base_asg`` derives the FK DAG of Fig. 9 from the leaves the view
actually references.

Any construct the ASG model cannot express — aggregates, ``distinct``,
``if/then/else``, ``order by``, navigation deeper than one attribute —
raises :class:`repro.errors.UnsupportedFeatureError` with the feature
name.  The Fig. 12 audit calls :func:`audit_view_query` to harvest
those reasons.
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import UnsupportedFeatureError, XQueryError
from ..rdb.constraints import DeletePolicy
from ..rdb.expr import ColumnRef, Comparison, Literal
from ..rdb.schema import Schema
from ..xquery.ast import (
    Binding,
    Content,
    DocSource,
    ElementCtor,
    FLWR,
    FunctionCall,
    IfThenElse,
    Predicate,
    VarPath,
    VarProjection,
    ViewQuery,
)
from .asg import (
    BaseASG,
    BaseEdge,
    BaseNode,
    Cardinality,
    JoinCondition,
    NodeKind,
    ValueConstraint,
    ViewASG,
    ViewEdge,
    ViewNode,
)

__all__ = ["build_view_asg", "build_base_asg", "audit_view_query"]

Scope = dict[str, str]  # variable -> relation name


class _Counter:
    def __init__(self) -> None:
        self.counts = {"C": 0, "S": 0, "L": 0}

    def next(self, kind: str) -> str:
        self.counts[kind] += 1
        return f"v{kind}{self.counts[kind]}"


def build_view_asg(view: ViewQuery, schema: Schema) -> ViewASG:
    """Build ``G_V`` for *view* over *schema* (annotations included)."""
    counter = _Counter()
    root = ViewNode(node_id="vR", kind=NodeKind.ROOT, name=view.root_tag)
    asg = ViewASG(root, schema)
    for item in view.items:
        _build_content(asg, item, root, {}, counter, schema)
    _compute_up_bindings(root)
    _merge_view_checks(asg)
    return asg


def _build_content(
    asg: ViewASG,
    item: Content,
    parent: ViewNode,
    scope: Scope,
    counter: _Counter,
    schema: Schema,
) -> None:
    if isinstance(item, FLWR):
        _build_flwr(asg, item, parent, scope, counter, schema)
    elif isinstance(item, ElementCtor):
        _build_element(asg, item, parent, scope, counter, schema)
    elif isinstance(item, VarProjection):
        _build_projection(asg, item.path, parent, scope, counter, schema)
    elif isinstance(item, FunctionCall):
        raise UnsupportedFeatureError(f"{item.name}()")
    elif isinstance(item, IfThenElse):
        raise UnsupportedFeatureError("if/then/else")
    else:  # pragma: no cover - exhaustive over Content
        raise XQueryError(f"cannot model {type(item).__name__} in an ASG")


def _build_flwr(
    asg: ViewASG,
    flwr: FLWR,
    parent: ViewNode,
    scope: Scope,
    counter: _Counter,
    schema: Schema,
) -> None:
    if flwr.order_by is not None:
        raise UnsupportedFeatureError("order by / sortby")
    inner_scope = dict(scope)
    new_relations: list[str] = []
    for binding in flwr.bindings:
        relation = _binding_relation(binding, inner_scope, schema)
        if relation is not None:
            inner_scope[binding.var] = relation
            new_relations.append(relation)

    conditions: list[JoinCondition] = []
    filters: list[tuple[str, str, ValueConstraint]] = []
    for predicate in flwr.where:
        _classify_predicate(predicate, inner_scope, conditions, filters, schema)

    ret = flwr.ret
    if isinstance(ret, (FunctionCall,)):
        raise UnsupportedFeatureError(f"{ret.name}()")
    if isinstance(ret, IfThenElse):
        raise UnsupportedFeatureError("if/then/else")

    if isinstance(ret, ElementCtor):
        node = ViewNode(
            node_id=counter.next("C"),
            kind=NodeKind.INTERNAL,
            name=ret.tag,
            uc_binding=parent.uc_binding | frozenset(new_relations),
            value_filters=tuple(
                (relation, attribute, constraint)
                for relation, attribute, constraint in filters
            ),
        )
        parent.add_child(node)
        asg.register(node)
        asg.add_edge(
            ViewEdge(
                parent=parent,
                child=node,
                cardinality=Cardinality.STAR,
                conditions=tuple(conditions),
            )
        )
        for child_item in ret.items:
            _build_content(asg, child_item, node, inner_scope, counter, schema)
        return
    if isinstance(ret, VarProjection):
        # RETURN { $var/attr } — a repeated simple element
        tag = _build_projection(
            asg, ret.path, parent, inner_scope, counter, schema,
            cardinality=Cardinality.STAR,
            conditions=tuple(conditions),
            filters=tuple(filters),
        )
        return
    if isinstance(ret, FLWR):
        # directly nested FLWR without an enclosing constructor
        _build_flwr(asg, ret, parent, inner_scope, counter, schema)
        return
    raise XQueryError(f"cannot model RETURN of {type(ret).__name__}")


def _build_element(
    asg: ViewASG,
    ctor: ElementCtor,
    parent: ViewNode,
    scope: Scope,
    counter: _Counter,
    schema: Schema,
) -> None:
    node = ViewNode(
        node_id=counter.next("C"),
        kind=NodeKind.INTERNAL,
        name=ctor.tag,
        uc_binding=parent.uc_binding,
    )
    parent.add_child(node)
    asg.register(node)
    asg.add_edge(
        ViewEdge(parent=parent, child=node, cardinality=Cardinality.ONE)
    )
    for item in ctor.items:
        _build_content(asg, item, node, scope, counter, schema)


def _build_projection(
    asg: ViewASG,
    path: VarPath,
    parent: ViewNode,
    scope: Scope,
    counter: _Counter,
    schema: Schema,
    cardinality: Optional[Cardinality] = None,
    conditions: tuple[JoinCondition, ...] = (),
    filters: tuple[tuple[str, str, ValueConstraint], ...] = (),
) -> ViewNode:
    relation, attribute = _resolve_path(path, scope, schema)
    rel_schema = schema.relation(relation)
    attr_schema = rel_schema.attribute(attribute)
    not_null = attribute in rel_schema.not_null_columns()
    checks = _relational_checks(rel_schema, attribute)

    leaf_cardinality = (
        cardinality
        if cardinality is not None
        else (Cardinality.ONE if not_null else Cardinality.OPTIONAL)
    )
    tag = ViewNode(
        node_id=counter.next("S"),
        kind=NodeKind.TAG,
        name=attribute,
        relation=relation,
        attribute=attribute,
        uc_binding=parent.uc_binding,
        value_filters=filters,
    )
    parent.add_child(tag)
    asg.register(tag)
    asg.add_edge(
        ViewEdge(
            parent=parent,
            child=tag,
            cardinality=leaf_cardinality,
            conditions=conditions,
        )
    )
    leaf = ViewNode(
        node_id=counter.next("L"),
        kind=NodeKind.LEAF,
        name=f"{relation}.{attribute}",
        relation=relation,
        attribute=attribute,
        sql_type=attr_schema.sql_type,
        not_null=not_null,
        checks=checks,
        uc_binding=parent.uc_binding,
    )
    tag.add_child(leaf)
    asg.register(leaf)
    asg.add_edge(
        ViewEdge(
            parent=tag,
            child=leaf,
            cardinality=Cardinality.ONE if not_null else Cardinality.OPTIONAL,
        )
    )
    return tag


def _binding_relation(
    binding: Binding, scope: Scope, schema: Schema
) -> Optional[str]:
    source = binding.source
    if isinstance(source, DocSource):
        relation = source.relation
        if relation is None or len(source.path) != 2 or source.path[1] != "row":
            raise UnsupportedFeatureError(
                "non-default-view document source",
                f"source {source} does not navigate document(...)/relation/row",
            )
        if relation not in schema:
            raise XQueryError(f"view references unknown relation {relation!r}")
        return relation
    if isinstance(source, VarPath):
        if source.segments or source.text_fn:
            raise UnsupportedFeatureError("navigation into a bound variable")
        if source.var not in scope:
            raise XQueryError(f"unbound variable ${source.var}")
        scope[binding.var] = scope[source.var]
        return None
    raise XQueryError(f"unsupported binding source {source!r}")


def _resolve_path(path: VarPath, scope: Scope, schema: Schema) -> tuple[str, str]:
    if path.var not in scope:
        raise XQueryError(f"unbound variable ${path.var}")
    relation = scope[path.var]
    attribute = path.attribute
    if attribute is None:
        raise UnsupportedFeatureError(
            "deep path navigation", f"path {path} must project one attribute"
        )
    schema.relation(relation).attribute(attribute)
    return relation, attribute


def _relational_checks(relation, attribute: str) -> tuple[ValueConstraint, ...]:
    """Extract single-attribute CHECK constraints as value constraints."""
    constraints: list[ValueConstraint] = []
    for expression in relation.checks_for_column(attribute):
        for conjunct in expression.conjuncts():
            if not isinstance(conjunct, Comparison):
                continue
            left, right, op = conjunct.left, conjunct.right, conjunct.op
            if isinstance(left, ColumnRef) and isinstance(right, Literal):
                if left.column == attribute:
                    constraints.append(ValueConstraint(op, right.value))
            elif isinstance(right, ColumnRef) and isinstance(left, Literal):
                if right.column == attribute:
                    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
                    constraints.append(ValueConstraint(flipped, left.value))
    return tuple(constraints)


def _classify_predicate(
    predicate: Predicate,
    scope: Scope,
    conditions: list[JoinCondition],
    filters: list[tuple[str, str, ValueConstraint]],
    schema: Schema,
) -> None:
    left, right = predicate.left, predicate.right
    if isinstance(left, FunctionCall) or isinstance(right, FunctionCall):
        name = left.name if isinstance(left, FunctionCall) else right.name
        raise UnsupportedFeatureError(f"{name}()")
    if isinstance(left, VarPath) and isinstance(right, VarPath):
        rel_a, attr_a = _resolve_path(left, scope, schema)
        rel_b, attr_b = _resolve_path(right, scope, schema)
        conditions.append(
            JoinCondition(rel_a, attr_a, rel_b, attr_b, op=predicate.op)
        )
        return
    if isinstance(left, VarPath):
        relation, attribute = _resolve_path(left, scope, schema)
        filters.append((relation, attribute, ValueConstraint(predicate.op, right)))
        return
    if isinstance(right, VarPath):
        relation, attribute = _resolve_path(right, scope, schema)
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(
            predicate.op, predicate.op
        )
        filters.append((relation, attribute, ValueConstraint(flipped, left)))
        return
    raise XQueryError(f"predicate {predicate} references no variable")


def _compute_up_bindings(root: ViewNode) -> None:
    """UPBinding = relations used to construct the node's subtree.

    That is: relations behind projected leaves plus relations *newly
    bound* by the FLWR introducing each internal node (bound-but-never-
    projected relations still participate in construction).  A plain
    element constructor (vC2 in Fig. 8) binds nothing new, so its
    UPBinding is just its subtree's — ``{publisher}``, not its UCBinding.
    """

    def visit(node: ViewNode, parent_uc: frozenset[str]) -> frozenset[str]:
        relations: set[str] = set()
        if node.relation is not None:
            relations.add(node.relation)
        if node.kind is NodeKind.INTERNAL:
            relations.update(node.uc_binding - parent_uc)
        for child in node.children:
            relations.update(visit(child, node.uc_binding))
        node.up_binding = frozenset(relations)
        return node.up_binding

    visit(root, frozenset())


def _merge_view_checks(asg: ViewASG) -> None:
    """Fold in-scope non-correlation predicates into leaf check sets.

    This produces the paper's combined check annotation, e.g. vL3
    (book.price) = {0.00 < value < 50.00}: ``> 0`` from the relational
    CHECK, ``< 50`` from the view's WHERE.
    """
    for leaf in asg.leaf_nodes():
        extra = [
            constraint
            for relation, attribute, constraint in asg.value_filters_in_scope(leaf)
            if relation == leaf.relation and attribute == leaf.attribute
        ]
        if extra:
            merged = list(leaf.checks)
            for constraint in extra:
                if constraint not in merged:
                    merged.append(constraint)
            leaf.checks = tuple(merged)


def build_base_asg(
    view_asg: ViewASG,
    schema: Schema,
) -> BaseASG:
    """Build ``G_D`` from the relational attributes the view references."""
    base = BaseASG(schema)
    counter = 0

    # leaf nodes: union of relational attributes behind view leaves
    referenced: dict[str, list[str]] = {}
    for leaf in view_asg.leaf_nodes():
        assert leaf.relation is not None and leaf.attribute is not None
        attributes = referenced.setdefault(leaf.relation, [])
        if leaf.attribute not in attributes:
            attributes.append(leaf.attribute)

    for relation_name, attributes in referenced.items():
        counter += 1
        relation_node = BaseNode(
            node_id=f"n{counter}",
            name=relation_name,
            is_leaf=False,
            relation=relation_name,
        )
        base.relation_nodes[relation_name] = relation_node
        relation_schema = schema.relation(relation_name)
        key_columns = (
            set(relation_schema.primary_key.columns)
            if relation_schema.primary_key
            else set()
        )
        for attribute in attributes:
            counter += 1
            leaf_node = BaseNode(
                node_id=f"n{counter}",
                name=f"{relation_name}.{attribute}",
                is_leaf=True,
                relation=relation_name,
                attribute=attribute,
                is_key=attribute in key_columns,
                parent=relation_node,
            )
            relation_node.children.append(leaf_node)
            base.leaf_nodes[leaf_node.name] = leaf_node

    # FK edges between referenced relations
    for relation_name in referenced:
        for fk in schema.relation(relation_name).foreign_keys:
            if fk.ref_relation not in base.relation_nodes:
                continue
            conditions = tuple(
                JoinCondition(fk.ref_relation, ref_col, relation_name, col)
                for col, ref_col in zip(fk.columns, fk.ref_columns)
            )
            base.edges.append(
                BaseEdge(
                    parent=base.relation_nodes[fk.ref_relation],
                    child=base.relation_nodes[relation_name],
                    cardinality=Cardinality.STAR,
                    conditions=conditions,
                    cascades=fk.on_delete is DeletePolicy.CASCADE,
                )
            )
    return base


def audit_view_query(text_or_query: Union[str, ViewQuery], schema: Schema):
    """Fig. 12 helper: is this query expressible in a view ASG?

    Returns ``(included, reason)`` — ``(True, "")`` when the ASG builds,
    otherwise ``(False, feature)`` naming the offending construct.
    """
    from ..xquery.parser import parse_view_query

    try:
        query = (
            parse_view_query(text_or_query)
            if isinstance(text_or_query, str)
            else text_or_query
        )
        build_view_asg(query, schema)
    except UnsupportedFeatureError as exc:
        return False, exc.feature
    return True, ""
