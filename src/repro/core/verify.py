"""Rectangle-rule verification (Definition 1 / Fig. 7).

A translation ``U`` of view update ``u`` is correct iff

* ``u(DEF_V(D)) == DEF_V(U(D))`` — applying the update to the
  materialized view equals recomputing the view over the updated base;
* ``u(DEF_V(D)) == DEF_V(D)  ⇒  U(D) == D`` — a no-op on the view must
  be a no-op on the base.

The checker never needs this module; the test-suite uses it to prove,
end to end, that every update U-Filter accepts really is side-effect
free — and that the naive (non-minimized) translation of the rejected
ones is not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..rdb.database import Database
from ..xml.nodes import XMLElement
from ..xquery.ast import ViewQuery
from ..xquery.evaluator import evaluate_view
from ..xquery.update_apply import apply_view_update
from ..xquery.update_ast import ViewUpdate
from .ufilter import CheckReport, Outcome, UFilter

__all__ = ["RectangleReport", "check_rectangle"]


@dataclass
class RectangleReport:
    #: was the update accepted (and hence a translation applied)?
    accepted: bool
    #: does u(DEF_V(D)) equal DEF_V(U(D))? (None when not accepted)
    holds: Optional[bool]
    #: the checker's report
    report: CheckReport
    #: materialized trees for debugging
    expected: Optional[XMLElement] = None
    actual: Optional[XMLElement] = None
    #: criterion (ii): the base changed although the view did not
    spurious_base_change: bool = False


def check_rectangle(
    db: Database,
    view: Union[str, ViewQuery],
    update: Union[str, ViewUpdate],
    strategy: str = "outside",
) -> RectangleReport:
    """Verify Definition 1 for *update* over *view* on a copy of *db*."""
    working = db.clone()
    ufilter = UFilter(working, view)
    parsed = ufilter.parse(update)

    # left/top edge: u applied to the materialized view of the ORIGINAL db
    before = evaluate_view(db, ufilter.view)
    expected = before.clone()
    application = apply_view_update(expected, parsed)

    report = ufilter.check(parsed, strategy=strategy, execute=True)
    if report.outcome is not Outcome.TRANSLATED:
        return RectangleReport(accepted=False, holds=None, report=report)

    # right/bottom edge: the view recomputed over the updated base
    actual = evaluate_view(working, ufilter.view)
    holds = expected.equals(actual, ordered=False)

    # criterion (ii): view unchanged ⇒ base unchanged
    spurious = False
    if not application.changed:
        for relation_name in db.tables:
            if db.count(relation_name) != working.count(relation_name):
                spurious = True
                break
            original_rows = {
                rowid: tuple(sorted(row.items()))
                for rowid, row in db.table(relation_name).scan()
            }
            updated_rows = {
                rowid: tuple(sorted(row.items()))
                for rowid, row in working.table(relation_name).scan()
            }
            if original_rows != updated_rows:
                spurious = True
                break
        holds = holds and not spurious

    return RectangleReport(
        accepted=True,
        holds=holds,
        report=report,
        expected=expected,
        actual=actual,
        spurious_base_change=spurious,
    )
