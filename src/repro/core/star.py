"""Step 2 — Schema-driven TrAnslatability Reasoning (STAR, Section 5).

**Marking** (compile time, Algorithm 1): every internal node of ``G_V``
receives a ``(UPoint | UContext)`` label.

* Rule 1 (duplication within the view region): a ``*``/``+`` edge whose
  child is not *properly joined* makes the whole child subtree
  unsafe-delete ∧ unsafe-insert.  Properly joined means (a) every newly
  bound relation except one driving relation is functionally determined
  through unique-attribute joins, and (b) a child nested under a
  non-empty context determines that context from its own tuples — both
  directions are chased over all equality conditions in scope.  (The
  paper's one-line formulation is inconsistent with its own Fig. 8
  example; this is the reading its three worked examples require, see
  DESIGN.md.)
* Rule 2 (unsafe deletes): ``vC`` is unsafe-delete unless some relation
  in ``CR(vC)`` has an FK-extension disjoint from every non-descendant's
  UCBinding — that relation is remembered as the node's *clean source*.
* Rule 3 (unsafe inserts): inserting ``vC`` is unsafe when it shares
  relations with the current relations of an unsafe-delete
  non-descendant (the side-effect appearance case).

UPoint: ``clean`` iff the node's view closure is equivalent to its
mapping closure in ``G_D`` (Definition 2).

**Checking** (per update, Observations 1 & 2) classifies a valid update
as untranslatable, conditionally translatable (with the required
condition: *translation minimization* for dirty deletes, *duplication
consistency* for dirty inserts) or unconditionally translatable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .asg import (
    BaseASG,
    JoinCondition,
    NodeKind,
    ViewASG,
    ViewNode,
)
from .closure import mapping_closure, view_closure
from .update_binding import OpResolution, ResolvedUpdate

__all__ = ["Category", "StarVerdict", "mark_view_asg", "star_check"]


class Category(enum.Enum):
    UNTRANSLATABLE = "untranslatable"
    CONDITIONALLY_TRANSLATABLE = "conditionally translatable"
    UNCONDITIONALLY_TRANSLATABLE = "unconditionally translatable"

    @property
    def rank(self) -> int:
        order = {
            Category.UNCONDITIONALLY_TRANSLATABLE: 0,
            Category.CONDITIONALLY_TRANSLATABLE: 1,
            Category.UNTRANSLATABLE: 2,
        }
        return order[self]


#: condition names attached to conditionally translatable updates
CONDITION_MINIMIZATION = "translation minimization"
CONDITION_DUP_CONSISTENCY = "duplication consistency"


@dataclass
class StarVerdict:
    category: Category
    node: Optional[ViewNode] = None
    condition: Optional[str] = None
    reason: str = ""

    @staticmethod
    def worst(verdicts: list["StarVerdict"]) -> "StarVerdict":
        assert verdicts
        chosen = max(verdicts, key=lambda v: v.category.rank)
        conditions = {
            v.condition for v in verdicts if v.condition is not None
        }
        if chosen.category is Category.CONDITIONALLY_TRANSLATABLE and conditions:
            chosen = StarVerdict(
                category=chosen.category,
                node=chosen.node,
                condition=" + ".join(sorted(conditions)),
                reason=chosen.reason,
            )
        return chosen


# ---------------------------------------------------------------------------
# marking procedure
# ---------------------------------------------------------------------------


def mark_view_asg(asg: ViewASG, base: BaseASG) -> None:
    """Algorithm 1: mark every internal node with (UPoint | UContext)."""
    _apply_rule1(asg)
    _apply_rule2(asg)
    _apply_rule3(asg)
    # unmarked nodes default to safe
    for node in asg.nodes():
        if node.kind not in (NodeKind.INTERNAL, NodeKind.ROOT):
            continue
        if node.safe_delete is None:
            node.safe_delete = True
        if node.safe_insert is None:
            node.safe_insert = True
    _mark_upoints(asg, base)


def _internal_parent(node: ViewNode) -> Optional[ViewNode]:
    parent = node.parent
    while parent is not None and parent.kind not in (
        NodeKind.INTERNAL, NodeKind.ROOT,
    ):
        parent = parent.parent
    return parent


def _equality_conditions(conditions: list[JoinCondition]) -> list[JoinCondition]:
    return [condition for condition in conditions if condition.op == "="]


def _chase(
    asg: ViewASG,
    determined: set[str],
    conditions: list[JoinCondition],
) -> set[str]:
    """Functional-dependency chase over unique-attribute equality joins.

    ``Ri.a = Rj.b`` determines Ri from Rj when ``Ri.a`` is a unique
    identifier of Ri (each Rj tuple matches at most one Ri tuple).
    """
    schema = asg.schema
    changed = True
    result = set(determined)
    while changed:
        changed = False
        for condition in conditions:
            a_unique = schema.is_unique(condition.rel_a, condition.attr_a)
            b_unique = schema.is_unique(condition.rel_b, condition.attr_b)
            if condition.rel_b in result and condition.rel_a not in result and a_unique:
                result.add(condition.rel_a)
                changed = True
            if condition.rel_a in result and condition.rel_b not in result and b_unique:
                result.add(condition.rel_b)
                changed = True
    return result


def _properly_joined(asg: ViewASG, node: ViewNode) -> tuple[bool, str]:
    """Rule 1's test for the ``*`` edge into *node*."""
    parent = _internal_parent(node)
    context = parent.uc_binding if parent is not None else frozenset()
    new = asg.current_relations(node)
    conditions = _equality_conditions(asg.conditions_in_scope(node))

    # (b) cross-context duplication: the child's tuples must pin their
    # ancestor binding
    if context:
        determined = _chase(asg, set(new), conditions)
        if not context <= determined:
            missing = sorted(context - determined)
            return False, (
                f"relations {missing} of the ancestor context are not "
                f"determined by a unique-attribute join — instances of "
                f"<{node.name}> would be duplicated across the context"
            )

    # (a) intra-child duplication: all but one driving relation must be
    # determined
    if len(new) <= 1:
        node.driving_relation = next(iter(new), None)
        return True, ""
    for driving in sorted(new):
        determined = _chase(asg, set(context) | {driving}, conditions)
        if new <= determined:
            node.driving_relation = driving
            return True, ""
    return False, (
        f"the relations {sorted(new)} joined at <{node.name}> are not "
        f"linked through unique attributes — the join can duplicate "
        f"instances"
    )


def _apply_rule1(asg: ViewASG) -> None:
    for node in asg.internal_nodes():
        edge = asg.incoming_edge(node)
        if edge is None or not edge.cardinality.is_many:
            continue
        proper, reason = _properly_joined(asg, node)
        if proper:
            continue
        for member in node.iter_subtree():
            if member.kind in (NodeKind.INTERNAL, NodeKind.TAG, NodeKind.LEAF):
                member.safe_delete = False
                member.safe_insert = False
                member.unsafe_reason = f"Rule 1: {reason}"


def _non_descendant_internals(asg: ViewASG, node: ViewNode) -> list[ViewNode]:
    subtree = set(id(member) for member in node.iter_subtree())
    return [
        other
        for other in asg.internal_nodes()
        if id(other) not in subtree
    ]


def _apply_rule2(asg: ViewASG) -> None:
    relations_in_view = asg.relations()
    for node in asg.internal_nodes():
        if node.safe_delete is False:
            continue  # already unsafe via Rule 1
        current = asg.current_relations(node)
        if not current:
            node.safe_delete = False
            node.unsafe_reason = (
                "Rule 2: the node binds no relations of its own "
                "(CR is empty) — no clean source exists for a delete"
            )
            continue
        witness: Optional[str] = None
        blocking = ""
        for relation in sorted(current):
            extend = asg.schema.extend(relation, within=set(relations_in_view))
            conflict = None
            for other in _non_descendant_internals(asg, node):
                if extend & other.uc_binding:
                    conflict = other
                    break
            if conflict is None:
                witness = relation
                break
            blocking = (
                f"deleting {relation} (extend = {sorted(extend)}) would "
                f"affect <{conflict.name}> ({conflict.node_id})"
            )
        if witness is not None:
            node.safe_delete = True
            node.clean_source = witness
        else:
            node.safe_delete = False
            node.unsafe_reason = f"Rule 2: {blocking}"


def _apply_rule3(asg: ViewASG) -> None:
    for node in asg.internal_nodes():
        if node.safe_insert is False:
            continue  # already unsafe via Rule 1
        for other in _non_descendant_internals(asg, node):
            if other is node:
                continue
            if other.safe_delete is not False:
                continue
            shared = node.up_binding & asg.current_relations(other)
            if shared:
                node.safe_insert = False
                reason = (
                    f"Rule 3: inserting <{node.name}> may make an instance "
                    f"of <{other.name}> ({other.node_id}) appear — shared "
                    f"relation(s) {sorted(shared)} with an unsafe-delete node"
                )
                node.unsafe_reason = (
                    f"{node.unsafe_reason}; {reason}"
                    if node.unsafe_reason
                    else reason
                )
                break
        else:
            if node.safe_insert is None:
                node.safe_insert = True


def _mark_upoints(asg: ViewASG, base: BaseASG) -> None:
    for node in asg.internal_nodes() + [asg.root]:
        cv = view_closure(asg, node)
        cd = mapping_closure(base, cv)
        node.upoint_clean = cv.equivalent(cd)


# ---------------------------------------------------------------------------
# checking procedure
# ---------------------------------------------------------------------------


def star_check(asg: ViewASG, resolved: ResolvedUpdate) -> StarVerdict:
    """Observations 1 & 2 applied to every operation of the update."""
    verdicts = [_check_op(asg, op) for op in resolved.ops]
    if not verdicts:
        return StarVerdict(Category.UNCONDITIONALLY_TRANSLATABLE)
    return StarVerdict.worst(verdicts)


def _classification_node(node: ViewNode) -> ViewNode:
    """vS/vL updates are judged through their governing internal node."""
    if node.kind in (NodeKind.INTERNAL, NodeKind.ROOT):
        return node
    parent = _internal_parent(node)
    assert parent is not None
    return parent


def _check_op(asg: ViewASG, op: OpResolution) -> StarVerdict:
    assert op.node is not None
    if op.kind == "delete":
        return _check_delete(asg, op.node, op.text_delete)
    if op.kind == "insert":
        return _check_insert(asg, op.node)
    # replace = delete then insert (footnote 4)
    if op.node.kind in (NodeKind.TAG, NodeKind.LEAF):
        # the composed effect on a simple element is a one-attribute
        # UPDATE of the backing tuple — always translatable when valid
        return StarVerdict(
            Category.UNCONDITIONALLY_TRANSLATABLE,
            node=op.node,
            reason="replacing a simple element updates one attribute in place",
        )
    delete_verdict = _check_delete(asg, op.node, False)
    insert_verdict = _check_insert(asg, op.node)
    return StarVerdict.worst([delete_verdict, insert_verdict])


def _check_delete(asg: ViewASG, node: ViewNode, text_delete: bool) -> StarVerdict:
    if node.kind is NodeKind.ROOT:
        return StarVerdict(
            Category.UNCONDITIONALLY_TRANSLATABLE,
            node=node,
            reason="deleting the root is always translatable",
        )
    if node.kind is NodeKind.LEAF or text_delete:
        # a valid leaf/text delete nullifies one attribute of one tuple
        return StarVerdict(
            Category.UNCONDITIONALLY_TRANSLATABLE,
            node=node,
            reason="valid leaf-value deletes are always translatable",
        )
    subject = _classification_node(node)
    if subject.safe_delete is False:
        return StarVerdict(
            Category.UNTRANSLATABLE,
            node=subject,
            reason=f"deletion on an unsafe-delete node — {subject.unsafe_reason}",
        )
    if subject.upoint_clean:
        return StarVerdict(
            Category.UNCONDITIONALLY_TRANSLATABLE,
            node=subject,
            reason="deletion on a (clean | safe-delete) node",
        )
    return StarVerdict(
        Category.CONDITIONALLY_TRANSLATABLE,
        node=subject,
        condition=CONDITION_MINIMIZATION,
        reason=(
            "deletion on a (dirty | safe-delete) node — shared base data "
            "must not be over-deleted"
        ),
    )


def _check_insert(asg: ViewASG, node: ViewNode) -> StarVerdict:
    subject = _classification_node(node)
    if subject.kind is NodeKind.ROOT:
        return StarVerdict(
            Category.UNCONDITIONALLY_TRANSLATABLE,
            node=subject,
            reason="insertions under the root are judged at the child node",
        )
    if subject.safe_insert is False:
        return StarVerdict(
            Category.UNTRANSLATABLE,
            node=subject,
            reason=f"insertion on an unsafe-insert node — {subject.unsafe_reason}",
        )
    if subject.upoint_clean:
        return StarVerdict(
            Category.UNCONDITIONALLY_TRANSLATABLE,
            node=subject,
            reason="insertion on a (clean | safe-insert) node",
        )
    return StarVerdict(
        Category.CONDITIONALLY_TRANSLATABLE,
        node=subject,
        condition=CONDITION_DUP_CONSISTENCY,
        reason=(
            "insertion on a (dirty | safe-insert) node — duplicated parts "
            "must carry consistent values"
        ),
    )
