"""Step 1 — update validation against local constraints (Section 4).

Checks performed, per the paper:

**Delete**

1. *Overlap*: the update's non-correlation predicates must be jointly
   satisfiable with the check annotations of the leaves they constrain
   (u5: ``price > 50`` vs the view's ``price < 50`` → invalid).
2. *Deletability*: a node whose incoming edge has cardinality ``1``
   cannot be deleted (u6: ``bookid`` text is NOT NULL).

**Insert**

1. *Hierarchy conformance*: the fragment's tags must exist in the view
   schema with compatible cardinalities — required (type ``1``) children
   must be present, single-valued children must not repeat, unknown tags
   are rejected (u7: a book without its mandatory publisher).
2. *Value conformance*: each leaf value must be in its type's domain,
   satisfy the check annotation, and be non-empty when NOT NULL
   (u1: empty title, price 0.00).

Paths that do not resolve against the view schema at all are invalid as
well (resolution errors surface here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import TypeMismatchError
from ..xml.nodes import XMLElement
from .asg import Cardinality, NodeKind, ViewASG, ViewNode
from .satisfiability import constraints_overlap, value_satisfies
from .update_binding import OpResolution, ResolvedUpdate

__all__ = ["ValidationResult", "validate_update"]


@dataclass
class ValidationResult:
    valid: bool
    reason: str = ""
    #: every individual failure found (reason holds the first)
    failures: list[str] = field(default_factory=list)

    @classmethod
    def ok(cls) -> "ValidationResult":
        return cls(valid=True)

    @classmethod
    def fail(cls, failures: list[str]) -> "ValidationResult":
        return cls(valid=False, reason=failures[0], failures=failures)


def validate_update(asg: ViewASG, resolved: ResolvedUpdate) -> ValidationResult:
    """Run every Step-1 check; collects all failures."""
    failures: list[str] = []
    if resolved.error:
        failures.append(resolved.error)
        return ValidationResult.fail(failures)

    for resolution in resolved.predicates:
        if resolution.error:
            failures.append(resolution.error)
        elif resolution.constraint is not None and resolution.leaf is not None:
            if not constraints_overlap(
                [resolution.constraint], resolution.leaf.checks
            ):
                checks = " and ".join(str(c) for c in resolution.leaf.checks)
                failures.append(
                    f"predicate {resolution.predicate} cannot overlap the "
                    f"view region ({resolution.leaf.name}: {checks}) — the "
                    f"updated element can never appear in the view"
                )
    if failures:
        return ValidationResult.fail(failures)

    for op in resolved.ops:
        if op.error:
            failures.append(op.error)
            continue
        if op.kind == "delete":
            failures.extend(_validate_delete(asg, op))
        elif op.kind == "insert":
            failures.extend(_validate_insert(asg, op))
        elif op.kind == "replace":
            # replace = delete followed by insert (paper footnote 4).
            # For simple elements the composed effect is an in-place
            # value update, so the delete-side cardinality check does
            # not apply — only the new value must conform.
            if op.node is not None and op.node.kind in (
                NodeKind.TAG, NodeKind.LEAF,
            ):
                if op.fragment is not None:
                    failures.extend(
                        _validate_fragment(asg, op.node, op.fragment)
                    )
            else:
                failures.extend(_validate_delete(asg, op))
                if op.node is not None and op.fragment is not None:
                    failures.extend(
                        _validate_fragment(asg, op.node, op.fragment)
                    )
    if failures:
        return ValidationResult.fail(failures)
    return ValidationResult.ok()


# ---------------------------------------------------------------------------
# delete
# ---------------------------------------------------------------------------


def _validate_delete(asg: ViewASG, op: OpResolution) -> list[str]:
    node = op.node
    assert node is not None
    if op.text_delete:
        leaf = _leaf_of(node)
        if leaf is None:
            return [f"delete: {node.name} has no text content"]
        if leaf.not_null:
            return [
                f"delete: {leaf.name} is NOT NULL — its text cannot be removed"
            ]
        return []
    if node.kind is NodeKind.ROOT:
        return []  # deleting the root is always translatable (Section 5)
    # The cardinality-1 rejection applies to *value* nodes (tag/leaf):
    # removing them would leave a NOT NULL attribute empty (u6).  For
    # complex elements (u2: a book's publisher) the paper keeps the
    # update valid and lets STAR's unsafe-delete marking reject it.
    if node.kind in (NodeKind.TAG, NodeKind.LEAF):
        edge = asg.incoming_edge(node)
        assert edge is not None
        if edge.cardinality is Cardinality.ONE:
            return [
                f"delete: <{node.name}> has cardinality 1 under "
                f"<{node.parent.name}> — every instance must keep exactly one"
            ]
        leaf = _leaf_of(node)
        if leaf is not None and leaf.not_null:
            return [f"delete: {leaf.name} is NOT NULL and cannot be removed"]
    return []


def _leaf_of(node: ViewNode) -> Optional[ViewNode]:
    if node.kind is NodeKind.LEAF:
        return node
    for child in node.children:
        if child.kind is NodeKind.LEAF:
            return child
    return None


# ---------------------------------------------------------------------------
# insert
# ---------------------------------------------------------------------------


def _validate_insert(asg: ViewASG, op: OpResolution) -> list[str]:
    node = op.node
    assert node is not None and op.fragment is not None
    edge = asg.incoming_edge(node)
    if edge is not None and edge.cardinality is Cardinality.ONE:
        return [
            f"insert: <{node.name}> has cardinality 1 under "
            f"<{node.parent.name}> — another instance cannot be added"
        ]
    return _validate_fragment(asg, node, op.fragment)


def _validate_fragment(
    asg: ViewASG, node: ViewNode, fragment: XMLElement
) -> list[str]:
    """Check the fragment against the subtree rooted at *node*."""
    failures: list[str] = []
    if node.kind is NodeKind.LEAF:
        return failures
    if node.kind is NodeKind.TAG:
        leaf = _leaf_of(node)
        if leaf is not None:
            failures.extend(_validate_leaf_value(leaf, fragment))
        return failures

    # group fragment children by tag
    children_by_tag: dict[str, list[XMLElement]] = {}
    for child in fragment.child_elements():
        children_by_tag.setdefault(child.tag, []).append(child)

    for tag, instances in children_by_tag.items():
        child_node = node.child_by_tag(tag)
        if child_node is None:
            failures.append(
                f"insert: the view schema allows no <{tag}> inside "
                f"<{node.name}>"
            )
            continue
        edge = asg.edge(node, child_node)
        if edge.cardinality in (Cardinality.ONE, Cardinality.OPTIONAL):
            if len(instances) > 1:
                failures.append(
                    f"insert: <{tag}> may occur at most once inside "
                    f"<{node.name}> (found {len(instances)})"
                )
        for instance in instances:
            failures.extend(_validate_fragment(asg, child_node, instance))

    # required children (cardinality 1, or NOT NULL leaves) must appear
    for child_node in node.children:
        edge = asg.edge(node, child_node)
        required = edge.cardinality is Cardinality.ONE or (
            edge.cardinality is Cardinality.PLUS
        )
        if required and child_node.name not in children_by_tag:
            failures.append(
                f"insert: <{node.name}> requires a <{child_node.name}> child "
                f"(cardinality {edge.cardinality.value})"
            )
    return failures


def _validate_leaf_value(leaf: ViewNode, element: XMLElement) -> list[str]:
    text = element.text_content().strip()
    if not text:
        if leaf.not_null:
            return [f"insert: {leaf.name} is NOT NULL but the value is empty"]
        return []
    value: object = text
    if leaf.sql_type is not None:
        try:
            value = leaf.sql_type.coerce(text)
        except TypeMismatchError:
            return [
                f"insert: value {text!r} is outside the domain "
                f"{leaf.sql_type.name} of {leaf.name}"
            ]
    if not value_satisfies(value, leaf.checks):
        checks = " and ".join(str(c) for c in leaf.checks)
        return [
            f"insert: value {text!r} for {leaf.name} violates its check "
            f"annotation ({checks})"
        ]
    return []
