"""Well-nestedness analysis (the assumption of prior work, §8).

Braganholo et al. [7, 8] only handle *well-nested* views: nesting
follows key/foreign-key constraints, joins go through keys, and no
relation is published twice — under those restrictions every valid
update is translatable. The paper positions U-Filter as the general
tool for views where none of that is guaranteed.

This module makes the boundary checkable: given a marked view ASG it
reports whether the view is well-nested, and why not. It doubles as a
fast path — for a well-nested view a caller may skip STAR entirely
(every internal node is provably ``clean | safe``), which
``tests/core/test_wellnested.py`` verifies against the marking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .asg import NodeKind, ViewASG, ViewNode

__all__ = ["WellNestedReport", "analyze_well_nestedness"]


@dataclass
class WellNestedReport:
    well_nested: bool
    #: human-readable violations, empty when well nested
    violations: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.well_nested


def analyze_well_nestedness(asg: ViewASG) -> WellNestedReport:
    """Check the three well-nestedness conditions of prior work.

    1. **No republication** — every base relation is bound by at most
       one internal node (multiple references create duplication);
    2. **FK-aligned nesting** — every many-cardinality edge between
       internal nodes is joined through an actual foreign key whose
       direction matches the nesting (child references parent);
    3. **One relation per node** — each internal node binds exactly one
       new relation (no cross-products or multi-relation elements).
    """
    violations: list[str] = []
    schema = asg.schema

    # 1. republication
    seen: dict[str, ViewNode] = {}
    for node in asg.internal_nodes():
        for relation in asg.current_relations(node):
            if relation in seen:
                violations.append(
                    f"relation {relation!r} is published by both "
                    f"<{seen[relation].name}> ({seen[relation].node_id}) and "
                    f"<{node.name}> ({node.node_id})"
                )
            else:
                seen[relation] = node

    for node in asg.internal_nodes():
        current = asg.current_relations(node)
        edge = asg.incoming_edge(node)
        if edge is None:
            continue

        # 3. exactly one new relation per element
        if edge.cardinality.is_many and len(current) != 1:
            violations.append(
                f"<{node.name}> ({node.node_id}) binds "
                f"{sorted(current) or 'no'} relations — well-nested views "
                f"bind exactly one per element"
            )
            continue

        # 2. FK-aligned nesting for nested many-edges
        parent = node.parent
        while parent is not None and parent.kind not in (
            NodeKind.INTERNAL, NodeKind.ROOT,
        ):
            parent = parent.parent
        if (
            parent is None
            or parent.kind is NodeKind.ROOT
            or not edge.cardinality.is_many
        ):
            continue
        child_relation = next(iter(current), None)
        if child_relation is None:
            continue
        parent_relations = set(parent.uc_binding)
        fk_aligned = False
        for condition in edge.conditions:
            for own, other in (
                (condition.rel_a, condition.rel_b),
                (condition.rel_b, condition.rel_a),
            ):
                if own != child_relation or other not in parent_relations:
                    continue
                for fk in schema.relation(child_relation).foreign_keys:
                    if fk.ref_relation == other:
                        own_attr = (
                            condition.attr_a
                            if own == condition.rel_a
                            else condition.attr_b
                        )
                        other_attr = (
                            condition.attr_b
                            if own == condition.rel_a
                            else condition.attr_a
                        )
                        if (
                            own_attr in fk.columns
                            and other_attr in fk.ref_columns
                        ):
                            fk_aligned = True
        if not fk_aligned:
            rendered = ", ".join(str(c) for c in edge.conditions) or "none"
            violations.append(
                f"<{node.name}> ({node.node_id}) nests under "
                f"<{parent.name}> without a foreign-key-aligned join "
                f"(conditions: {rendered})"
            )

    return WellNestedReport(well_nested=not violations, violations=violations)
