"""Resolution of a parsed view update against the view ASG.

Before any checking step can run, the update's variable bindings, WHERE
predicates and operations must be anchored to schema nodes of ``G_V``:

* each FOR binding walks tag names from the root (or from an already
  bound variable),
* each predicate's variable path resolves to a leaf (giving the backing
  ``relation.attribute`` and, for literal comparisons, a
  :class:`ValueConstraint` usable in overlap checks and probe queries),
* each operation resolves to the schema node it deletes/inserts.

Resolution failures are recorded, not raised — Step 1 turns them into
*invalid* verdicts with the failure as the reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..xml.nodes import XMLElement
from ..xquery.ast import Binding, DocSource, Predicate, VarPath
from ..xquery.update_ast import DeleteOp, InsertOp, ReplaceOp, UpdateOp, ViewUpdate
from .asg import NodeKind, ValueConstraint, ViewASG, ViewNode

__all__ = ["PredicateResolution", "OpResolution", "ResolvedUpdate", "resolve_update"]


@dataclass
class PredicateResolution:
    predicate: Predicate
    #: leaf node backing the variable-path side (None when unresolved)
    leaf: Optional[ViewNode] = None
    relation: Optional[str] = None
    attribute: Optional[str] = None
    #: ``value op literal`` form, for literal comparisons
    constraint: Optional[ValueConstraint] = None
    error: str = ""


@dataclass
class OpResolution:
    op: UpdateOp
    kind: str                       # insert / delete / replace
    node: Optional[ViewNode] = None
    text_delete: bool = False
    fragment: Optional[XMLElement] = None
    error: str = ""


@dataclass
class ResolvedUpdate:
    update: ViewUpdate
    env: dict[str, ViewNode] = field(default_factory=dict)
    target: Optional[ViewNode] = None
    predicates: list[PredicateResolution] = field(default_factory=list)
    ops: list[OpResolution] = field(default_factory=list)
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error and all(not op.error for op in self.ops)


def _walk_tags(node: ViewNode, tags: tuple[str, ...]) -> Optional[ViewNode]:
    current = node
    for tag in tags:
        child = current.child_by_tag(tag)
        if child is None:
            return None
        current = child
    return current


def _resolve_bindings(
    asg: ViewASG, bindings: list[Binding], resolved: ResolvedUpdate
) -> None:
    for binding in bindings:
        source = binding.source
        if isinstance(source, DocSource):
            node = _walk_tags(asg.root, source.path)
            if node is None:
                resolved.error = (
                    f"binding ${binding.var}: path "
                    f"/{'/'.join(source.path)} does not exist in the view schema"
                )
                return
            resolved.env[binding.var] = node
            continue
        if isinstance(source, VarPath):
            if source.var not in resolved.env:
                resolved.error = f"binding ${binding.var}: ${source.var} is unbound"
                return
            node = _walk_tags(resolved.env[source.var], source.segments)
            if node is None:
                resolved.error = (
                    f"binding ${binding.var}: path {source} does not exist "
                    f"in the view schema"
                )
                return
            resolved.env[binding.var] = node
            continue
        resolved.error = f"binding ${binding.var}: unsupported source"
        return


def _leaf_of(node: ViewNode) -> Optional[ViewNode]:
    """The leaf behind a tag node (or the node itself when already a leaf)."""
    if node.kind is NodeKind.LEAF:
        return node
    if node.kind is NodeKind.TAG:
        for child in node.children:
            if child.kind is NodeKind.LEAF:
                return child
    return None


def _resolve_predicate(
    asg: ViewASG, predicate: Predicate, env: dict[str, ViewNode]
) -> PredicateResolution:
    resolution = PredicateResolution(predicate=predicate)
    # orient so the variable path is on the left
    left, right, op = predicate.left, predicate.right, predicate.op
    if not isinstance(left, VarPath) and isinstance(right, VarPath):
        left, right = right, left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if not isinstance(left, VarPath):
        resolution.error = f"predicate {predicate} references no variable"
        return resolution
    if left.var not in env:
        resolution.error = f"predicate {predicate}: ${left.var} is unbound"
        return resolution
    node = _walk_tags(env[left.var], left.segments)
    if node is None:
        resolution.error = (
            f"predicate {predicate}: path {left} does not exist in the view"
        )
        return resolution
    leaf = _leaf_of(node)
    if leaf is None:
        resolution.error = (
            f"predicate {predicate}: path {left} names a complex element"
        )
        return resolution
    resolution.leaf = leaf
    resolution.relation = leaf.relation
    resolution.attribute = leaf.attribute
    if isinstance(right, VarPath):
        resolution.error = (
            f"predicate {predicate}: correlations between update variables "
            f"are not supported"
        )
        return resolution
    resolution.constraint = ValueConstraint(op, right)
    return resolution


def resolve_update(asg: ViewASG, update: ViewUpdate) -> ResolvedUpdate:
    """Anchor *update* to the nodes of ``G_V``."""
    resolved = ResolvedUpdate(update=update)
    _resolve_bindings(asg, update.bindings, resolved)
    if resolved.error:
        return resolved
    if update.target_var not in resolved.env:
        resolved.error = f"update target ${update.target_var} is unbound"
        return resolved
    resolved.target = resolved.env[update.target_var]
    for predicate in update.where:
        resolved.predicates.append(
            _resolve_predicate(asg, predicate, resolved.env)
        )
    for op in update.ops:
        resolved.ops.append(_resolve_op(asg, op, resolved))
    return resolved


def _resolve_op(
    asg: ViewASG, op: UpdateOp, resolved: ResolvedUpdate
) -> OpResolution:
    assert resolved.target is not None
    if isinstance(op, InsertOp):
        node = resolved.target.child_by_tag(op.fragment.tag)
        result = OpResolution(
            op=op, kind="insert", node=node, fragment=op.fragment
        )
        if node is None:
            result.error = (
                f"insert: the view schema allows no <{op.fragment.tag}> "
                f"inside <{resolved.target.name}>"
            )
        return result
    if isinstance(op, (DeleteOp, ReplaceOp)):
        kind = "delete" if isinstance(op, DeleteOp) else "replace"
        path = op.path
        if path.var not in resolved.env:
            return OpResolution(
                op=op, kind=kind, error=f"{kind}: ${path.var} is unbound"
            )
        node = _walk_tags(resolved.env[path.var], path.segments)
        result = OpResolution(
            op=op,
            kind=kind,
            node=node,
            text_delete=path.text_fn,
            fragment=op.fragment if isinstance(op, ReplaceOp) else None,
        )
        if node is None:
            result.error = (
                f"{kind}: path {path} does not exist in the view schema"
            )
        return result
    return OpResolution(op=op, kind="unknown", error=f"unsupported op {op!r}")
