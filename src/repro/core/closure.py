"""Closure and mapping-closure algebra (Section 5.1.2).

A closure is a canonical nested structure: a set of leaf names
(``rel.attr``) plus a set of *starred groups*, each a nested closure
labelled with its (normalized) join condition.  Cardinalities ``1``/``?``
are flattened away and ``+``/``*`` both become groups, exactly as the
paper simplifies.

Operations:

* ``contains`` — the paper's ``C1 ⊑ C2`` ("C1 appears in C2"): C1's
  content is a subset of C2's top level or of any nested group;
* ``equivalent`` — mutual containment (``≡``);
* ``join`` — the ``⊔`` union that drops closures absorbed by others.

The *mapping closure* of a view node takes the distinct leaf names of
its view closure, maps them to base-ASG leaves of the same name, and
joins their base closures.  ``UPoint(v) = clean`` iff the two are
equivalent (Definition 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .asg import BaseASG, JoinCondition, ViewASG, ViewNode

__all__ = [
    "Closure",
    "Group",
    "view_closure",
    "base_relation_closure",
    "base_leaf_closure",
    "mapping_closure",
    "join_closures",
]


@dataclass(frozen=True)
class Group:
    """A starred sub-closure with its condition label."""

    closure: "Closure"
    condition: Optional[str] = None

    def __str__(self) -> str:
        label = self.condition or ""
        return f"({self.closure})*{label}"


@dataclass(frozen=True)
class Closure:
    leaves: frozenset[str]
    groups: frozenset[Group]

    # -- algebra ---------------------------------------------------------------

    def all_levels(self) -> Iterable["Closure"]:
        """This closure plus every nested group closure (any depth)."""
        yield self
        for group in self.groups:
            yield from group.closure.all_levels()

    def contains(self, other: "Closure") -> bool:
        """``other ⊑ self``."""
        for level in self.all_levels():
            if other.leaves <= level.leaves and other.groups <= level.groups:
                return True
        return False

    def equivalent(self, other: "Closure") -> bool:
        """``self ≡ other``."""
        return self.contains(other) and other.contains(self)

    def leaf_names(self) -> frozenset[str]:
        """``getNodes`` — every leaf name at any depth, deduplicated."""
        names = set(self.leaves)
        for group in self.groups:
            names |= group.closure.leaf_names()
        return frozenset(names)

    def is_empty(self) -> bool:
        return not self.leaves and not self.groups

    def __str__(self) -> str:
        parts = sorted(self.leaves)
        parts.extend(sorted(str(group) for group in self.groups))
        return "{" + ", ".join(parts) + "}"


def _condition_label(conditions: tuple[JoinCondition, ...]) -> Optional[str]:
    if not conditions:
        return None
    return "&".join(sorted(condition.label() for condition in conditions))


def join_closures(closures: Iterable[Closure]) -> Closure:
    """The paper's ``⊔``: drop absorbed closures, union the rest."""
    pending = [c for c in closures if not c.is_empty()]
    survivors: list[Closure] = []
    for index, closure in enumerate(pending):
        absorbed = False
        for other_index, other in enumerate(pending):
            if other_index == index:
                continue
            if other.contains(closure) and not (
                closure.contains(other) and other_index > index
            ):
                # equal closures: keep only the first occurrence
                absorbed = True
                break
        if not absorbed:
            survivors.append(closure)
    leaves: set[str] = set()
    groups: set[Group] = set()
    for closure in survivors:
        leaves |= closure.leaves
        groups |= closure.groups
    return Closure(frozenset(leaves), frozenset(groups))


# ---------------------------------------------------------------------------
# view closures
# ---------------------------------------------------------------------------


def view_closure(asg: ViewASG, node: ViewNode) -> Closure:
    """``v+`` in ``G_V``: children's closures grouped by cardinality."""
    from .asg import NodeKind

    if node.kind is NodeKind.LEAF:
        return Closure(frozenset({node.name}), frozenset())
    leaves: set[str] = set()
    groups: set[Group] = set()
    for child in node.children:
        edge = asg.edge(node, child)
        child_closure = view_closure(asg, child)
        if edge.cardinality.is_many:
            groups.add(
                Group(child_closure, _condition_label(edge.conditions))
            )
        else:
            leaves |= child_closure.leaves
            groups |= child_closure.groups
    return Closure(frozenset(leaves), frozenset(groups))


# ---------------------------------------------------------------------------
# base closures
# ---------------------------------------------------------------------------


def base_relation_closure(
    base: BaseASG, relation: str, _visited: frozenset[str] = frozenset()
) -> Closure:
    """``n+`` for a relation node, honouring each FK's delete policy.

    A referencing relation only joins the closure when its FK cascades —
    the paper's SET NULL remark (§5.1.2): a non-cascade policy means the
    children survive the delete, so they are not part of its effect.
    """
    node = base.relation_node(relation)
    leaves = frozenset(child.name for child in node.children if child.is_leaf)
    groups: set[Group] = set()
    for edge in base.children_of(relation):
        if not edge.cascades:
            continue
        child_relation = edge.child.relation
        if child_relation in _visited:
            continue  # FK cycle guard (self-references etc.)
        child_closure = base_relation_closure(
            base, child_relation, _visited | {relation}
        )
        groups.add(Group(child_closure, _condition_label(edge.conditions)))
    return Closure(leaves, frozenset(groups))


def base_leaf_closure(base: BaseASG, leaf_name: str) -> Optional[Closure]:
    """``n+`` for a leaf: the closure of its parent relation."""
    leaf = base.leaf(leaf_name)
    if leaf is None:
        return None
    assert leaf.parent is not None
    return base_relation_closure(base, leaf.parent.relation)


def mapping_closure(base: BaseASG, view_node_closure: Closure) -> Closure:
    """``C_D`` for a view node whose ``C_V`` is *view_node_closure*."""
    closures = []
    for name in sorted(view_node_closure.leaf_names()):
        closure = base_leaf_closure(base, name)
        if closure is not None:
            closures.append(closure)
    return join_closures(closures)
