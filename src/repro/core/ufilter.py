"""The U-Filter pipeline (Fig. 5) and its result taxonomy (Fig. 6).

``UFilter`` wires the three checking steps together:

1. :func:`validate_update` — schema validation against local constraints;
2. :func:`star_check` over the marked ASGs — untranslatable updates are
   rejected, conditions are attached to conditionally translatable ones;
3. :class:`DataChecker` — probe-based context/point checks and, for
   updates that survive, the translated SQL (optionally executed).

The per-update outcome is a :class:`CheckReport`; ``Outcome`` refines
the paper's taxonomy with the data-level results (DATA_CONFLICT for
Step-3 rejections, TRANSLATED once SQL has been produced/applied).

Note on u4-style inserts: the paper's Section 6 walks an insert with a
key conflict through the data check, but its own STAR rules already
classify inserts on unsafe-insert nodes as untranslatable at Step 2
(Observation 2 — BookView's book node is unsafe-insert because the
publisher relation is republished).  The pipeline is faithful to the
formal rules; ``force_data_check=True`` reproduces the Section-6
narrative by sending such updates to Step 3 anyway.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Optional, Union

from ..rdb.database import Database
from ..xquery.ast import ViewQuery
from ..xquery.parser import parse_view_query
from ..xquery.update_ast import ViewUpdate
from ..xquery.update_parser import parse_view_update
from .asg import BaseASG
from .asg_builder import build_base_asg, build_view_asg
from .datacheck import DataChecker, DataCheckResult
from .star import Category, StarVerdict, mark_view_asg, star_check
from .update_binding import ResolvedUpdate, resolve_update
from .validation import ValidationResult, validate_update

__all__ = ["Outcome", "CheckReport", "UFilter"]


class Outcome(enum.Enum):
    INVALID = "invalid"
    UNTRANSLATABLE = "untranslatable"
    CONDITIONALLY_TRANSLATABLE = "conditionally translatable"
    UNCONDITIONALLY_TRANSLATABLE = "unconditionally translatable"
    DATA_CONFLICT = "data conflict"
    TRANSLATED = "translated"

    @property
    def accepted(self) -> bool:
        """True when the update may proceed to (or through) translation."""
        return self in (
            Outcome.CONDITIONALLY_TRANSLATABLE,
            Outcome.UNCONDITIONALLY_TRANSLATABLE,
            Outcome.TRANSLATED,
        )


@dataclass
class CheckReport:
    update: ViewUpdate
    outcome: Outcome
    stage: str                      # validation / star / data / translation
    reason: str = ""
    validation: Optional[ValidationResult] = None
    star: Optional[StarVerdict] = None
    data: Optional[DataCheckResult] = None
    resolved: Optional[ResolvedUpdate] = None
    condition: Optional[str] = None
    #: per-stage wall-clock seconds
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def sql_updates(self) -> list[str]:
        return list(self.data.statements) if self.data else []

    @property
    def probe_queries(self) -> list[str]:
        return list(self.data.probes) if self.data else []

    def summary(self) -> str:
        name = self.update.name or "update"
        lines = [f"{name}: {self.outcome.value} (stage: {self.stage})"]
        if self.reason:
            lines.append(f"  reason: {self.reason}")
        if self.condition:
            lines.append(f"  condition: {self.condition}")
        for probe in self.probe_queries:
            lines.append(f"  probe: {probe}")
        for statement in self.sql_updates:
            lines.append(f"  sql: {statement}")
        return "\n".join(lines)


class UFilter:
    """The lightweight view update checker of the paper.

    Parameters
    ----------
    db:
        The relational database the view is published over.
    view:
        The view definition (query text or parsed :class:`ViewQuery`).
    """

    def __init__(
        self,
        db: Database,
        view: Union[str, ViewQuery],
        cached_asg: Optional[str] = None,
    ) -> None:
        self.db = db
        self.view = parse_view_query(view) if isinstance(view, str) else view
        start = time.perf_counter()
        if cached_asg is not None:
            # §3.1: the compiled graphs are reusable across checker
            # instances — rehydrate instead of re-marking
            from .asg_cache import load_view_asg

            self.view_asg = load_view_asg(cached_asg, db.schema)
        else:
            self.view_asg = build_view_asg(self.view, db.schema)
        self.base_asg: BaseASG = build_base_asg(self.view_asg, db.schema)
        if cached_asg is None:
            mark_view_asg(self.view_asg, self.base_asg)
        #: compile-time STAR marking cost (the paper reports 0.12–0.15 s)
        self.marking_seconds = time.perf_counter() - start
        self.checker = DataChecker(db, self.view_asg)

    def dump_asg(self) -> str:
        """Serialize the marked view ASG (pass back as ``cached_asg``)."""
        from .asg_cache import dump_view_asg

        return dump_view_asg(self.view_asg)

    # ------------------------------------------------------------------

    def parse(self, update: Union[str, ViewUpdate], name: str = "") -> ViewUpdate:
        if isinstance(update, ViewUpdate):
            return update
        return parse_view_update(update, name=name)

    def check(
        self,
        update: Union[str, ViewUpdate],
        strategy: str = "outside",
        execute: bool = False,
        run_data_checks: bool = True,
        force_data_check: bool = False,
        expand_cascades: bool = False,
        index_temp_tables: bool = False,
        qa: bool = False,
    ) -> CheckReport:
        """Run the update through the three-step filter.

        ``execute=True`` applies the translated SQL to the database;
        otherwise probes run read-only and the SQL is only generated.
        ``run_data_checks=False`` stops after Step 2 (schema-only mode).
        ``force_data_check=True`` sends even untranslatable updates to
        Step 3 (Section-6 narrative mode; see the module docstring).
        ``expand_cascades=True`` translates subtree deletes into one
        statement per relation instead of relying on engine cascades.
        ``index_temp_tables=True`` attaches ad-hoc hash indexes to
        materialized probe results (outside strategy), turning its
        temp-table joins into index nested loops.
        ``qa=True`` runs the post-translation QA audit
        (:mod:`repro.core.qa`) over the planned ops; pre-apply ERROR
        findings demote the outcome to DATA_CONFLICT, and all findings
        land on ``report.data.qa_findings``.
        """
        parsed = self.parse(update)
        timings: dict[str, float] = {}

        start = time.perf_counter()
        resolved = resolve_update(self.view_asg, parsed)
        validation = validate_update(self.view_asg, resolved)
        timings["validation"] = time.perf_counter() - start
        if not validation.valid:
            return CheckReport(
                update=parsed,
                outcome=Outcome.INVALID,
                stage="validation",
                reason=validation.reason,
                validation=validation,
                resolved=resolved,
                timings=timings,
            )

        start = time.perf_counter()
        verdict = star_check(self.view_asg, resolved)
        timings["star"] = time.perf_counter() - start
        if verdict.category is Category.UNTRANSLATABLE and not force_data_check:
            return CheckReport(
                update=parsed,
                outcome=Outcome.UNTRANSLATABLE,
                stage="star",
                reason=verdict.reason,
                validation=validation,
                star=verdict,
                resolved=resolved,
                timings=timings,
            )

        if not run_data_checks:
            outcome = (
                Outcome.CONDITIONALLY_TRANSLATABLE
                if verdict.category is Category.CONDITIONALLY_TRANSLATABLE
                else Outcome.UNCONDITIONALLY_TRANSLATABLE
            )
            return CheckReport(
                update=parsed,
                outcome=outcome,
                stage="star",
                reason=verdict.reason,
                validation=validation,
                star=verdict,
                resolved=resolved,
                condition=verdict.condition,
                timings=timings,
            )

        start = time.perf_counter()
        data = self.checker.check_and_translate(
            resolved,
            verdict,
            strategy=strategy,
            execute=execute,
            expand_cascades=expand_cascades,
            index_temp_tables=index_temp_tables,
            qa=qa,
        )
        timings["data"] = time.perf_counter() - start
        if not data.ok:
            return CheckReport(
                update=parsed,
                outcome=Outcome.DATA_CONFLICT,
                stage="data",
                reason=data.conflict,
                validation=validation,
                star=verdict,
                data=data,
                resolved=resolved,
                condition=verdict.condition,
                timings=timings,
            )
        return CheckReport(
            update=parsed,
            outcome=Outcome.TRANSLATED,
            stage="translation",
            reason=verdict.reason,
            validation=validation,
            star=verdict,
            data=data,
            resolved=resolved,
            condition=verdict.condition,
            timings=timings,
        )

    # convenience wrappers ---------------------------------------------------

    def classify(self, update: Union[str, ViewUpdate]) -> Outcome:
        """Schema-level classification only (Steps 1–2, no data access)."""
        return self.check(update, run_data_checks=False).outcome

    def describe_asg(self) -> str:
        return self.view_asg.describe()

    def updatability_matrix(self) -> list[dict[str, str]]:
        """Per-node updatability at view-definition time.

        Keller [22] proposed choosing update translators in a dialog
        when the view is defined; the STAR marks make that dialog
        automatic: for every complex element of the view, report how a
        delete and an insert anchored there would classify — before any
        update ever arrives.  Conditions are named where applicable.
        """
        from .star import CONDITION_DUP_CONSISTENCY, CONDITION_MINIMIZATION

        rows: list[dict[str, str]] = []
        for node in self.view_asg.internal_nodes():
            if node.safe_delete is False:
                delete = "untranslatable"
            elif node.upoint_clean:
                delete = "unconditionally translatable"
            else:
                delete = f"conditional ({CONDITION_MINIMIZATION})"
            if node.safe_insert is False:
                insert = "untranslatable"
            elif node.upoint_clean:
                insert = "unconditionally translatable"
            else:
                insert = f"conditional ({CONDITION_DUP_CONSISTENCY})"
            rows.append(
                {
                    "node": node.node_id,
                    "element": node.name,
                    "mark": node.mark,
                    "delete": delete,
                    "insert": insert,
                    "reason": node.unsafe_reason,
                }
            )
        return rows
