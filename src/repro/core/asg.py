"""Annotated Schema Graphs (Section 3 of the paper).

Two graphs are generated per view:

* the **view ASG** ``G_V`` — the hierarchical structure of the XML view
  with node annotations (name / type / property / check for leaves,
  UCBinding / UPBinding for internal nodes) and edge annotations
  (cardinality ``1 ? + *`` plus correlation conditions);
* the **base ASG** ``G_D`` — a DAG over the referenced relations and
  attributes capturing key / foreign-key structure.

This module holds the data model; :mod:`repro.core.asg_builder`
constructs both graphs from a view query and a relational schema.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from ..errors import UFilterError
from ..rdb.schema import Schema
from ..rdb.types import SQLType

__all__ = [
    "NodeKind",
    "Cardinality",
    "JoinCondition",
    "ValueConstraint",
    "ViewNode",
    "ViewEdge",
    "ViewASG",
    "BaseNode",
    "BaseEdge",
    "BaseASG",
]


class NodeKind(enum.Enum):
    ROOT = "root"          # v_R
    INTERNAL = "internal"  # v_C — complex view element
    TAG = "tag"            # v_S — simple element wrapping a value
    LEAF = "leaf"          # v_L — atomic value


class Cardinality(enum.Enum):
    ONE = "1"
    OPTIONAL = "?"
    PLUS = "+"
    STAR = "*"

    @property
    def is_many(self) -> bool:
        return self in (Cardinality.PLUS, Cardinality.STAR)


@dataclass(frozen=True)
class JoinCondition:
    """An equality correlation predicate ``relA.attrA = relB.attrB``."""

    rel_a: str
    attr_a: str
    rel_b: str
    attr_b: str
    op: str = "="

    def normalized(self) -> "JoinCondition":
        """Orientation-independent canonical form (for closure labels)."""
        left = (self.rel_a, self.attr_a)
        right = (self.rel_b, self.attr_b)
        if left <= right:
            return self
        return JoinCondition(self.rel_b, self.attr_b, self.rel_a, self.attr_a, self.op)

    def label(self) -> str:
        c = self.normalized()
        return f"{c.rel_a}.{c.attr_a}{c.op}{c.rel_b}.{c.attr_b}"

    def relations(self) -> tuple[str, str]:
        return (self.rel_a, self.rel_b)

    def __str__(self) -> str:
        return f"{self.rel_a}.{self.attr_a} {self.op} {self.rel_b}.{self.attr_b}"


@dataclass(frozen=True)
class ValueConstraint:
    """One atomic check on a leaf value: ``value op literal``.

    The *check annotation* of a leaf is a set of these, merged from the
    relational CHECK constraints and the view's non-correlation
    predicates (e.g. book.price ends up with ``{> 0.00, < 50.00}``).
    """

    op: str
    literal: Any

    def __str__(self) -> str:
        return f"value {self.op} {self.literal!r}"


@dataclass
class ViewNode:
    """A node of the view ASG with its annotation set."""

    node_id: str
    kind: NodeKind
    name: str                          # tag name; for leaves "rel.attr"
    parent: Optional["ViewNode"] = None
    children: list["ViewNode"] = field(default_factory=list)

    # leaf annotations ------------------------------------------------------
    relation: Optional[str] = None     # backing relation (leaf/tag)
    attribute: Optional[str] = None    # backing attribute (leaf/tag)
    sql_type: Optional[SQLType] = None
    not_null: bool = False             # property = {Not Null}
    checks: tuple[ValueConstraint, ...] = ()

    # internal/root annotations --------------------------------------------
    uc_binding: frozenset[str] = frozenset()
    up_binding: frozenset[str] = frozenset()
    #: non-correlation predicates of the FLWR that introduced this node,
    #: as (relation, attribute, constraint) triples — they filter which
    #: base tuples can appear here (used by validation and probe queries)
    value_filters: tuple[tuple[str, str, "ValueConstraint"], ...] = ()

    # STAR marks (filled by the marking procedure) ---------------------------
    safe_delete: Optional[bool] = None
    safe_insert: Optional[bool] = None
    upoint_clean: Optional[bool] = None
    #: witness relation for Rule 2 (the clean-source candidate), if any
    clean_source: Optional[str] = None
    #: the one undetermined relation driving this node's iteration
    #: (Rule 1 analysis) — inserts must create a fresh tuple of it
    driving_relation: Optional[str] = None
    #: human-readable note on why the node was marked unsafe
    unsafe_reason: str = ""

    # -- structure -----------------------------------------------------------

    def add_child(self, child: "ViewNode") -> "ViewNode":
        child.parent = self
        self.children.append(child)
        return child

    def iter_subtree(self) -> Iterator["ViewNode"]:
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def ancestors(self) -> Iterator["ViewNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_descendant_of(self, other: "ViewNode") -> bool:
        return any(ancestor is other for ancestor in self.ancestors())

    def child_by_tag(self, tag: str) -> Optional["ViewNode"]:
        for child in self.children:
            if child.name == tag:
                return child
        return None

    @property
    def mark(self) -> str:
        """The paper's ``(UPoint | UContext)`` label, e.g. ``dirty | s-d∧u-i``."""
        if self.kind not in (NodeKind.INTERNAL, NodeKind.ROOT):
            return ""
        upoint = (
            "clean" if self.upoint_clean
            else "dirty" if self.upoint_clean is not None
            else "?"
        )
        d = "s-d" if self.safe_delete else "u-d"
        i = "s-i" if self.safe_insert else "u-i"
        return f"{upoint} | {d}∧{i}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ViewNode {self.node_id} {self.kind.value} {self.name!r}>"


@dataclass
class ViewEdge:
    """Edge annotation: cardinality plus correlation conditions."""

    parent: ViewNode
    child: ViewNode
    cardinality: Cardinality
    conditions: tuple[JoinCondition, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        conditions = ", ".join(str(c) for c in self.conditions)
        return (
            f"<ViewEdge ({self.parent.node_id}, {self.child.node_id}) "
            f"type={self.cardinality.value} {conditions}>"
        )


class ViewASG:
    """The view Annotated Schema Graph ``G_V``."""

    def __init__(self, root: ViewNode, schema: Schema) -> None:
        self.root = root
        self.schema = schema
        self.edges: dict[tuple[str, str], ViewEdge] = {}
        self._nodes: dict[str, ViewNode] = {}
        for node in root.iter_subtree():
            self._nodes[node.node_id] = node

    # -- registration (builder API) -------------------------------------------

    def register(self, node: ViewNode) -> None:
        self._nodes[node.node_id] = node

    def add_edge(self, edge: ViewEdge) -> None:
        self.edges[(edge.parent.node_id, edge.child.node_id)] = edge

    # -- lookups ----------------------------------------------------------------

    def node(self, node_id: str) -> ViewNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UFilterError(f"no ASG node {node_id!r}") from None

    def nodes(self) -> list[ViewNode]:
        return list(self.root.iter_subtree())

    def internal_nodes(self) -> list[ViewNode]:
        return [
            node for node in self.nodes() if node.kind is NodeKind.INTERNAL
        ]

    def leaf_nodes(self) -> list[ViewNode]:
        return [node for node in self.nodes() if node.kind is NodeKind.LEAF]

    def edge(self, parent: ViewNode, child: ViewNode) -> ViewEdge:
        try:
            return self.edges[(parent.node_id, child.node_id)]
        except KeyError:
            raise UFilterError(
                f"no edge ({parent.node_id}, {child.node_id})"
            ) from None

    def incoming_edge(self, node: ViewNode) -> Optional[ViewEdge]:
        if node.parent is None:
            return None
        return self.edge(node.parent, node)

    def relations(self) -> frozenset[str]:
        """``rel(DEF_V)`` — every base relation the view references."""
        return self.root.up_binding

    def conditions_in_scope(self, node: ViewNode) -> list[JoinCondition]:
        """Join conditions on every edge from the root down to *node*."""
        chain: list[ViewNode] = [node]
        chain.extend(node.ancestors())
        chain.reverse()
        conditions: list[JoinCondition] = []
        for parent, child in zip(chain, chain[1:]):
            edge = self.edges.get((parent.node_id, child.node_id))
            if edge is not None:
                conditions.extend(edge.conditions)
        return conditions

    def value_filters_in_scope(
        self, node: ViewNode
    ) -> list[tuple[str, str, ValueConstraint]]:
        """Non-correlation filters on every node from the root to *node*."""
        chain: list[ViewNode] = [node]
        chain.extend(node.ancestors())
        filters: list[tuple[str, str, ValueConstraint]] = []
        for member in reversed(chain):
            filters.extend(member.value_filters)
        return filters

    def current_relations(self, node: ViewNode) -> frozenset[str]:
        """The paper's ``CR(vC) = UCBinding(vC) − UCBinding(parent)``.

        The parent is the nearest *internal-or-root* ancestor (tag and
        leaf nodes never carry bindings).
        """
        parent = node.parent
        while parent is not None and parent.kind not in (
            NodeKind.INTERNAL, NodeKind.ROOT,
        ):
            parent = parent.parent
        parent_binding = parent.uc_binding if parent is not None else frozenset()
        return node.uc_binding - parent_binding

    def resolve_tag_path(self, tags: tuple[str, ...]) -> Optional[ViewNode]:
        """Walk tag names from the root; None when the path leaves G_V."""
        node = self.root
        for tag in tags:
            child = node.child_by_tag(tag)
            if child is None:
                return None
            node = child
        return node

    def describe(self) -> str:
        """Multi-line dump mirroring the paper's node/edge tables."""
        lines = []
        for node in self.nodes():
            mark = f"  ({node.mark})" if node.kind in (
                NodeKind.INTERNAL, NodeKind.ROOT,
            ) else ""
            extra = ""
            if node.kind is NodeKind.LEAF:
                checks = ", ".join(str(c) for c in node.checks)
                notnull = " Not Null" if node.not_null else ""
                extra = f" [{node.sql_type.name if node.sql_type else '?'}{notnull}] {checks}"
            if node.kind in (NodeKind.INTERNAL, NodeKind.ROOT):
                extra = (
                    f" UC={sorted(node.uc_binding)} UP={sorted(node.up_binding)}"
                )
            lines.append(
                f"{node.node_id:5} {node.kind.value:8} {node.name:24}{extra}{mark}"
            )
        for (pid, cid), edge in self.edges.items():
            conditions = ", ".join(str(c) for c in edge.conditions)
            lines.append(
                f"edge ({pid},{cid}) type={edge.cardinality.value} {conditions}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Base ASG
# ---------------------------------------------------------------------------


@dataclass
class BaseNode:
    """A node of the base ASG: a relation or a relational attribute."""

    node_id: str
    name: str                       # "book" or "book.bookid"
    is_leaf: bool
    relation: str = ""
    attribute: Optional[str] = None
    is_key: bool = False            # property = {Key}
    parent: Optional["BaseNode"] = None
    children: list["BaseNode"] = field(default_factory=list)


@dataclass
class BaseEdge:
    """FK-derived edge between relation nodes."""

    parent: BaseNode               # referenced relation
    child: BaseNode                # referencing relation
    cardinality: Cardinality
    conditions: tuple[JoinCondition, ...]
    cascades: bool = True          # False under SET NULL / RESTRICT

    def condition_label(self) -> str:
        return "&".join(c.label() for c in self.conditions)


class BaseASG:
    """The base Annotated Schema Graph ``G_D`` (a DAG over relations)."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.relation_nodes: dict[str, BaseNode] = {}
        self.leaf_nodes: dict[str, BaseNode] = {}   # keyed by "rel.attr"
        self.edges: list[BaseEdge] = []

    def relation_node(self, relation: str) -> BaseNode:
        try:
            return self.relation_nodes[relation]
        except KeyError:
            raise UFilterError(f"base ASG has no relation {relation!r}") from None

    def leaf(self, name: str) -> Optional[BaseNode]:
        return self.leaf_nodes.get(name)

    def children_of(self, relation: str) -> list[BaseEdge]:
        node = self.relation_node(relation)
        return [edge for edge in self.edges if edge.parent is node]

    def describe(self) -> str:
        lines = []
        for relation, node in self.relation_nodes.items():
            leaves = ", ".join(
                child.name + (" [Key]" if child.is_key else "")
                for child in node.children
                if child.is_leaf
            )
            lines.append(f"{node.node_id:5} {relation}: {leaves}")
        for edge in self.edges:
            conditions = ", ".join(str(c) for c in edge.conditions)
            lines.append(
                f"edge ({edge.parent.name}, {edge.child.name}) "
                f"type={edge.cardinality.value} {conditions} "
                f"{'cascade' if edge.cascades else 'no-cascade'}"
            )
        return "\n".join(lines)
