"""U-Filter core: ASGs, the three checking steps, translation, verification."""

from .asg import (
    BaseASG,
    BaseEdge,
    BaseNode,
    Cardinality,
    JoinCondition,
    NodeKind,
    ValueConstraint,
    ViewASG,
    ViewEdge,
    ViewNode,
)
from .asg_builder import audit_view_query, build_base_asg, build_view_asg
from .asg_cache import ASGStore, dump_view_asg, load_view_asg, shared_store
from .closure import (
    Closure,
    Group,
    base_leaf_closure,
    base_relation_closure,
    join_closures,
    mapping_closure,
    view_closure,
)
from .datacheck import STRATEGIES, DataChecker, DataCheckResult
from .faultsweep import FaultFinding, SweepSummary, sweep_many, sweep_scenario
from .qa import QAAuditor, QAFinding, qa_errors, raise_on_error
from .satisfiability import constraints_overlap, is_satisfiable, value_satisfies
from .star import (
    CONDITION_DUP_CONSISTENCY,
    CONDITION_MINIMIZATION,
    Category,
    StarVerdict,
    mark_view_asg,
    star_check,
)
from .session import (
    FAILURE_POLICIES,
    SessionEntry,
    SessionResult,
    UpdateSession,
    run_per_update,
    serialize_ops,
)
from .translation import (
    ProbeCache,
    ProbeResult,
    Translator,
    TupleDelete,
    TupleInsert,
    TupleUpdate,
)
from .ufilter import CheckReport, Outcome, UFilter
from .update_binding import (
    OpResolution,
    PredicateResolution,
    ResolvedUpdate,
    resolve_update,
)
from .validation import ValidationResult, validate_update
from .verify import RectangleReport, check_rectangle
from .wellnested import WellNestedReport, analyze_well_nestedness

__all__ = [
    "analyze_well_nestedness",
    "ASGStore",
    "audit_view_query",
    "BaseASG",
    "BaseEdge",
    "BaseNode",
    "base_leaf_closure",
    "base_relation_closure",
    "build_base_asg",
    "build_view_asg",
    "Cardinality",
    "Category",
    "check_rectangle",
    "CheckReport",
    "Closure",
    "CONDITION_DUP_CONSISTENCY",
    "CONDITION_MINIMIZATION",
    "constraints_overlap",
    "DataChecker",
    "DataCheckResult",
    "dump_view_asg",
    "FAILURE_POLICIES",
    "FaultFinding",
    "Group",
    "load_view_asg",
    "is_satisfiable",
    "join_closures",
    "JoinCondition",
    "mapping_closure",
    "mark_view_asg",
    "NodeKind",
    "OpResolution",
    "Outcome",
    "PredicateResolution",
    "ProbeCache",
    "ProbeResult",
    "QAAuditor",
    "QAFinding",
    "qa_errors",
    "raise_on_error",
    "RectangleReport",
    "resolve_update",
    "ResolvedUpdate",
    "run_per_update",
    "serialize_ops",
    "SessionEntry",
    "SessionResult",
    "shared_store",
    "star_check",
    "StarVerdict",
    "STRATEGIES",
    "sweep_many",
    "sweep_scenario",
    "SweepSummary",
    "Translator",
    "UpdateSession",
    "TupleDelete",
    "TupleInsert",
    "TupleUpdate",
    "UFilter",
    "validate_update",
    "ValidationResult",
    "WellNestedReport",
    "ValueConstraint",
    "value_satisfies",
    "view_closure",
    "ViewASG",
    "ViewEdge",
    "ViewNode",
]
