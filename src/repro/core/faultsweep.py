"""Crash-at-every-site sweep: exhaustive fault-tolerance QA.

The crash-consistency story of :mod:`repro.rdb.wal` is a *universally
quantified* claim — whatever instant the process dies, recovery lands
on a consistent state.  Seeded scenarios (:mod:`repro.core.
scenario_gen`) plus deterministic fault injection (:mod:`repro.rdb.
faults`) make the claim mechanically checkable:

1. **Record** — run the scenario's update batch through an
   :class:`~repro.core.session.UpdateSession` over a journaled clone
   with the injector recording; the trace enumerates every injection
   site the batch passes through, and the run doubles as the
   fault-free baseline state.
2. **Crash everywhere** — for each point *k* in the trace, re-run the
   batch on a fresh clone with a ``crash`` plan armed at *k*, catch the
   :class:`~repro.rdb.faults.SimulatedCrash`, drive
   :meth:`~repro.rdb.database.Database.recover`, and assert

   * **atomicity** — the batch runs as one transaction whose commit
     point is the journal's commit marker, so the post-recovery state
     must equal the *pre-batch* state (the marker is the last site; no
     crash point can land after it).  Anything else is a
     ``partial-state`` finding;
   * **integrity** — :meth:`~repro.rdb.database.Database.
     verify_integrity` reports nothing;
   * **idempotence** — recovering a second time finds nothing to do.

3. **Redo sample** (staged mode) — at sampled crash points, recover
   with ``redo=True`` instead: the journaled per-update intents replay,
   and the state must land on a *prefix* of the baseline's applied
   updates (never between two updates).
4. **Transient sample** — at sampled points, inject a retryable
   ``error`` / ``conflict`` instead of a crash and run the session with
   a retry budget: the batch must converge to the fault-free baseline
   state.

Every violated assertion becomes a :class:`FaultFinding` carrying the
scenario seed, site name and trigger point; ``repro faults --seed N
--scenarios 1`` replays it deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import ReproError, TransientError
from ..rdb import Database, FaultPlan, SimulatedCrash
from .asg_cache import ASGStore
from .scenario_gen import Scenario, _build_db, generate_scenario
from .session import UpdateSession

__all__ = [
    "FaultFinding",
    "SweepSummary",
    "sweep_scenario",
    "sweep_many",
    "replay",
]

#: transient-fault actions alternate through this cycle
_TRANSIENT_ACTIONS = ("error", "conflict")


@dataclass(frozen=True)
class FaultFinding:
    """One violated fault-tolerance assertion, reproducible from the
    scenario seed."""

    kind: str                      # partial-state | integrity |
    #                                double-recover | no-crash |
    #                                transient-escaped |
    #                                transient-divergence | exception
    seed: int
    mode: str                      # session mode the batch ran under
    action: str                    # crash | error | conflict | (none)
    at: int                        # trigger point in the site trace (0 = n/a)
    site: str                      # site name at the trigger point
    detail: str

    def describe(self) -> str:
        where = f" at #{self.at} {self.site}" if self.at else ""
        return (
            f"[seed {self.seed}] {self.mode}/{self.action}{where}: "
            f"{self.kind} — {self.detail}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "mode": self.mode,
            "action": self.action,
            "at": self.at,
            "site": self.site,
            "detail": self.detail,
        }


@dataclass
class SweepSummary:
    scenarios: int = 0
    sites: int = 0                 # recorded injection-site passes
    crash_points: int = 0          # crash-and-recover runs executed
    redo_points: int = 0           # crash-and-redo runs executed
    transient_points: int = 0      # injected-transient runs executed
    retries_used: int = 0          # retries the sessions reported
    recoveries: int = 0            # recover() calls that found work
    findings: list[FaultFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def describe(self) -> str:
        lines = [
            f"{self.scenarios} scenario(s), {self.sites} site pass(es): "
            f"{self.crash_points} crash point(s) "
            f"(+{self.redo_points} redone), "
            f"{self.transient_points} transient fault(s) "
            f"({self.retries_used} retr"
            f"{'y' if self.retries_used == 1 else 'ies'} used), "
            f"{self.recoveries} recover(y/ies), "
            f"{len(self.findings)} finding(s)",
        ]
        lines.extend(f"  {f.describe()}" for f in self.findings[:20])
        extra = len(self.findings) - 20
        if extra > 0:
            lines.append(f"  (+{extra} more)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# plumbing
# ---------------------------------------------------------------------------

def _base_fingerprint(
    db: Database, relations: tuple[str, ...]
) -> dict[str, list[tuple]]:
    """Content image of the scenario's base relations (temp tables
    excluded — probe scratch space is not part of the durability
    contract, and checking can leave it behind on a crash)."""
    return {
        name: sorted(
            tuple(sorted(row.items())) for _, row in db.table(name).scan()
        )
        for name in relations
    }


def _journaled_clone(base: Database) -> Database:
    db = base.clone()
    db.attach_wal()
    return db


def _run_session(
    db: Database,
    scenario: Scenario,
    mode: str,
    store: ASGStore,
    retries: int = 0,
    updates: Optional[list[tuple[str, str]]] = None,
):
    session = UpdateSession(
        db,
        scenario.view_text,
        strategy="outside",
        asg_store=store,
        qa=False,
        retries=retries,
        sleep=lambda _seconds: None,
    )
    for name, text in scenario.updates if updates is None else updates:
        session.add(text, name=name)
    return session.execute(mode=mode, atomic=False)


def _spread(total: int, count: int) -> list[int]:
    """Up to *count* trigger points spread evenly over ``1..total``."""
    if total <= 0 or count <= 0:
        return []
    if count >= total:
        return list(range(1, total + 1))
    step = total / count
    points = {int(step * (i + 1)) for i in range(count)}
    return sorted(max(1, min(total, p)) for p in points)


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------

def sweep_scenario(
    scenario: Scenario,
    store: Optional[ASGStore] = None,
    summary: Optional[SweepSummary] = None,
    *,
    max_points: Optional[int] = None,
    redo_points: int = 3,
    transient_points: int = 4,
) -> list[FaultFinding]:
    """Crash-at-every-site one scenario; returns the findings.

    ``max_points`` bounds the exhaustive crash enumeration (evenly
    sampled when the trace is longer); ``redo_points`` /
    ``transient_points`` size the two sampled passes.
    """
    store = ASGStore() if store is None else store
    summary = SweepSummary() if summary is None else summary
    findings: list[FaultFinding] = []
    mode = "staged" if scenario.seed % 2 == 0 else "interleaved"

    def bad(kind: str, action: str, at: int, detail: str) -> None:
        site = trace[at - 1] if 0 < at <= len(trace) else ""
        findings.append(
            FaultFinding(
                kind=kind, seed=scenario.seed, mode=mode, action=action,
                at=at, site=site, detail=detail,
            )
        )

    base = _build_db(scenario)
    relations = tuple(base.tables)
    initial = _base_fingerprint(base, relations)

    # 1 — record the site trace; the same run is the fault-free baseline
    baseline_db = _journaled_clone(base)
    baseline_db.faults.start_recording()
    try:
        _run_session(baseline_db, scenario, mode, store)
    finally:
        trace = baseline_db.faults.stop_recording()
    final = _base_fingerprint(baseline_db, relations)
    for violation in baseline_db.verify_integrity():
        bad("integrity", "(none)", 0, f"fault-free baseline: {violation}")
    summary.sites += len(trace)

    # 2 — crash at every point (evenly sampled past max_points)
    points = list(range(1, len(trace) + 1))
    if max_points is not None and len(points) > max_points:
        points = _spread(len(trace), max_points)
    for at in points:
        summary.crash_points += 1
        _crash_once(
            base, scenario, mode, store, relations, trace, at, initial,
            final, summary, bad,
        )

    # 3 — redo sample: journaled intents replay the interrupted batch
    # (staged mode only; interleaved fuses check+apply and logs none)
    if mode == "staged" and trace:
        prefixes = _prefix_states(
            base, scenario, mode, store, relations, initial
        )
        for at in _spread(len(trace), redo_points):
            summary.redo_points += 1
            _redo_once(
                base, scenario, mode, store, relations, trace, at,
                prefixes, summary, bad,
            )

    # 4 — transient sample: the retry budget must absorb the fault
    for index, at in enumerate(_spread(len(trace), transient_points)):
        summary.transient_points += 1
        action = _TRANSIENT_ACTIONS[index % len(_TRANSIENT_ACTIONS)]
        _transient_once(
            base, scenario, mode, store, relations, at, action, final,
            summary, bad,
        )

    summary.scenarios += 1
    summary.findings.extend(findings)
    return findings


def _crash_once(
    base: Database,
    scenario: Scenario,
    mode: str,
    store: ASGStore,
    relations: tuple[str, ...],
    trace: list[str],
    at: int,
    initial: dict,
    final: dict,
    summary: SweepSummary,
    bad: Callable[[str, str, int, str], None],
) -> None:
    db = _journaled_clone(base)
    db.faults.arm(FaultPlan(at=at, action="crash"))
    crashed = False
    try:
        _run_session(db, scenario, mode, store)
    except SimulatedCrash:
        crashed = True
    # The sweep harness itself: any non-crash escape is a finding
    # against the armed site, not a sweep abort (SimulatedCrash is a
    # BaseException and is handled above, by name, by design).
    # repro: allow[REP003]
    except Exception as exc:  # noqa: BLE001 — every escape is a finding
        bad("exception", "crash", at, f"{type(exc).__name__}: {exc}")
        return
    finally:
        db.faults.disarm()
    if not crashed:
        bad(
            "no-crash", "crash", at,
            "armed crash point never fired (site enumeration drifted)",
        )
        return
    report = db.recover()
    if report.recovered:
        summary.recoveries += 1
    state = _base_fingerprint(db, relations)
    if state != initial:
        # the journal's commit marker is the commit point and the last
        # site in the trace, so every crash must recover to the
        # pre-batch state; matching the committed baseline would mean
        # recovery rolled *forward* without being asked to
        suffix = " (== committed baseline)" if state == final else ""
        bad(
            "partial-state", "crash", at,
            f"post-recovery state is not the pre-batch state{suffix}",
        )
    for violation in db.verify_integrity():
        bad("integrity", "crash", at, violation)
    again = db.recover()
    if again.recovered:
        bad(
            "double-recover", "crash", at,
            f"second recover() replayed {again.undo_applied} undo "
            f"record(s) over a checkpointed journal",
        )


def _prefix_states(
    base: Database,
    scenario: Scenario,
    mode: str,
    store: ASGStore,
    relations: tuple[str, ...],
    initial: dict,
) -> list[dict]:
    """Baseline states after each update prefix — the only states an
    intent-redo recovery may land on."""
    prefixes = [initial]
    for end in range(1, len(scenario.updates) + 1):
        db = _journaled_clone(base)
        _run_session(db, scenario, mode, store,
                     updates=scenario.updates[:end])
        prefixes.append(_base_fingerprint(db, relations))
    return prefixes


def _redo_once(
    base: Database,
    scenario: Scenario,
    mode: str,
    store: ASGStore,
    relations: tuple[str, ...],
    trace: list[str],
    at: int,
    prefixes: list[dict],
    summary: SweepSummary,
    bad: Callable[[str, str, int, str], None],
) -> None:
    db = _journaled_clone(base)
    db.faults.arm(FaultPlan(at=at, action="crash"))
    try:
        _run_session(db, scenario, mode, store)
    except SimulatedCrash:
        pass
    # Redo-run escapes are findings, not aborts.
    # repro: allow[REP003]
    except Exception as exc:  # noqa: BLE001
        bad("exception", "crash", at, f"redo run: {type(exc).__name__}: {exc}")
        return
    else:
        return  # no-crash already reported by the exhaustive pass
    finally:
        db.faults.disarm()
    report = db.recover(redo=True)
    if report.recovered:
        summary.recoveries += 1
    for violation in db.verify_integrity():
        bad("integrity", "crash", at, f"after intent redo: {violation}")
    if report.redo_failed:
        # a replayed intent can legitimately fail (e.g. a supporting
        # insert whose duplicate tolerance lived in the session); the
        # failed intent rolled back, so only integrity is asserted
        return
    if _base_fingerprint(db, relations) not in prefixes:
        bad(
            "partial-state", "crash", at,
            f"state after redoing {len(report.redone)} intent(s) matches "
            f"no update-prefix of the baseline",
        )


def _transient_once(
    base: Database,
    scenario: Scenario,
    mode: str,
    store: ASGStore,
    relations: tuple[str, ...],
    at: int,
    action: str,
    final: dict,
    summary: SweepSummary,
    bad: Callable[[str, str, int, str], None],
) -> None:
    db = _journaled_clone(base)
    db.faults.arm(FaultPlan(at=at, action=action))
    try:
        result = _run_session(db, scenario, mode, store, retries=2)
    except TransientError as exc:
        bad(
            "transient-escaped", action, at,
            f"{type(exc).__name__} escaped a session with retries=2: {exc}",
        )
        return
    # Transient-fault escapes are findings, not aborts.
    # repro: allow[REP003]
    except Exception as exc:  # noqa: BLE001
        bad("exception", action, at, f"{type(exc).__name__}: {exc}")
        return
    finally:
        db.faults.disarm()
    summary.retries_used += result.retries_used
    if _base_fingerprint(db, relations) != final:
        bad(
            "transient-divergence", action, at,
            "final state differs from the fault-free baseline",
        )
    for violation in db.verify_integrity():
        bad("integrity", action, at, violation)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def sweep_many(
    count: int,
    seed: int = 0,
    on_progress: Optional[Callable[[int, SweepSummary], None]] = None,
    *,
    max_points: Optional[int] = None,
    redo_points: int = 3,
    transient_points: int = 4,
) -> SweepSummary:
    """Sweep *count* scenarios drawn from ``seed, seed+1, ...``."""
    summary = SweepSummary()
    store = ASGStore()
    for offset in range(count):
        scenario = generate_scenario(seed + offset)
        try:
            sweep_scenario(
                scenario, store, summary,
                max_points=max_points,
                redo_points=redo_points,
                transient_points=transient_points,
            )
        except ReproError as exc:
            summary.scenarios += 1
            summary.findings.append(
                FaultFinding(
                    kind="exception", seed=scenario.seed, mode="(setup)",
                    action="(none)", at=0, site="",
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
        if on_progress is not None:
            on_progress(offset + 1, summary)
    return summary


def replay(seed: int, **kwargs: Any) -> SweepSummary:
    """Re-sweep exactly one scenario (for reproducing a finding)."""
    summary = SweepSummary()
    sweep_scenario(generate_scenario(seed), ASGStore(), summary, **kwargs)
    return summary
