"""Batched update sessions over one view (the heavy-traffic path).

The per-update pipeline of :class:`repro.core.ufilter.UFilter` re-runs
probe queries and re-walks the marked ASG for every incoming update.
An :class:`UpdateSession` amortizes that work across a whole batch:

* **shared compile** — the marked view ASG comes out of an
  :class:`repro.core.asg_cache.ASGStore`, so building + STAR marking
  runs once per (schema, view) per process, not once per checker;
* **probe caching** — a :class:`repro.core.translation.ProbeCache` is
  attached to the translator: updates anchored at the same view node
  with the same predicate signature reuse PQ1/PQ2 results, and
  repeated PQ3 key probes collapse too;
* **conflict detection** — before any SQL is applied, the queued dirty
  deletes and inserts of the batch are cross-checked: duplicate
  driving-key inserts, inserts under a parent tuple another update
  deletes, and replaces of deleted tuples are rejected up front;
* **one transaction** — the surviving translations are applied through
  :mod:`repro.rdb.transactions` as a single unit.

Two execution modes:

* ``staged`` (default): check every update against the pre-batch state
  (probes run read-only, so the cache never needs invalidating), then
  detect conflicts, then apply all surviving plans in one transaction.
  With ``atomic=True`` any rejected or conflicting update aborts the
  whole batch before a single statement runs.  Each entry's apply is
  savepointed, so a non-atomic batch that hits an engine error at
  apply time (the hybrid strategy's way of reporting data conflicts)
  loses only the failing update.
* ``interleaved``: check and apply update-by-update inside one open
  transaction — later updates see earlier effects, and the probe cache
  is invalidated per mutated relation.  A savepoint per update lets
  non-atomic sessions undo just a failing update and continue; atomic
  sessions roll the entire batch back.

Sessions are also the *retry boundary* of the fault-tolerance layer:
transient failures (:class:`repro.errors.TransientError` — another
committer's :class:`~repro.errors.ConflictError`, an injected engine
fault) are absorbed by bounded retry with exponential backoff, each
update gets an optional wall-clock budget (blown budgets roll the
update back via its savepoint), and a *graceful-degradation policy*
decides what a stuck failure costs: ``abort-batch`` (all-or-nothing),
``skip-update`` (lose just the failing update) or ``commit-prefix``
(keep everything applied before the failure, skip the rest).  When the
database carries a write-ahead journal, each staged update's planned
operations are journaled as a durable intent before the first statement
runs, and a bumped ``recovery_epoch`` (crash repair happened) drops the
probe cache before the next batch trusts it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Union

from ..errors import (
    ConstraintViolation,
    TransientError,
    UFilterError,
    UpdateTimeoutError,
)
from ..rdb.database import Database
from ..rdb.ivm import ivm_forced
from ..xquery.ast import ViewQuery
from ..xquery.parser import parse_view_query
from ..xquery.update_ast import ViewUpdate
from .asg_cache import ASGStore, shared_store
from .translation import ProbeCache, TupleDelete, TupleInsert, TupleUpdate
from .ufilter import CheckReport, Outcome, UFilter

__all__ = [
    "FAILURE_POLICIES",
    "SessionEntry",
    "SessionResult",
    "UpdateSession",
    "run_per_update",
    "serialize_ops",
]


def serialize_ops(ops: Sequence[Any]) -> list[dict[str, Any]]:
    """Planned tuple operations as JSON-able intent payloads.

    The inverse lives in :meth:`repro.rdb.database.Database._redo_op`:
    a recovered intent re-executes through ordinary DML.
    """
    from ..rdb.wal import encode_row

    serialized: list[dict[str, Any]] = []
    for op in ops:
        if isinstance(op, TupleDelete):
            serialized.append({
                "op": "delete", "rel": op.relation,
                "rowids": sorted(op.rowids),
            })
        elif isinstance(op, TupleUpdate):
            serialized.append({
                "op": "update", "rel": op.relation,
                "rowids": sorted(op.rowids),
                "changes": encode_row(op.changes),
            })
        elif isinstance(op, TupleInsert) and op.role != "skip":
            serialized.append({
                "op": "insert", "rel": op.relation,
                "values": encode_row(op.values),
            })
    return serialized

MODES = ("staged", "interleaved")

#: strategies whose structured plans a staged session can defer-apply
STAGEABLE_STRATEGIES = ("outside", "hybrid")

#: graceful-degradation policies for updates that stay failed after the
#: retry budget (default: derived from the ``atomic`` flag)
FAILURE_POLICIES = ("abort-batch", "skip-update", "commit-prefix")


@dataclass
class SessionEntry:
    """One queued update and what the session did with it."""

    index: int
    name: str
    update: ViewUpdate
    #: pending / planned / applied / rejected / conflict / failed /
    #: skipped / rolled-back
    status: str = "pending"
    reason: str = ""
    report: Optional[CheckReport] = None

    @property
    def outcome(self) -> Optional[Outcome]:
        return self.report.outcome if self.report is not None else None

    def describe(self) -> str:
        line = f"{self.name:8} {self.status:12}"
        if self.outcome is not None:
            line += f" ({self.outcome.value})"
        if self.reason:
            line += f" — {self.reason}"
        return line


@dataclass
class SessionResult:
    """Batch-level outcome plus the probe/cache accounting."""

    mode: str
    atomic: bool
    entries: list[SessionEntry] = field(default_factory=list)
    committed: bool = False
    rows_affected: int = 0
    #: SELECT plans executed while this batch ran (probes + re-checks)
    probe_executions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    #: undo records replayed when the batch (partially) rolled back
    rolled_back: int = 0
    #: executor-layer accounting for the batch (see tests/README.md for
    #: the full ``db.stats`` counter vocabulary)
    rows_scanned: int = 0
    plans_compiled: int = 0
    plan_cache_hits: int = 0
    hash_joins: int = 0
    #: find_rowids / select_rowids probes served from the compiled
    #: rowid-plan cache (FK checks, cascades, WHERE-driven DML)
    rowid_cache_hits: int = 0
    #: plan-cache validations that kept a plan across sub-threshold
    #: DML drift instead of recompiling
    replans_avoided: int = 0
    #: compiled probe plans whose join tree came out bushy — the DP
    #: enumerator beat every left-deep order on the estimates
    bushy_plans: int = 0
    #: post-translation QA accounting (sessions opened with ``qa=True``)
    qa_findings: int = 0
    qa_errors: int = 0
    #: re-checks triggered by QA (cache cleared + update re-checked)
    qa_retries_used: int = 0
    #: transient-failure retries consumed across the batch (apply
    #: re-attempts after ConflictError / injected faults)
    retries_used: int = 0
    #: updates rolled back for blowing their per-update time budget
    timeouts: int = 0
    #: the graceful-degradation policy this batch ran under
    policy: str = ""
    #: incremental-maintenance accounting (see repro.rdb.ivm): cached
    #: probes kept current by streaming DML deltas instead of being
    #: invalidated, entries dropped to recompute, delta rows absorbed
    ivm_maintained: int = 0
    ivm_fallbacks: int = 0
    ivm_delta_rows: int = 0

    @property
    def applied(self) -> list[SessionEntry]:
        return [entry for entry in self.entries if entry.status == "applied"]

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for entry in self.entries:
            tally[entry.status] = tally.get(entry.status, 0) + 1
        return tally

    def summary(self) -> str:
        lines = [
            f"batch of {len(self.entries)} update(s), mode={self.mode}, "
            f"atomic={self.atomic}: "
            + (", ".join(f"{n} {s}" for s, n in sorted(self.counts().items()))
               or "empty"),
            f"  committed: {self.committed}; rows affected: {self.rows_affected}",
            f"  probes executed: {self.probe_executions} "
            f"(cache hits: {self.cache_hits}, misses: {self.cache_misses}, "
            f"invalidations: {self.cache_invalidations})",
            f"  executor: {self.rows_scanned} rows scanned, "
            f"{self.plans_compiled} plan(s) compiled, "
            f"{self.plan_cache_hits} plan-cache hit(s), "
            f"{self.hash_joins} hash join(s), "
            f"{self.rowid_cache_hits} rowid-cache hit(s), "
            f"{self.replans_avoided} replan(s) avoided, "
            f"{self.bushy_plans} bushy plan(s)",
        ]
        if self.ivm_maintained or self.ivm_fallbacks:
            lines.append(
                f"  maintenance: {self.ivm_maintained} probe(s) maintained "
                f"({self.ivm_delta_rows} delta row(s)), "
                f"{self.ivm_fallbacks} fallback(s) to recompute"
            )
        if self.retries_used or self.timeouts:
            lines.append(
                f"  fault handling ({self.policy}): "
                f"{self.retries_used} retr"
                f"{'y' if self.retries_used == 1 else 'ies'} used, "
                f"{self.timeouts} timeout(s)"
            )
        lines.extend(f"  {entry.describe()}" for entry in self.entries)
        return "\n".join(lines)


class UpdateSession:
    """Check and apply a sequence of view updates as one pipeline.

    Parameters
    ----------
    db:
        The relational database the view is published over.
    view:
        The view definition (query text or parsed :class:`ViewQuery`).
    strategy:
        Step-3 strategy; staged mode supports ``outside`` and
        ``hybrid`` (the internal strategy applies through the mapping
        relational view and produces no deferrable plan).
    index_temp_tables:
        Attach ad-hoc hash indexes to materialized probe results
        (default on — sessions exist to make heavy traffic fast).
    asg_store:
        The marked-ASG registry to compile through; defaults to the
        process-wide :data:`repro.core.asg_cache.shared_store`.
    cache:
        A :class:`ProbeCache` to (re)use; fresh by default.
    qa:
        Run the post-translation QA audit (:mod:`repro.core.qa`) on
        every checked plan.  Off by default: sessions exist for
        throughput, and the audit re-probes base data per plan.
    qa_retries:
        With ``qa=True``: how many times a plan whose audit failed (or
        reported stale probe rowids) is re-checked after clearing the
        probe cache before the failure sticks.  Bounded, like any
        auto-retry on a QA gate.
    retries:
        Per-update budget of re-attempts after a *transient* failure
        (:class:`~repro.errors.TransientError`: conflicts, injected
        faults).  Each re-attempt first rolls the update back to its
        savepoint.  Default 0: transient failures stick immediately.
    backoff:
        Base delay (seconds) before retry *n*, growing exponentially
        (``backoff * 2**(n-1)``).  Default 0: retry immediately.
    update_timeout:
        Wall-clock budget (seconds) per update.  A blown budget rolls
        the update back via its savepoint and counts as a *fatal*
        failure (:class:`~repro.errors.UpdateTimeoutError` — retrying
        work that blew its budget would blow it again).
    on_failure:
        Graceful-degradation policy for updates still failed after the
        retry budget: ``abort-batch`` / ``skip-update`` /
        ``commit-prefix``.  Default ``None`` derives it from each
        execute's ``atomic`` flag (True → abort-batch, False →
        skip-update), preserving the pre-policy behaviour.
    sleep / clock:
        Injectable timing functions (``time.sleep`` /
        ``time.monotonic``), so retry/timeout tests run deterministic
        and instant.
    ivm:
        Maintain cached probe results incrementally from DML deltas
        (:mod:`repro.rdb.ivm`) instead of invalidating and recomputing
        them.  Default ``None`` means on, subject to
        ``db.ivm_threshold``; the ``REPRO_IVM`` environment variable
        (``0`` off / ``1`` forced) overrides either setting per run.
    """

    def __init__(
        self,
        db: Database,
        view: Union[str, ViewQuery],
        strategy: str = "outside",
        index_temp_tables: bool = True,
        asg_store: Optional[ASGStore] = None,
        cache: Optional[ProbeCache] = None,
        qa: bool = False,
        qa_retries: int = 1,
        retries: int = 0,
        backoff: float = 0.0,
        update_timeout: Optional[float] = None,
        on_failure: Optional[str] = None,
        sleep: Optional[Callable[[float], None]] = None,
        clock: Optional[Callable[[], float]] = None,
        ivm: Optional[bool] = None,
    ) -> None:
        self.db = db
        self.strategy = strategy
        self.index_temp_tables = index_temp_tables
        self.qa = qa
        self.qa_retries = max(0, qa_retries)
        self.retries = max(0, retries)
        self.backoff = max(0.0, backoff)
        self.update_timeout = update_timeout
        if on_failure is not None and on_failure not in FAILURE_POLICIES:
            raise UFilterError(
                f"unknown failure policy {on_failure!r}; "
                f"pick one of {FAILURE_POLICIES}"
            )
        self.on_failure = on_failure
        self._sleep = sleep if sleep is not None else time.sleep
        self._clock = clock if clock is not None else time.monotonic
        self._recovery_epoch = db.recovery_epoch
        store = shared_store if asg_store is None else asg_store
        parsed_view = parse_view_query(view) if isinstance(view, str) else view
        self.ufilter = UFilter(
            db, parsed_view, cached_asg=store.get_or_build(parsed_view, db.schema)
        )
        self.cache = ProbeCache() if cache is None else cache
        self.ufilter.checker.translator.cache = self.cache
        self._queue: list[ViewUpdate] = []
        self.ivm = ivm
        #: cascade closures memoized per FK-graph epoch (the closure
        #: only changes when non-temp relations are created or dropped)
        self._closure_cache: dict[frozenset[str], set[str]] = {}
        self._closure_epoch = db.fk_epoch
        if self._ivm_active():
            db.deltas.enable()

    # ------------------------------------------------------------------
    # queueing
    # ------------------------------------------------------------------

    def add(self, update: Union[str, ViewUpdate], name: str = "") -> ViewUpdate:
        """Queue one update (text or parsed) for the next execute()."""
        parsed = self.ufilter.parse(
            update, name=name or f"#{len(self._queue) + 1}"
        )
        self._queue.append(parsed)
        return parsed

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(
        self,
        updates: Optional[Sequence[Union[str, ViewUpdate]]] = None,
        mode: str = "staged",
        atomic: bool = True,
    ) -> SessionResult:
        """Run the queued (plus given) updates as one batch."""
        if mode not in MODES:
            raise UFilterError(f"unknown session mode {mode!r}; pick one of {MODES}")
        if mode == "staged" and self.strategy not in STAGEABLE_STRATEGIES:
            raise UFilterError(
                f"staged sessions support strategies {STAGEABLE_STRATEGIES}; "
                f"use mode='interleaved' for {self.strategy!r}"
            )
        if updates is not None:
            for update in updates:
                self.add(update)
        batch, self._queue = self._queue, []
        entries = [
            SessionEntry(index=i, name=update.name or f"#{i + 1}", update=update)
            for i, update in enumerate(batch)
        ]
        result = SessionResult(
            mode=mode, atomic=atomic, entries=entries,
            policy=self._policy(atomic),
        )
        if self.db.recovery_epoch != self._recovery_epoch:
            # crash recovery repaired state since we last probed it:
            # every cached probe result is suspect
            self.cache.clear()
            self._recovery_epoch = self.db.recovery_epoch
        if self._ivm_active():
            # mutations since the last batch (other sessions, direct
            # DML) stream into the cache before any probe trusts it
            self.db.deltas.enable()
            self.cache.maintain(self.db, self.db.deltas.take())
        stats_before = dict(self.db.stats)
        hits_before, misses_before = self.cache.hits, self.cache.misses
        invalidations_before = self.cache.invalidations
        if mode == "staged":
            self._run_staged(entries, atomic, result)
        else:
            self._run_interleaved(entries, atomic, result)
        stats = self.db.stats
        result.probe_executions = stats["selects"] - stats_before["selects"]
        result.rows_scanned = stats["rows_scanned"] - stats_before["rows_scanned"]
        result.plans_compiled = (
            stats["plans_compiled"] - stats_before["plans_compiled"]
        )
        result.plan_cache_hits = (
            stats["plan_cache_hits"] - stats_before["plan_cache_hits"]
        )
        result.hash_joins = stats["hash_joins"] - stats_before["hash_joins"]
        result.rowid_cache_hits = (
            stats["rowid_cache_hits"] - stats_before["rowid_cache_hits"]
        )
        result.replans_avoided = (
            stats["replans_avoided"] - stats_before["replans_avoided"]
        )
        result.bushy_plans = stats["bushy_plans"] - stats_before["bushy_plans"]
        result.ivm_maintained = (
            stats["ivm_maintained"] - stats_before["ivm_maintained"]
        )
        result.ivm_fallbacks = (
            stats["ivm_fallbacks"] - stats_before["ivm_fallbacks"]
        )
        result.ivm_delta_rows = (
            stats["ivm_delta_rows"] - stats_before["ivm_delta_rows"]
        )
        result.cache_hits = self.cache.hits - hits_before
        result.cache_misses = self.cache.misses - misses_before
        result.cache_invalidations = (
            self.cache.invalidations - invalidations_before
        )
        return result

    # ------------------------------------------------------------------
    # staged mode
    # ------------------------------------------------------------------

    def _run_staged(
        self, entries: list[SessionEntry], atomic: bool, result: SessionResult
    ) -> None:
        # Phase 1 — check every update against the pre-batch state.
        # Nothing mutates, so every probe result stays valid and the
        # cache serves repeated contexts without invalidation.
        for entry in entries:
            report = self._checked_report(entry.update, result)
            entry.report = report
            if report.outcome.accepted:
                entry.status = "planned"
            else:
                entry.status = "rejected"
                entry.reason = report.reason or report.outcome.value

        # Phase 2 — cross-update conflict detection on the queued plans.
        self._detect_conflicts(
            [entry for entry in entries if entry.status == "planned"]
        )

        # Phase 3 — one transactional apply, under the failure policy.
        policy = result.policy
        bad = next(
            (e for e in entries if e.status in ("rejected", "conflict")), None
        )
        if bad is not None and policy == "abort-batch":
            for entry in entries:
                if entry.status == "planned":
                    entry.status = "skipped"
                    entry.reason = (
                        f"atomic batch aborted: {bad.name} was {bad.status}"
                    )
            return
        planned = [entry for entry in entries if entry.status == "planned"]
        if bad is not None and policy == "commit-prefix":
            # prefix semantics: nothing queued after the first check
            # failure runs, but everything before it still commits
            for entry in planned:
                if entry.index > bad.index:
                    entry.status = "skipped"
                    entry.reason = f"commit-prefix: {bad.name} was {bad.status}"
            planned = [e for e in planned if e.status == "planned"]
        self.db.begin()
        for position, entry in enumerate(planned):
            verdict, undone = self._apply_with_retry(entry, result)
            if verdict == "applied":
                continue
            if policy == "abort-batch":
                result.rolled_back = undone + self._rollback_all_with_retry()
                for other in planned:
                    if other is entry:
                        continue
                    if other.status == "applied":
                        other.status = "rolled-back"
                    else:
                        other.status = "skipped"
                    other.reason = f"batch aborted by {entry.name}"
                return
            if policy == "commit-prefix":
                for later in planned[position + 1:]:
                    if later.status == "planned":
                        later.status = "skipped"
                        later.reason = f"commit-prefix: stopped at {entry.name}"
                break
            # skip-update: the savepoint already undid it; carry on
        self._commit_with_retry(result)
        result.committed = True
        mutated: set[str] = set()
        for entry in planned:
            if entry.status != "applied":
                continue  # failed/skipped effects were rolled back
            assert entry.report is not None and entry.report.data is not None
            mutated |= entry.report.data.mutated_relations()
        if mutated:
            self._refresh_cache(mutated)

    def _apply_with_retry(
        self, entry: SessionEntry, result: SessionResult
    ) -> tuple[str, int]:
        """Apply one planned entry inside its savepoint, retrying
        transient failures within the budget.  Returns the verdict
        (``applied``/``failed``) and the undo records its last rollback
        replayed."""
        assert entry.report is not None and entry.report.data is not None
        ops = entry.report.data.planned_ops
        started = self._clock()
        attempt = 0
        while True:
            mark = self.db.savepoint()
            try:
                self.db.faults.hit("session.apply")
                if self.db.wal is not None:
                    # the plan is durable before its first statement runs
                    self.db.log_intent(entry.name, serialize_ops(ops))
                affected = self._apply_planned(ops)
                self._enforce_budget(entry.name, started)
            except UpdateTimeoutError as exc:
                undone = self._rollback_to_with_retry(mark)
                result.timeouts += 1
                entry.status = "failed"
                entry.reason = str(exc)
                return "failed", undone
            except TransientError as exc:
                undone = self._rollback_to_with_retry(mark)
                if attempt >= self.retries or self._budget_blown(started):
                    entry.status = "failed"
                    entry.reason = (
                        f"transient failure stuck after {attempt} "
                        f"retr{'y' if attempt == 1 else 'ies'}: {exc}"
                    )
                    return "failed", undone
                attempt += 1
                result.retries_used += 1
                self._backoff_sleep(attempt)
            except ConstraintViolation as exc:
                undone = self._rollback_to_with_retry(mark)
                entry.status = "failed"
                entry.reason = f"engine error at apply time: {exc}"
                return "failed", undone
            else:
                result.rows_affected += affected
                entry.status = "applied"
                return "applied", 0

    def _checked_report(
        self, update: ViewUpdate, result: SessionResult
    ) -> CheckReport:
        """Phase-1 check with the (optional) QA gate and bounded retry.

        A failed audit is most often a stale probe cache (the
        ``stale-rowid`` signature): the cache is cleared and the update
        re-checked up to ``qa_retries`` times before the failure sticks.
        Transient faults during the (side-effect-free) check are retried
        within the session's retry budget.
        """
        report = self._check_only(update, result)
        if not self.qa:
            return report
        retries = 0
        while retries < self.qa_retries and self._qa_retryable(report):
            self.cache.clear()
            retries += 1
            result.qa_retries_used += 1
            report = self._check_only(update, result)
        self._tally_qa(report, result)
        return report

    def _check_only(
        self, update: ViewUpdate, result: SessionResult
    ) -> CheckReport:
        """One ``execute=False`` check, retrying transient faults.

        Checking never mutates base relations, so a transient failure
        mid-probe needs no rollback — just another attempt.
        """
        attempt = 0
        while True:
            try:
                return self.ufilter.check(
                    update,
                    strategy=self.strategy,
                    execute=False,
                    index_temp_tables=self.index_temp_tables,
                    qa=self.qa,
                )
            except TransientError:
                if attempt >= self.retries:
                    raise
                attempt += 1
                result.retries_used += 1
                self._backoff_sleep(attempt)

    @staticmethod
    def _qa_retryable(report: CheckReport) -> bool:
        from .qa import CHECK_STALE_ROWID, qa_errors

        if report.data is None:
            return False
        findings = report.data.qa_findings
        if any(f.check == CHECK_STALE_ROWID for f in findings):
            return True
        return bool(qa_errors(findings))

    @staticmethod
    def _annotate_qa(entry: SessionEntry, report: CheckReport) -> None:
        from .qa import qa_errors

        if report.data is None:
            return
        errors = qa_errors(report.data.qa_findings)
        if errors and not entry.reason:
            entry.reason = "QA: " + "; ".join(
                finding.describe() for finding in errors[:3]
            )

    @staticmethod
    def _tally_qa(report: CheckReport, result: SessionResult) -> None:
        from .qa import qa_errors

        if report.data is None:
            return
        findings = report.data.qa_findings
        result.qa_findings += len(findings)
        result.qa_errors += len(qa_errors(findings))

    def _apply_planned(self, ops: Sequence[Any]) -> int:
        """Replay one update's structured translation against the engine.

        Rowids another batch member already deleted are silently gone —
        the same zero-effect semantics a second DELETE statement would
        have had.  Supporting inserts keep the hybrid strategy's
        consistent-duplicate tolerance: a unique-key violation on a
        tuple that agrees with the existing row is skipped, not fatal.
        """
        affected = 0
        checker = self.ufilter.checker
        for op in ops:
            if isinstance(op, TupleDelete):
                if op.rowids:
                    affected += self.db.delete(op.relation, op.rowids)
            elif isinstance(op, TupleUpdate):
                table = self.db.table(op.relation)
                for rowid in sorted(op.rowids):
                    if rowid in table:
                        self.db.update(op.relation, rowid, op.changes)
                        affected += 1
            elif isinstance(op, TupleInsert):
                if op.role == "skip":
                    continue
                try:
                    self.db.insert(op.relation, op.values)
                    affected += 1
                except ConstraintViolation:
                    if op.role == "supporting":
                        existing = checker._existing_row(op)
                        if existing is not None and (
                            checker._consistent_with_existing(op, existing)
                        ):
                            continue
                    raise
        return affected

    # ------------------------------------------------------------------
    # conflict detection (staged mode)
    # ------------------------------------------------------------------

    def _insert_key(self, insert: TupleInsert) -> Optional[tuple[str, tuple]]:
        if insert.relation not in self.db.schema:
            return None
        key = self.db.relation(insert.relation).primary_key
        if key is None:
            return None
        values = tuple(insert.values.get(column) for column in key.columns)
        if any(value is None for value in values):
            return None
        return (insert.relation, values)

    def _detect_conflicts(self, planned: list[SessionEntry]) -> None:
        """Cross-check the queued dirty deletes/inserts, in batch order.

        A later update loses against an earlier one: it is marked
        ``conflict`` and its plan is dropped from the apply phase.
        Consistent duplicate *supporting* inserts are downgraded to
        skips instead (intra-batch duplication consistency, mirroring
        what the outside strategy does against existing base data).
        """
        deleted: dict[str, set[int]] = {}
        inserted: dict[tuple[str, tuple], tuple[str, TupleInsert]] = {}
        for entry in planned:
            assert entry.report is not None and entry.report.data is not None
            ops = entry.report.data.planned_ops
            reason = self._entry_conflict(entry, ops, deleted, inserted)
            if reason:
                entry.status = "conflict"
                entry.reason = reason
                continue
            for op in ops:
                if isinstance(op, TupleDelete):
                    deleted.setdefault(op.relation, set()).update(op.rowids)
                elif isinstance(op, TupleInsert) and op.role != "skip":
                    key = self._insert_key(op)
                    if key is not None and key not in inserted:
                        inserted[key] = (entry.name, op)

    def _entry_conflict(
        self,
        entry: SessionEntry,
        ops: Sequence[Any],
        deleted: dict[str, set[int]],
        inserted: dict[tuple[str, tuple], tuple[str, TupleInsert]],
    ) -> str:
        pending_skips: list[TupleInsert] = []
        for op in ops:
            if isinstance(op, TupleUpdate):
                overlap = op.rowids & deleted.get(op.relation, set())
                if overlap:
                    return (
                        f"replaces {op.relation} tuple(s) {sorted(overlap)} "
                        f"deleted earlier in the batch"
                    )
            elif isinstance(op, TupleInsert):
                key = self._insert_key(op)
                if key is not None and key in inserted:
                    earlier_name, earlier_op = inserted[key]
                    if op.role == "driving":
                        return (
                            f"duplicate insert: a {op.relation} tuple with "
                            f"key {key[1]!r} is already queued by {earlier_name}"
                        )
                    if self._values_agree(op, earlier_op):
                        pending_skips.append(op)
                    else:
                        return (
                            f"duplication consistency violated within the "
                            f"batch: {op.relation} key {key[1]!r} disagrees "
                            f"with the values queued by {earlier_name}"
                        )
                parent_conflict = self._deleted_parent_conflict(op, deleted)
                if parent_conflict:
                    return parent_conflict
        for op in pending_skips:
            op.role = "skip"
        return ""

    def _values_agree(self, a: TupleInsert, b: TupleInsert) -> bool:
        for attribute, value in a.values.items():
            if value is None:
                continue
            other = b.values.get(attribute)
            if other is not None and other != value:
                return False
        return True

    def _deleted_parent_conflict(
        self, insert: TupleInsert, deleted: dict[str, set[int]]
    ) -> str:
        if insert.relation not in self.db.schema:
            return ""
        for fk in self.db.relation(insert.relation).foreign_keys:
            values = tuple(insert.values.get(column) for column in fk.columns)
            if any(value is None for value in values):
                continue
            for rowid in deleted.get(fk.ref_relation, ()):  # pre-batch rows
                if rowid not in self.db.table(fk.ref_relation):
                    continue
                parent = self.db.row(fk.ref_relation, rowid)
                if all(
                    parent.get(ref_column) == value
                    for ref_column, value in zip(fk.ref_columns, values)
                ):
                    return (
                        f"inserts a {insert.relation} tuple under a "
                        f"{fk.ref_relation} tuple deleted earlier in the batch"
                    )
        return ""

    # ------------------------------------------------------------------
    # interleaved mode
    # ------------------------------------------------------------------

    def _run_interleaved(
        self, entries: list[SessionEntry], atomic: bool, result: SessionResult
    ) -> None:
        policy = result.policy
        self.db.begin()
        for position, entry in enumerate(entries):
            verdict = self._interleaved_one(entry, result)
            if verdict == "applied":
                continue
            if policy == "abort-batch":
                result.rolled_back = self._rollback_all_with_retry()
                self.cache.clear()
                for earlier in entries[:position]:
                    if earlier.status == "applied":
                        earlier.status = "rolled-back"
                        earlier.reason = f"batch aborted by {entry.name}"
                for later in entries[position + 1:]:
                    later.status = "skipped"
                    later.reason = f"atomic batch aborted by {entry.name}"
                return
            if policy == "commit-prefix":
                for later in entries[position + 1:]:
                    later.status = "skipped"
                    later.reason = f"commit-prefix: stopped at {entry.name}"
                break
            # skip-update: the savepoint already undid it; carry on
        self._commit_with_retry(result)
        result.committed = True

    def _interleaved_one(
        self, entry: SessionEntry, result: SessionResult
    ) -> str:
        """Check + apply one update inside its savepoint, retrying
        transient failures within the budget.  Returns the entry's
        final status."""
        started = self._clock()
        attempt = 0
        while True:
            mark = self.db.savepoint()
            reason = ""
            engine_error = False
            try:
                report = self.ufilter.check(
                    entry.update,
                    strategy=self.strategy,
                    execute=True,
                    index_temp_tables=self.index_temp_tables,
                    qa=self.qa,
                )
                entry.report = report
                if self.qa:
                    # the plan already applied, so the audit ran in
                    # ``applied`` mode (state-independent checks only);
                    # errors annotate the entry rather than undo it
                    self._tally_qa(report, result)
                    self._annotate_qa(entry, report)
                failed = not report.outcome.accepted
                if failed:
                    reason = report.reason or report.outcome.value
                else:
                    self._enforce_budget(entry.name, started)
            except UpdateTimeoutError as exc:
                if self._rollback_to_with_retry(mark):
                    self.cache.clear()
                result.timeouts += 1
                entry.status = "failed"
                entry.reason = str(exc)
                return "failed"
            except TransientError as exc:
                if self._rollback_to_with_retry(mark):
                    # partial effects existed; anything probed since is suspect
                    self.cache.clear()
                if attempt >= self.retries or self._budget_blown(started):
                    entry.status = "failed"
                    entry.reason = (
                        f"transient failure stuck after {attempt} "
                        f"retr{'y' if attempt == 1 else 'ies'}: {exc}"
                    )
                    return "failed"
                attempt += 1
                result.retries_used += 1
                self._backoff_sleep(attempt)
                continue
            except ConstraintViolation as exc:
                failed = True
                engine_error = True
                reason = f"engine error: {exc}"
            if not failed:
                entry.status = "applied"
                data = entry.report.data if entry.report else None
                if data is not None:
                    result.rows_affected += data.rows_affected
                    mutated = data.mutated_relations()
                    if mutated:
                        self._refresh_cache(mutated)
                return "applied"
            entry.status = "failed" if engine_error else "rejected"
            entry.reason = reason
            if self._rollback_to_with_retry(mark):
                # partial effects existed; anything probed meanwhile is suspect
                self.cache.clear()
            return entry.status

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def _policy(self, atomic: bool) -> str:
        """The degradation policy for this execute (explicit, or
        derived from ``atomic`` for backward compatibility)."""
        if self.on_failure is not None:
            return self.on_failure
        return "abort-batch" if atomic else "skip-update"

    def _backoff_sleep(self, attempt: int) -> None:
        delay = self.backoff * (2 ** (attempt - 1))
        if delay > 0:
            self._sleep(delay)

    def _budget_blown(self, started: float) -> bool:
        return (
            self.update_timeout is not None
            and self._clock() - started > self.update_timeout
        )

    def _enforce_budget(self, name: str, started: float) -> None:
        if self._budget_blown(started):
            raise UpdateTimeoutError(
                f"update {name} exceeded its {self.update_timeout:g}s budget"
            )

    def _commit_with_retry(self, result: SessionResult) -> None:
        """Commit the batch, absorbing transient faults writing the
        journal's commit marker (the transaction stays open until the
        marker lands, so another attempt is always safe)."""
        attempt = 0
        while True:
            try:
                self.db.commit()
                return
            except TransientError:
                if attempt >= self.retries:
                    raise
                attempt += 1
                result.retries_used += 1
                self._backoff_sleep(attempt)

    def _rollback_to_with_retry(self, mark: int) -> int:
        """Roll back to a savepoint, absorbing transient faults in the
        replay itself.

        The undo machinery is resumable (conditional application +
        staged pending tail), so simply calling ``rollback_to`` again
        finishes an interrupted replay.  Even zero-retry sessions get
        one repair attempt: an unfinished rollback would wedge the
        whole transaction.
        """
        attempt = 0
        while True:
            try:
                return self.db.rollback_to(mark)
            except TransientError:
                attempt += 1
                if attempt > max(self.retries, 1):
                    raise
                self._backoff_sleep(attempt)

    def _rollback_all_with_retry(self) -> int:
        """Roll the whole batch back, absorbing transient replay faults
        (``rollback`` resumes the staged pending tail when re-called)."""
        attempt = 0
        while True:
            try:
                return self.db.rollback()
            except TransientError:
                attempt += 1
                if attempt > max(self.retries, 1):
                    raise
                self._backoff_sleep(attempt)

    def _ivm_active(self) -> bool:
        """Whether mutations maintain the probe cache instead of
        invalidating it (``REPRO_IVM`` overrides the session flag)."""
        forced = ivm_forced()
        if forced is not None:
            return forced
        return True if self.ivm is None else self.ivm

    def _refresh_cache(self, mutated: set[str]) -> None:
        """Bring the probe cache in line with applied mutations.

        Under maintenance, the drained delta events stream into every
        affected entry (unmaintainable ones drop, forcing a recompute
        on next probe); otherwise the pre-IVM behaviour holds and the
        FK-cascade closure of *mutated* is invalidated wholesale.
        """
        if self._ivm_active():
            self.cache.maintain(self.db, self.db.deltas.take())
        else:
            self.cache.invalidate(self._cascade_closure(mutated))

    def _cascade_closure(self, relations: set[str]) -> set[str]:
        """*relations* plus everything reachable through incoming FKs —
        a delete may cascade into any of those.

        Memoized per FK-graph epoch: rebuilding the closure on every
        invalidation walked the schema's FK edges once per applied
        update, for a graph that only changes on non-temp DDL.
        """
        if self._closure_epoch != self.db.fk_epoch:
            self._closure_cache.clear()
            self._closure_epoch = self.db.fk_epoch
        key = frozenset(relations)
        cached = self._closure_cache.get(key)
        if cached is not None:
            return set(cached)
        closure = set(relations)
        frontier = list(relations)
        while frontier:
            relation = frontier.pop()
            if relation not in self.db.schema:
                continue
            for fk in self.db.schema.foreign_keys_into(relation):
                if fk.relation_name not in closure:
                    closure.add(fk.relation_name)
                    frontier.append(fk.relation_name)
        self._closure_cache[key] = closure
        return set(closure)


def run_per_update(
    db: Database,
    view: Union[str, ViewQuery],
    updates: Sequence[Union[str, ViewUpdate]],
    strategy: str = "outside",
) -> list[CheckReport]:
    """The no-session baseline: one isolated check + apply per update.

    Benchmarks compare this (probes re-run for every update) against
    :meth:`UpdateSession.execute` on an identical workload.
    """
    checker = UFilter(db, view)
    return [
        checker.check(update, strategy=strategy, execute=True)
        for update in updates
    ]
