"""Conjunction satisfiability over a single value.

Step 1 of U-Filter must decide whether the predicate of a delete update
can *overlap* the view's selection region (the check annotation of the
leaf): u5 deletes reviews of books priced above $50 while the view only
contains books under $50 — the conjunction ``value > 50 ∧ value < 50``
is unsatisfiable, so the update can never affect the view and is
invalid.

Constraints are :class:`repro.core.asg.ValueConstraint` atoms
``value op literal`` with op ∈ {=, <>, <, <=, >, >=}.  Values may be
numbers, strings or dates; dates and bare-integer years are coerced the
same way the evaluator compares them.
"""

from __future__ import annotations

import datetime
from typing import Any, Iterable, Optional

from ..xquery.values import compare_values
from .asg import ValueConstraint

__all__ = ["is_satisfiable", "value_satisfies", "constraints_overlap"]

_CLOSED = "closed"
_OPEN = "open"


def _sort_key(value: Any) -> Any:
    """Normalize a literal for ordering (dates become years-as-floats
    when mixed with numbers; handled by caller grouping)."""
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    return value


def _numericable(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _coerce_domain(values: list[Any]) -> Optional[list[Any]]:
    """Bring all literals into one comparable domain, or None if mixed."""
    if all(_numericable(v) for v in values):
        return [float(v) for v in values]
    if all(isinstance(v, str) for v in values):
        return values
    if all(isinstance(v, datetime.date) for v in values):
        return [float(v.toordinal()) for v in values]
    # dates mixed with bare years: compare by year (matches the
    # evaluator's semantics for ``$book/year > 1990``)
    if all(isinstance(v, (datetime.date, int, float)) for v in values):
        return [
            float(v.year) if isinstance(v, datetime.date) else float(v)
            for v in values
        ]
    # strings mixed with numbers: try parsing the strings
    coerced: list[Any] = []
    for value in values:
        if isinstance(value, str):
            try:
                coerced.append(float(value))
            except ValueError:
                return None
        elif _numericable(value):
            coerced.append(float(value))
        else:
            return None
    return coerced


def is_satisfiable(constraints: Iterable[ValueConstraint]) -> bool:
    """Can any single value satisfy every constraint simultaneously?

    Conservative: if the literals cannot be brought into one comparable
    domain the answer is True (never reject an update we cannot reason
    about — U-Filter must only filter updates *guaranteed* bad).
    """
    atoms = list(constraints)
    if not atoms:
        return True
    domain = _coerce_domain([atom.literal for atom in atoms])
    if domain is None:
        return True
    values = domain

    equalities = [v for atom, v in zip(atoms, values) if atom.op == "="]
    if equalities:
        pivot = equalities[0]
        if any(v != pivot for v in equalities[1:]):
            return False
        return all(
            _holds(atom.op, pivot, v) for atom, v in zip(atoms, values)
        )

    lower: Optional[tuple[Any, str]] = None   # (bound, open/closed)
    upper: Optional[tuple[Any, str]] = None
    disequalities: list[Any] = []
    for atom, value in zip(atoms, values):
        if atom.op in ("<>", "!="):
            disequalities.append(value)
        elif atom.op == ">":
            lower = _tighter_lower(lower, (value, _OPEN))
        elif atom.op == ">=":
            lower = _tighter_lower(lower, (value, _CLOSED))
        elif atom.op == "<":
            upper = _tighter_upper(upper, (value, _OPEN))
        elif atom.op == "<=":
            upper = _tighter_upper(upper, (value, _CLOSED))

    if lower is not None and upper is not None:
        try:
            if lower[0] > upper[0]:
                return False
        except TypeError:
            return True
        if lower[0] == upper[0]:
            if lower[1] == _OPEN or upper[1] == _OPEN:
                return False
            # interval is the single point; excluded by a disequality?
            if any(d == lower[0] for d in disequalities):
                return False
    # an interval over a dense-enough domain always has room around
    # finitely many excluded points
    return True


def _holds(op: str, value: Any, literal: Any) -> bool:
    result = compare_values(op, value, literal)
    return result is True


def _tighter_lower(current, candidate):
    if current is None:
        return candidate
    if candidate[0] > current[0]:
        return candidate
    if candidate[0] == current[0] and candidate[1] == _OPEN:
        return candidate
    return current


def _tighter_upper(current, candidate):
    if current is None:
        return candidate
    if candidate[0] < current[0]:
        return candidate
    if candidate[0] == current[0] and candidate[1] == _OPEN:
        return candidate
    return current


def constraints_overlap(
    update_constraints: Iterable[ValueConstraint],
    view_constraints: Iterable[ValueConstraint],
) -> bool:
    """Step 1's overlap test: can both conjunctions hold at once?"""
    return is_satisfiable(list(update_constraints) + list(view_constraints))


def value_satisfies(value: Any, constraints: Iterable[ValueConstraint]) -> bool:
    """Does a concrete value satisfy every constraint (insert checks)?"""
    for constraint in constraints:
        if compare_values(constraint.op, value, constraint.literal) is not True:
            return False
    return True
