"""Serialization of marked ASGs — the "compiled once" story of §3.1.

The paper stresses that the constraints "are compiled once and reused
thereafter for any future update checking specified over this same
view".  This module makes that literal: a fully marked view ASG
round-trips through JSON, so a deployment can build + mark at view
definition time, persist the result, and rehydrate checkers without
re-running the (schema-level, but still non-zero) marking procedure.

Only the view ASG is persisted — the base ASG is cheap to derive and
depends solely on the schema, which the caller must supply at load time
anyway (leaf types and constraint objects are reattached from it).
"""

from __future__ import annotations

import datetime
import json
import weakref
from typing import Any

from ..errors import UFilterError
from ..rdb.schema import Schema
from .asg import (
    Cardinality,
    JoinCondition,
    NodeKind,
    ValueConstraint,
    ViewASG,
    ViewEdge,
    ViewNode,
)

__all__ = ["ASGStore", "dump_view_asg", "load_view_asg", "shared_store"]

_FORMAT_VERSION = 1


def _encode_literal(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    return value


def _decode_literal(value: Any) -> Any:
    if isinstance(value, dict) and "$date" in value:
        return datetime.date.fromisoformat(value["$date"])
    return value


def _encode_constraint(constraint: ValueConstraint) -> dict:
    return {"op": constraint.op, "literal": _encode_literal(constraint.literal)}


def _decode_constraint(payload: dict) -> ValueConstraint:
    return ValueConstraint(payload["op"], _decode_literal(payload["literal"]))


def _encode_node(node: ViewNode) -> dict:
    return {
        "id": node.node_id,
        "kind": node.kind.value,
        "name": node.name,
        "relation": node.relation,
        "attribute": node.attribute,
        "not_null": node.not_null,
        "checks": [_encode_constraint(c) for c in node.checks],
        "uc_binding": sorted(node.uc_binding),
        "up_binding": sorted(node.up_binding),
        "value_filters": [
            {"relation": r, "attribute": a, "constraint": _encode_constraint(c)}
            for r, a, c in node.value_filters
        ],
        "safe_delete": node.safe_delete,
        "safe_insert": node.safe_insert,
        "upoint_clean": node.upoint_clean,
        "clean_source": node.clean_source,
        "driving_relation": node.driving_relation,
        "unsafe_reason": node.unsafe_reason,
        "children": [_encode_node(child) for child in node.children],
    }


def dump_view_asg(asg: ViewASG) -> str:
    """Serialize a (marked) view ASG to a JSON string."""
    edges = [
        {
            "parent": parent_id,
            "child": child_id,
            "cardinality": edge.cardinality.value,
            "conditions": [
                {
                    "rel_a": c.rel_a, "attr_a": c.attr_a,
                    "rel_b": c.rel_b, "attr_b": c.attr_b, "op": c.op,
                }
                for c in edge.conditions
            ],
        }
        for (parent_id, child_id), edge in asg.edges.items()
    ]
    payload = {
        "format": _FORMAT_VERSION,
        "root": _encode_node(asg.root),
        "edges": edges,
    }
    return json.dumps(payload, indent=2)


def _decode_node(payload: dict, schema: Schema) -> ViewNode:
    node = ViewNode(
        node_id=payload["id"],
        kind=NodeKind(payload["kind"]),
        name=payload["name"],
        relation=payload["relation"],
        attribute=payload["attribute"],
        not_null=payload["not_null"],
        checks=tuple(_decode_constraint(c) for c in payload["checks"]),
        uc_binding=frozenset(payload["uc_binding"]),
        up_binding=frozenset(payload["up_binding"]),
        value_filters=tuple(
            (
                item["relation"],
                item["attribute"],
                _decode_constraint(item["constraint"]),
            )
            for item in payload["value_filters"]
        ),
        safe_delete=payload["safe_delete"],
        safe_insert=payload["safe_insert"],
        upoint_clean=payload["upoint_clean"],
        clean_source=payload["clean_source"],
        driving_relation=payload["driving_relation"],
        unsafe_reason=payload["unsafe_reason"],
    )
    # reattach the live SQL type from the schema (types are not JSON)
    if node.relation is not None and node.attribute is not None:
        if node.relation in schema:
            node.sql_type = (
                schema.relation(node.relation).attribute(node.attribute).sql_type
            )
    for child_payload in payload["children"]:
        node.add_child(_decode_node(child_payload, schema))
    return node


class ASGStore:
    """In-memory registry of marked-ASG JSON, keyed per (schema, view).

    Batch sessions over the same view share one build + STAR marking:
    the first session pays :func:`repro.core.asg_builder.build_view_asg`
    plus :func:`repro.core.star.mark_view_asg` and deposits the dump;
    later sessions rehydrate it through :func:`load_view_asg`.  Schemas
    are held weakly: entries die with their schema, so a long-lived
    process churning through databases does not accumulate dumps (and a
    recycled ``id()`` can never serve a stale entry).
    """

    def __init__(self) -> None:
        self._entries: "weakref.WeakKeyDictionary[Schema, dict[str, str]]" = (
            weakref.WeakKeyDictionary()
        )
        self.hits = 0
        self.builds = 0

    def get_or_build(self, view: Any, schema: Schema) -> str:
        """The marked-ASG JSON for *view*, building and marking once.

        *view* is a query text or a parsed ``ViewQuery`` (its
        ``source_text``, or its canonical string form, keys the entry).
        """
        from ..xquery.parser import parse_view_query
        from .asg_builder import build_view_asg, build_base_asg
        from .star import mark_view_asg

        if isinstance(view, str):
            view_text = view
            parsed = None
        else:
            view_text = view.source_text or str(view)
            parsed = view
        per_schema = self._entries.get(schema)
        if per_schema is not None and view_text in per_schema:
            self.hits += 1
            return per_schema[view_text]
        if parsed is None:
            parsed = parse_view_query(view_text)
        view_asg = build_view_asg(parsed, schema)
        base_asg = build_base_asg(view_asg, schema)
        mark_view_asg(view_asg, base_asg)
        dumped = dump_view_asg(view_asg)
        self._entries.setdefault(schema, {})[view_text] = dumped
        self.builds += 1
        return dumped

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return sum(len(views) for views in self._entries.values())


#: process-wide default store used by :class:`repro.core.session.UpdateSession`
shared_store = ASGStore()


def load_view_asg(text: str, schema: Schema) -> ViewASG:
    """Rehydrate a view ASG (marks included) against *schema*."""
    payload = json.loads(text)
    if payload.get("format") != _FORMAT_VERSION:
        raise UFilterError(
            f"unsupported ASG cache format {payload.get('format')!r}"
        )
    root = _decode_node(payload["root"], schema)
    asg = ViewASG(root, schema)
    nodes = {node.node_id: node for node in root.iter_subtree()}
    for edge_payload in payload["edges"]:
        try:
            parent = nodes[edge_payload["parent"]]
            child = nodes[edge_payload["child"]]
        except KeyError as exc:
            raise UFilterError(f"ASG cache references unknown node {exc}") from None
        asg.add_edge(
            ViewEdge(
                parent=parent,
                child=child,
                cardinality=Cardinality(edge_payload["cardinality"]),
                conditions=tuple(
                    JoinCondition(
                        c["rel_a"], c["attr_a"], c["rel_b"], c["attr_b"], c["op"]
                    )
                    for c in edge_payload["conditions"]
                ),
            )
        )
    return asg
