"""XML substrate: node model, parser, serializer, XPath-lite."""

from .nodes import XMLElement, XMLNode, XMLText, element, text
from .parser import parse_xml
from .serializer import serialize
from .xpath import ParsedPath, PathStep, evaluate_path, parse_path

__all__ = [
    "XMLElement",
    "XMLNode",
    "XMLText",
    "element",
    "text",
    "parse_xml",
    "serialize",
    "ParsedPath",
    "PathStep",
    "evaluate_path",
    "parse_path",
]
