"""XML tree model.

A deliberately small document model: elements with ordered children and
text nodes.  Attributes are supported for completeness but the paper's
views publish element-only XML (the default view of Fig. 2 and the
wrapper views of Fig. 3 use no attributes).

Equality is structural (:meth:`XMLElement.equals`), which is what the
rectangle-rule verifier compares: ``u(DEF_V(D)) == DEF_V(U(D))``.
By default comparison is order-sensitive; the verifier can opt into
order-insensitive comparison because relational evaluation makes no
ordering promises across tuples.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Union

from ..errors import XMLError

__all__ = ["XMLNode", "XMLText", "XMLElement", "element", "text"]


class XMLNode:
    """Common base of text and element nodes."""

    parent: Optional["XMLElement"] = None

    def clone(self) -> "XMLNode":
        raise NotImplementedError

    def equals(self, other: "XMLNode", ordered: bool = True) -> bool:
        raise NotImplementedError


class XMLText(XMLNode):
    """A text node."""

    def __init__(self, value: str) -> None:
        self.value = value

    def clone(self) -> "XMLText":
        return XMLText(self.value)

    def equals(self, other: XMLNode, ordered: bool = True) -> bool:
        return isinstance(other, XMLText) and self.value == other.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XMLText({self.value!r})"


class XMLElement(XMLNode):
    """An element with ordered children and (rarely used) attributes."""

    def __init__(
        self,
        tag: str,
        children: Optional[list[XMLNode]] = None,
        attributes: Optional[dict[str, str]] = None,
    ) -> None:
        if not tag:
            raise XMLError("element tag may not be empty")
        self.tag = tag
        self.children: list[XMLNode] = []
        self.attributes: dict[str, str] = dict(attributes or {})
        for child in children or []:
            self.append(child)

    # -- construction --------------------------------------------------------

    def append(self, child: Union[XMLNode, str]) -> XMLNode:
        if isinstance(child, str):
            child = XMLText(child)
        if not isinstance(child, XMLNode):
            raise XMLError(f"cannot append {type(child).__name__} to an element")
        child.parent = self
        self.children.append(child)
        return child

    def insert(self, index: int, child: Union[XMLNode, str]) -> XMLNode:
        if isinstance(child, str):
            child = XMLText(child)
        child.parent = self
        self.children.insert(index, child)
        return child

    def remove(self, child: XMLNode) -> None:
        try:
            self.children.remove(child)
        except ValueError:
            raise XMLError("node is not a child of this element") from None
        child.parent = None

    def replace(self, old: XMLNode, new: XMLNode) -> None:
        try:
            index = self.children.index(old)
        except ValueError:
            raise XMLError("node is not a child of this element") from None
        old.parent = None
        new.parent = self
        self.children[index] = new

    def detach(self) -> "XMLElement":
        """Remove this element from its parent (no-op at the root)."""
        if self.parent is not None:
            self.parent.remove(self)
        return self

    # -- navigation -----------------------------------------------------------

    def child_elements(self, tag: Optional[str] = None) -> list["XMLElement"]:
        return [
            child
            for child in self.children
            if isinstance(child, XMLElement) and (tag is None or child.tag == tag)
        ]

    def first_child(self, tag: str) -> Optional["XMLElement"]:
        for child in self.child_elements(tag):
            return child
        return None

    def iter(self) -> Iterator["XMLElement"]:
        """Depth-first traversal over element descendants, self included."""
        yield self
        for child in self.children:
            if isinstance(child, XMLElement):
                yield from child.iter()

    def text_content(self) -> str:
        """Concatenated text of all descendant text nodes."""
        pieces: list[str] = []

        def walk(node: XMLNode) -> None:
            if isinstance(node, XMLText):
                pieces.append(node.value)
            elif isinstance(node, XMLElement):
                for child in node.children:
                    walk(child)

        walk(self)
        return "".join(pieces)

    def value_of(self, tag: str) -> Optional[str]:
        """Text content of the first *tag* child, or None."""
        child = self.first_child(tag)
        return None if child is None else child.text_content()

    def find_all(
        self, predicate: Callable[["XMLElement"], bool]
    ) -> list["XMLElement"]:
        return [node for node in self.iter() if predicate(node)]

    def depth(self) -> int:
        node: Optional[XMLElement] = self
        count = 0
        while node is not None and node.parent is not None:
            count += 1
            node = node.parent
        return count

    def path(self) -> str:
        """Root-to-node tag path, e.g. ``/BookView/book/publisher``."""
        parts: list[str] = []
        node: Optional[XMLElement] = self
        while node is not None:
            parts.append(node.tag)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    # -- structure ------------------------------------------------------------

    def clone(self) -> "XMLElement":
        copy = XMLElement(self.tag, attributes=dict(self.attributes))
        for child in self.children:
            copy.append(child.clone())
        return copy

    def equals(self, other: XMLNode, ordered: bool = True) -> bool:
        if not isinstance(other, XMLElement):
            return False
        if self.tag != other.tag or self.attributes != other.attributes:
            return False
        mine = _significant_children(self)
        theirs = _significant_children(other)
        if len(mine) != len(theirs):
            return False
        if ordered:
            return all(a.equals(b, ordered=True) for a, b in zip(mine, theirs))
        return _multiset_equal(mine, theirs)

    def canonical_key(self) -> tuple:
        """A hashable, order-insensitive structural fingerprint."""
        children = tuple(
            sorted(
                (
                    child.canonical_key()
                    if isinstance(child, XMLElement)
                    else ("#text", child.value)
                )
                for child in _significant_children(self)
            )
        )
        attributes = tuple(sorted(self.attributes.items()))
        return (self.tag, attributes, children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XMLElement {self.tag} ({len(self.children)} children)>"


def _significant_children(node: XMLElement) -> list[XMLNode]:
    """Children with whitespace-only text dropped (pretty-print noise)."""
    out: list[XMLNode] = []
    for child in node.children:
        if isinstance(child, XMLText) and not child.value.strip():
            continue
        if isinstance(child, XMLText):
            out.append(XMLText(child.value.strip()))
        else:
            out.append(child)
    return out


def _multiset_equal(left: list[XMLNode], right: list[XMLNode]) -> bool:
    remaining = list(right)
    for item in left:
        for index, candidate in enumerate(remaining):
            if item.equals(candidate, ordered=False):
                del remaining[index]
                break
        else:
            return False
    return not remaining


def element(tag: str, *children: Union[XMLNode, str], **attributes: str) -> XMLElement:
    """Concise element constructor: ``element("book", element("bookid", "98001"))``."""
    node = XMLElement(tag, attributes={k: str(v) for k, v in attributes.items()})
    for child in children:
        node.append(child)
    return node


def text(value: Any) -> XMLText:
    return XMLText(str(value))
