"""XPath-lite: the path subset the view & update languages need.

Supported grammar::

    path      := '/'? step ('/' step)*   |   '//' step ...
    step      := name | '*' | 'text()' | step '[' predicate ']'
    predicate := integer                 (1-based position)
               | name '=' 'literal'      (child text equality)
               | 'text()' '=' 'literal'

Examples: ``book/row``, ``//review``, ``book[bookid='98001']/publisher``,
``price/text()``.  Evaluation returns elements, or strings for
``text()`` steps.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Union

from ..errors import XPathError
from .nodes import XMLElement

__all__ = ["parse_path", "evaluate_path", "PathStep", "ParsedPath"]

Result = Union[XMLElement, str]

_STEP = re.compile(
    r"""
    (?P<axis>//|/)?                      # leading axis separator
    (?P<name>text\(\)|\*|[A-Za-z_][\w.\-]*)
    (?:\[(?P<predicate>[^\]]+)\])?
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class PathStep:
    name: str                       # tag name, '*' or 'text()'
    descendant: bool = False        # reached via //
    position: Optional[int] = None  # [n]
    child_name: Optional[str] = None   # [child='value'] / [text()='value']
    child_value: Optional[str] = None

    @property
    def is_text(self) -> bool:
        return self.name == "text()"


@dataclass(frozen=True)
class ParsedPath:
    steps: tuple[PathStep, ...]
    absolute: bool

    def __str__(self) -> str:
        pieces = []
        for index, step in enumerate(self.steps):
            sep = "//" if step.descendant else "/"
            if index == 0 and not self.absolute and not step.descendant:
                sep = ""
            suffix = ""
            if step.position is not None:
                suffix = f"[{step.position}]"
            elif step.child_name is not None:
                suffix = f"[{step.child_name}='{step.child_value}']"
            pieces.append(f"{sep}{step.name}{suffix}")
        return "".join(pieces)


def parse_path(path: str) -> ParsedPath:
    text = path.strip()
    if not text:
        raise XPathError("empty path")
    absolute = text.startswith("/")
    steps: list[PathStep] = []
    position = 0
    first = True
    while position < len(text):
        match = _STEP.match(text, position)
        if not match or match.start() != position:
            raise XPathError(f"cannot parse path {path!r} at offset {position}")
        axis = match.group("axis")
        if first and axis is None and absolute:
            raise XPathError(f"malformed path {path!r}")
        descendant = axis == "//"
        name = match.group("name")
        predicate = match.group("predicate")
        step = _make_step(name, descendant, predicate, path)
        steps.append(step)
        position = match.end()
        first = False
        if position < len(text) and text[position] not in "/":
            raise XPathError(f"unexpected character in path {path!r} at {position}")
    if not steps:
        raise XPathError(f"no steps in path {path!r}")
    return ParsedPath(steps=tuple(steps), absolute=absolute)


def _make_step(
    name: str, descendant: bool, predicate: Optional[str], original: str
) -> PathStep:
    if predicate is None:
        return PathStep(name=name, descendant=descendant)
    predicate = predicate.strip()
    if predicate.isdigit():
        index = int(predicate)
        if index < 1:
            raise XPathError(f"positions are 1-based in {original!r}")
        return PathStep(name=name, descendant=descendant, position=index)
    match = re.match(
        r"^(text\(\)|[A-Za-z_][\w.\-]*)\s*=\s*(?:'([^']*)'|\"([^\"]*)\")$",
        predicate,
    )
    if not match:
        raise XPathError(f"unsupported predicate [{predicate}] in {original!r}")
    child = match.group(1)
    value = match.group(2) if match.group(2) is not None else match.group(3)
    return PathStep(
        name=name, descendant=descendant, child_name=child, child_value=value
    )


def evaluate_path(
    context: XMLElement, path: Union[str, ParsedPath]
) -> list[Result]:
    """Evaluate *path* with *context* as the current node.

    Absolute paths are evaluated against the root of the context's tree
    with the usual XPath twist that the root *element* matches the first
    step (``/BookView/book`` from anywhere inside a BookView document).
    """
    parsed = parse_path(path) if isinstance(path, str) else path
    if parsed.absolute:
        root = context
        while root.parent is not None:
            root = root.parent
        current: list[XMLElement] = [root]
        steps = parsed.steps
        # the first absolute step names the root element itself
        first = steps[0]
        if not first.is_text and not first.descendant:
            if first.name not in ("*", root.tag):
                return []
            matched = [root] if _passes(root, first) else []
            return _walk(matched, steps[1:])
        return _walk(current, steps)
    return _walk([context], parsed.steps)


def _walk(current: list[XMLElement], steps: tuple[PathStep, ...]) -> list[Result]:
    nodes: list[Result] = list(current)
    for step in steps:
        next_nodes: list[Result] = []
        for node in nodes:
            if not isinstance(node, XMLElement):
                raise XPathError("text() must be the final step")
            next_nodes.extend(_apply_step(node, step))
        nodes = next_nodes
    return nodes


def _apply_step(node: XMLElement, step: PathStep) -> list[Result]:
    if step.is_text:
        if step.descendant:
            raise XPathError("//text() is not supported")
        return [node.text_content()]
    if step.descendant:
        candidates = [
            descendant
            for child in node.child_elements()
            for descendant in child.iter()
        ]
    else:
        candidates = node.child_elements()
    matched = [
        candidate
        for candidate in candidates
        if step.name == "*" or candidate.tag == step.name
    ]
    if step.position is not None:
        if step.position <= len(matched):
            return [matched[step.position - 1]]
        return []
    if step.child_name is not None:
        filtered = []
        for candidate in matched:
            if step.child_name == "text()":
                if candidate.text_content() == step.child_value:
                    filtered.append(candidate)
            elif candidate.value_of(step.child_name) == step.child_value:
                filtered.append(candidate)
        return filtered
    return matched


def _passes(node: XMLElement, step: PathStep) -> bool:
    if step.position is not None:
        return step.position == 1
    if step.child_name is not None:
        if step.child_name == "text()":
            return node.text_content() == step.child_value
        return node.value_of(step.child_name) == step.child_value
    return True
