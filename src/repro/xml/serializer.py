"""XML serialization (compact and pretty-printed)."""

from __future__ import annotations

from .nodes import XMLElement, XMLNode, XMLText

__all__ = ["serialize", "escape_text"]

_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {**_ESCAPES, '"': "&quot;"}


def escape_text(value: str) -> str:
    for raw, escaped in _ESCAPES.items():
        value = value.replace(raw, escaped)
    return value


def _escape_attribute(value: str) -> str:
    for raw, escaped in _ATTR_ESCAPES.items():
        value = value.replace(raw, escaped)
    return value


def serialize(node: XMLNode, indent: int = 2) -> str:
    """Serialize a tree.  ``indent=0`` produces compact output."""
    pieces: list[str] = []
    _write(node, pieces, indent, 0)
    return "".join(pieces)


def _open_tag(node: XMLElement) -> str:
    attributes = "".join(
        f' {name}="{_escape_attribute(value)}"'
        for name, value in node.attributes.items()
    )
    return f"<{node.tag}{attributes}>"


def _write(node: XMLNode, pieces: list[str], indent: int, level: int) -> None:
    pad = " " * (indent * level) if indent else ""
    newline = "\n" if indent else ""
    if isinstance(node, XMLText):
        pieces.append(f"{pad}{escape_text(node.value)}{newline}")
        return
    assert isinstance(node, XMLElement)
    if not node.children:
        attributes = "".join(
            f' {name}="{_escape_attribute(value)}"'
            for name, value in node.attributes.items()
        )
        pieces.append(f"{pad}<{node.tag}{attributes}/>{newline}")
        return
    only_text = all(isinstance(child, XMLText) for child in node.children)
    if only_text:
        content = escape_text("".join(c.value for c in node.children))  # type: ignore[union-attr]
        pieces.append(f"{pad}{_open_tag(node)}{content}</{node.tag}>{newline}")
        return
    pieces.append(f"{pad}{_open_tag(node)}{newline}")
    for child in node.children:
        if isinstance(child, XMLText) and not child.value.strip():
            continue
        _write(child, pieces, indent, level + 1)
    pieces.append(f"{pad}</{node.tag}>{newline}")
