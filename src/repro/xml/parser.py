"""A small XML parser sufficient for the paper's documents.

Supports elements, attributes (single or double quoted), text content,
character entities (&lt; &gt; &amp; &quot; &apos; and numeric), comments
and an optional XML declaration.  No namespaces, CDATA, or DTDs — the
views of the paper never produce them.
"""

from __future__ import annotations

import re

from ..errors import XMLError
from .nodes import XMLElement, XMLText

__all__ = ["parse_xml"]

_NAME = re.compile(r"[A-Za-z_][\w.\-]*")
_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0

    def eof(self) -> bool:
        return self.position >= len(self.text)

    def peek(self, length: int = 1) -> str:
        return self.text[self.position:self.position + length]

    def advance(self, length: int = 1) -> str:
        chunk = self.text[self.position:self.position + length]
        self.position += length
        return chunk

    def skip_whitespace(self) -> None:
        while not self.eof() and self.text[self.position].isspace():
            self.position += 1

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.position):
            raise XMLError(
                f"expected {literal!r} at offset {self.position} "
                f"(found {self.peek(len(literal))!r})"
            )
        self.position += len(literal)

    def read_name(self) -> str:
        match = _NAME.match(self.text, self.position)
        if not match:
            raise XMLError(f"expected a name at offset {self.position}")
        self.position = match.end()
        return match.group(0)

    def error(self, message: str) -> XMLError:
        return XMLError(f"{message} at offset {self.position}")


def _decode_entities(raw: str) -> str:
    def replace(match: re.Match) -> str:
        body = match.group(1)
        try:
            if body.startswith("#x") or body.startswith("#X"):
                return chr(int(body[2:], 16))
            if body.startswith("#"):
                return chr(int(body[1:]))
        except ValueError:
            return match.group(0)
        # unknown entities (and bare & in data) pass through leniently —
        # update fragments quote free text the paper never escapes
        return _ENTITIES.get(body, match.group(0))

    return re.sub(r"&([^;&\s]+);", replace, raw)


def parse_xml(text: str) -> XMLElement:
    """Parse *text* and return the root element."""
    scanner = _Scanner(text)
    scanner.skip_whitespace()
    if scanner.peek(5) == "<?xml":
        end = scanner.text.find("?>", scanner.position)
        if end == -1:
            raise scanner.error("unterminated XML declaration")
        scanner.position = end + 2
        scanner.skip_whitespace()
    _skip_misc(scanner)
    root = _parse_element(scanner)
    _skip_misc(scanner)
    scanner.skip_whitespace()
    if not scanner.eof():
        raise scanner.error("trailing content after the root element")
    return root


def _skip_misc(scanner: _Scanner) -> None:
    while True:
        scanner.skip_whitespace()
        if scanner.peek(4) == "<!--":
            end = scanner.text.find("-->", scanner.position)
            if end == -1:
                raise scanner.error("unterminated comment")
            scanner.position = end + 3
            continue
        return


def _parse_element(scanner: _Scanner) -> XMLElement:
    scanner.expect("<")
    tag = scanner.read_name()
    attributes: dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        if scanner.peek(2) == "/>":
            scanner.advance(2)
            return XMLElement(tag, attributes=attributes)
        if scanner.peek() == ">":
            scanner.advance()
            break
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("expected a quoted attribute value")
        scanner.advance()
        end = scanner.text.find(quote, scanner.position)
        if end == -1:
            raise scanner.error("unterminated attribute value")
        attributes[name] = _decode_entities(scanner.text[scanner.position:end])
        scanner.position = end + 1

    node = XMLElement(tag, attributes=attributes)
    buffer: list[str] = []

    def flush_text() -> None:
        if buffer:
            content = _decode_entities("".join(buffer))
            if content:
                node.append(XMLText(content))
            buffer.clear()

    while True:
        if scanner.eof():
            raise scanner.error(f"unterminated element <{tag}>")
        if scanner.peek(4) == "<!--":
            flush_text()
            end = scanner.text.find("-->", scanner.position)
            if end == -1:
                raise scanner.error("unterminated comment")
            scanner.position = end + 3
            continue
        if scanner.peek(2) == "</":
            flush_text()
            scanner.advance(2)
            closing = scanner.read_name()
            if closing != tag:
                raise scanner.error(
                    f"mismatched closing tag </{closing}> for <{tag}>"
                )
            scanner.skip_whitespace()
            scanner.expect(">")
            return node
        if scanner.peek() == "<":
            flush_text()
            node.append(_parse_element(scanner))
            continue
        buffer.append(scanner.advance())
