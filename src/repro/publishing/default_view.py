"""The default XML view (Fig. 2): one-to-one relational → XML mapping.

Every relation becomes ``<relname>`` holding one ``<row>`` per tuple,
each attribute a child element.  View queries navigate this document as
``document("default.xml")/relation/row`` — our evaluator shortcuts the
navigation straight into the tables, but materializing the default view
itself is still useful for documentation, tests and the XPath substrate.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..rdb.database import Database
from ..xml.nodes import XMLElement, XMLText
from ..xquery.values import render_value

__all__ = ["default_xml_view"]


def default_xml_view(
    db: Database, relations: Optional[Iterable[str]] = None
) -> XMLElement:
    """Materialize the default view of *db* (optionally a subset)."""
    root = XMLElement("DB")
    names = list(relations) if relations is not None else list(db.tables)
    for relation_name in names:
        relation_element = XMLElement(relation_name)
        root.append(relation_element)
        for _, row in db.table(relation_name).scan():
            row_element = XMLElement("row")
            relation_element.append(row_element)
            for attribute, value in row.items():
                attribute_element = XMLElement(attribute)
                text = render_value(value)
                if text:
                    attribute_element.append(XMLText(text))
                row_element.append(attribute_element)
    return root
