"""The mapping relational view (Fig. 11) behind the *internal* strategy.

Section 6.2.1: the XML view is mapped onto a single flat relational view
built from nested LEFT JOINs; an XML view update becomes an update over
that relational view, which the relational engine decomposes onto base
tables.  The paper criticizes this approach because constructing the
full view tuple forces the system to retrieve **all** attributes of
**all** joined relations — u13 only specifies (title, reviewid, comment)
yet the internal translation must also find pubid, pubname and price.
Fig. 15 measures exactly that overhead; this module reproduces the
mechanism so the benchmark can measure ours.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..errors import UFilterError, UniqueViolation
from ..rdb.database import Database
from ..core.asg import JoinCondition, NodeKind, ViewASG, ViewNode

__all__ = ["MappingRelationalView"]

Row = dict[str, Any]


class MappingRelationalView:
    """Flat LEFT-JOIN image of (the main subtree of) an XML view."""

    def __init__(self, db: Database, asg: ViewASG) -> None:
        self.db = db
        self.asg = asg
        #: relations in nesting order (outermost parent first)
        self.chain: list[str] = []
        #: join condition linking chain[i] to some earlier relation
        self.joins: dict[str, JoinCondition] = {}
        self._derive_chain()

    # ------------------------------------------------------------------

    def _derive_chain(self) -> None:
        """Order the view's relations parent-first along FK joins."""
        main = None
        for child in self.asg.root.children:
            if child.kind is NodeKind.INTERNAL:
                main = child
                break
        if main is None:
            raise UFilterError("view has no complex element to map")
        ordered: list[str] = []
        conditions: list[JoinCondition] = []

        def visit(node: ViewNode) -> None:
            edge = self.asg.incoming_edge(node)
            if edge is not None:
                conditions.extend(edge.conditions)
            for relation in sorted(self.asg.current_relations(node)):
                if relation not in ordered:
                    ordered.append(relation)
            for child in node.children:
                if child.kind is NodeKind.INTERNAL:
                    visit(child)

        visit(main)
        if not ordered:
            raise UFilterError("view maps no relations")
        # parent-first: a relation whose unique side appears in a join is
        # the parent; re-order by chasing conditions from the first
        self.chain = self._parent_first(ordered, conditions)
        for condition in conditions:
            for relation in (condition.rel_a, condition.rel_b):
                other = (
                    condition.rel_b
                    if relation == condition.rel_a
                    else condition.rel_a
                )
                if relation in self.chain and other in self.chain:
                    if self.chain.index(relation) > self.chain.index(other):
                        self.joins.setdefault(relation, condition)

    def _parent_first(
        self, relations: list[str], conditions: list[JoinCondition]
    ) -> list[str]:
        schema = self.db.schema
        parents: dict[str, set[str]] = {rel: set() for rel in relations}
        for condition in conditions:
            a, b = condition.rel_a, condition.rel_b
            if a not in parents or b not in parents:
                continue
            # the side with the unique attribute is the parent
            if schema.is_unique(a, condition.attr_a):
                parents[b].add(a)
            elif schema.is_unique(b, condition.attr_b):
                parents[a].add(b)
        ordered: list[str] = []

        def place(relation: str, trail: frozenset[str]) -> None:
            if relation in ordered or relation in trail:
                return
            for parent in sorted(parents[relation]):
                place(parent, trail | {relation})
            ordered.append(relation)

        for relation in relations:
            place(relation, frozenset())
        return ordered

    # ------------------------------------------------------------------

    @property
    def columns(self) -> list[tuple[str, str]]:
        """(relation, attribute) for every column of every chained relation."""
        out = []
        for relation in self.chain:
            for attribute in self.db.relation(relation).attribute_names:
                out.append((relation, attribute))
        return out

    def create_view_sql(self) -> str:
        """The CREATE VIEW statement of Fig. 11 (display only)."""
        select_list = ", ".join(
            f"{relation}.{attribute}" for relation, attribute in self.columns
        )
        from_clause = self.chain[0]
        for relation in self.chain[1:]:
            condition = self.joins.get(relation)
            on = str(condition) if condition else "1 = 1"
            from_clause = f"({from_clause} LEFT JOIN {relation} ON {on})"
        return (
            f"CREATE VIEW MappingView AS SELECT {select_list} "
            f"FROM {from_clause}"
        )

    def rows(self) -> list[Row]:
        """Evaluate the LEFT-JOIN view: one wide row per match."""
        results: list[Row] = []

        def extend(index: int, partial: Row) -> None:
            if index == len(self.chain):
                results.append(dict(partial))
                return
            relation = self.chain[index]
            condition = self.joins.get(relation)
            matches: list[Row] = []
            if condition is None:
                matches = self.db.rows(relation)
            else:
                # equality join against an earlier relation's value
                if condition.rel_a == relation:
                    own_attr, other = condition.attr_a, (
                        condition.rel_b, condition.attr_b
                    )
                else:
                    own_attr, other = condition.attr_b, (
                        condition.rel_a, condition.attr_a
                    )
                value = partial.get(f"{other[0]}.{other[1]}")
                if value is not None:
                    rowids = self.db.find_rowids(relation, {own_attr: value})
                    matches = [self.db.row(relation, rowid) for rowid in sorted(rowids)]
            if not matches:  # LEFT JOIN: keep the row, NULL-extend
                nulls = {
                    f"{relation}.{attribute}": None
                    for attribute in self.db.relation(relation).attribute_names
                }
                extend(index + 1, {**partial, **nulls})
                return
            for row in matches:
                extended = dict(partial)
                for attribute, value in row.items():
                    extended[f"{relation}.{attribute}"] = value
                extend(index + 1, extended)

        extend(0, {})
        return results

    # ------------------------------------------------------------------

    def insert(self, view_row: Mapping[str, Any]) -> list[str]:
        """Insert a full view tuple; returns the SQL issued on base tables.

        Standard LEFT-JOIN view-insert decomposition: walk the chain
        parent-first; per relation, skip when the keyed tuple already
        exists with consistent values, insert otherwise.  Keys use the
        ``relation.attribute`` naming of :attr:`columns`.
        """
        issued: list[str] = []
        for relation in self.chain:
            relation_schema = self.db.relation(relation)
            values = {
                attribute: view_row.get(f"{relation}.{attribute}")
                for attribute in relation_schema.attribute_names
            }
            if all(value is None for value in values.values()):
                continue
            key = relation_schema.primary_key
            if key is not None and all(
                values.get(column) is not None for column in key.columns
            ):
                existing = self.db.find_rowids(
                    relation, {column: values[column] for column in key.columns}
                )
                if existing:
                    current = self.db.row(relation, next(iter(existing)))
                    for attribute, value in values.items():
                        if value is not None and current.get(attribute) != value:
                            raise UniqueViolation(
                                f"internal strategy: {relation} key "
                                f"{tuple(values[c] for c in key.columns)!r} "
                                f"exists with conflicting {attribute!r}"
                            )
                    continue
            from ..rdb.types import sql_literal

            rendered = ", ".join(
                sql_literal(values[attribute])
                for attribute in relation_schema.attribute_names
            )
            issued.append(f"INSERT INTO {relation} VALUES {rendered}")
            self.db.insert(relation, values)
        return issued

    def delete(self, relation: str, equalities: Mapping[str, Any]) -> list[str]:
        """Delete base tuples of *relation* matching the view predicate."""
        if relation not in self.chain:
            raise UFilterError(f"{relation!r} is not part of the mapping view")
        rowids = self.db.find_rowids(relation, dict(equalities))
        rendered = " AND ".join(f"{k} = {v!r}" for k, v in equalities.items())
        self.db.delete(relation, rowids)
        return [f"DELETE FROM {relation} WHERE {rendered}"]
