"""Publishing substrate: the default XML view (Fig. 2) and the mapping
relational view (Fig. 11) used by the *internal* checking strategy."""

from .default_view import default_xml_view
from .relational_view import MappingRelationalView

__all__ = ["default_xml_view", "MappingRelationalView"]
