"""U-Filter — a lightweight XML view update checker.

Reproduction of: Ling Wang, Elke A. Rundensteiner, Murali Mani,
*U-Filter: A Lightweight XML View Update Checker* (WPI-CS-TR-05-11 /
ICDE 2006).

Quickstart (one update at a time)::

    from repro import books, UFilter

    db = books.build_book_database()
    view = books.book_view_query()
    checker = UFilter(db, view)
    report = checker.check(books.UPDATE_TEXTS["u1"])
    print(report.outcome)          # Outcome.INVALID
    print(report.reason)

Batched updates (the heavy-traffic path) run through an
:class:`repro.core.session.UpdateSession`, which shares the marked ASG,
caches probe results across the batch, rejects intra-batch conflicts
before any SQL runs, and applies the survivors in one transaction::

    from repro import UpdateSession

    session = UpdateSession(db, view)
    result = session.execute([update_a, update_b], atomic=False)
    print(result.summary())       # per-update statuses + probe accounting

See ``tests/README.md`` for the full batch API and the test layout;
``python -m repro batch-update`` exposes sessions on the command line.

Subpackages:

* :mod:`repro.rdb` — relational engine substrate
* :mod:`repro.xml` — XML node model / parser / XPath
* :mod:`repro.xquery` — view query + update language
* :mod:`repro.publishing` — default XML view & mapping relational view
* :mod:`repro.core` — the U-Filter checker itself
* :mod:`repro.workloads` — paper workloads (books, TPC-H, W3C, PSD)
"""

__version__ = "1.0.0"

from . import errors

__all__ = ["errors", "__version__"]


def __getattr__(name):
    """Lazy re-exports of the most-used public names.

    Keeps ``import repro`` cheap while still allowing
    ``from repro import UFilter, books``.
    """
    if name in ("UFilter", "CheckReport", "Outcome"):
        from .core import ufilter

        return getattr(ufilter, name)
    if name in ("UpdateSession", "SessionResult", "SessionEntry", "run_per_update"):
        from .core import session

        return getattr(session, name)
    if name in ("books", "tpch", "w3c_usecases", "psd"):
        from . import workloads

        return getattr(workloads, name)
    if name in ("rdb", "xml", "xquery", "publishing", "core", "workloads"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
