"""PSD scenario (Section 7.3): non-well-nested views + SET NULL policy.

The paper's practicality argument: earlier view-update work assumed
views nested strictly along key/foreign-key constraints with CASCADE
deletes — the Protein Sequence Database breaks both assumptions.
This example shows U-Filter handling:

* a view where <citation> embeds its entry (reverse of the FK),
* a SET NULL foreign key, which changes the base-ASG closure and
  therefore the UPoint marks,
* the usual translatable / untranslatable spectrum over that view.

Run:  python examples/psd_bio.py
"""

from repro.core import UFilter, check_rectangle
from repro.core.closure import base_relation_closure
from repro.workloads import psd
from repro.xml import evaluate_path
from repro.xquery import evaluate_view


def main() -> None:
    db = psd.build_psd_database(entries=12)
    print(
        "PSD-like database:",
        {name: db.count(name) for name in ("entry", "reference", "feature")},
    )

    checker = UFilter(db, psd.psd_view())
    doc = evaluate_view(db, checker.view)
    print(
        f"view: {len(evaluate_path(doc, 'protein'))} proteins, "
        f"{len(evaluate_path(doc, 'citation'))} citations "
        f"(each embedding its entry — NOT well-nested)"
    )

    print("\nASG marks:")
    for node in checker.view_asg.internal_nodes():
        print(f"  <{node.name}> ({node.mark})")

    print("\nSET NULL vs CASCADE in the base-ASG closure of `entry`:")
    closure = base_relation_closure(checker.base_asg, "entry")
    nested = sorted(
        {name.split(".")[0] for g in closure.groups for name in g.closure.leaf_names()}
    )
    print(f"  entry+ nests {nested} — features cascade, references do not")

    print("\nChecking updates:")
    cases = [
        ("delete all DOMAIN features", psd.delete_feature_update("DOMAIN")),
        ("delete a citation's embedded entry", psd.delete_entry_of_reference("R00000")),
        ("insert a feature under P00003", psd.insert_feature_update("P00003")),
    ]
    for label, update in cases:
        report = checker.check(update, strategy="outside")
        print(f"  {label:38} -> {report.outcome.value}")
        if report.reason and not report.outcome.accepted:
            print(f"      {report.reason[:90]}")
        for sql in report.sql_updates:
            print(f"      SQL: {sql}")

    verdict = check_rectangle(
        db, psd.psd_view(), psd.insert_feature_update("P00005")
    )
    print(
        f"\nrectangle rule for the feature insert: "
        f"{'HOLDS' if verdict.holds else 'VIOLATED'} "
        f"(a surrogate key was synthesized for feature.fid)"
    )

    print("\nSET NULL at work on the base (outside any view):")
    before = db.count("reference")
    db.delete("entry", db.find_rowids("entry", {"eid": "P00011"}))
    orphans = sum(1 for row in db.rows("reference") if row["eid"] is None)
    print(
        f"  deleted entry P00011: references kept ({before} -> "
        f"{db.count('reference')}), {orphans} now have eid = NULL"
    )


if __name__ == "__main__":
    main()
