"""Batched update sessions over BookView — the heavy-traffic path.

Queues a mixed batch against the paper's running example and executes
it through an :class:`repro.core.session.UpdateSession`, then runs the
same workload per-update to show the probe savings.

Run with::

    PYTHONPATH=src python examples/batch_session.py
"""

from repro.core import UpdateSession, run_per_update
from repro.workloads import books

NEW_REVIEW = """
    FOR $book IN document("BookView.xml")/book
    WHERE $book/title/text() = "Data on the Web"
    UPDATE $book {{
    INSERT
        <review>
            <reviewid>{rid}</reviewid>
            <comment>{comment}</comment>
        </review>}}
"""


def main() -> None:
    workload = [
        NEW_REVIEW.format(rid=400 + i, comment=f"reader note {i}")
        for i in range(5)
    ]
    workload.append(books.UPDATE_TEXTS["u8"])   # delete cheap books' reviews
    workload.append(books.UPDATE_TEXTS["u3"])   # context miss — rejected
    workload.append(books.UPDATE_TEXTS["u2"])   # untranslatable — rejected

    db = books.build_book_database()
    session = UpdateSession(db, books.BOOK_VIEW_QUERY)
    result = session.execute(workload, atomic=False)
    print(result.summary())
    print()

    baseline = books.build_book_database()
    run_per_update(baseline, books.BOOK_VIEW_QUERY, workload)
    print(
        f"probe SELECTs — per-update: {baseline.stats['selects']}, "
        f"sessioned: {db.stats['selects']}"
    )
    same = all(
        sorted(map(repr, db.rows(r))) == sorted(map(repr, baseline.rows(r)))
        for r in ("publisher", "book", "review")
    )
    print(f"identical final state: {same}")


if __name__ == "__main__":
    main()
