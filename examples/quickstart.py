"""Quickstart: check the paper's thirteen updates against BookView.

Builds the running example of the paper (Fig. 1's book database,
Fig. 3's BookView) and runs every update of Figs. 4 and 10 through the
three-step U-Filter, printing where each lands in the taxonomy of
Fig. 6 and, for accepted updates, the translated SQL.

Run:  python examples/quickstart.py
"""

from repro.core import UFilter
from repro.workloads import books
from repro.xml import serialize
from repro.xquery import evaluate_view


def main() -> None:
    db = books.build_book_database()
    view = books.book_view_query()

    print("=" * 70)
    print("The materialized BookView (Fig. 3b):")
    print("=" * 70)
    print(serialize(evaluate_view(db, view)))

    checker = UFilter(db, view)
    print(f"ASG marking took {checker.marking_seconds * 1000:.2f} ms")
    print()
    print("Annotated Schema Graph (UPoint | UContext marks as in Fig. 8):")
    for node in checker.view_asg.internal_nodes():
        print(f"  {node.node_id}  <{node.name}>  ({node.mark})")
    print()

    print("=" * 70)
    print("Checking u1..u13 (Figs. 4 and 10):")
    print("=" * 70)
    for name in books.UPDATE_TEXTS:
        report = checker.check(books.update(name), strategy="outside")
        print(f"\n{name}: {report.outcome.value.upper()}  [stage: {report.stage}]")
        if report.reason:
            print(f"    reason: {report.reason}")
        if report.condition:
            print(f"    condition: {report.condition}")
        for sql in report.sql_updates:
            print(f"    SQL: {sql}")


if __name__ == "__main__":
    main()
