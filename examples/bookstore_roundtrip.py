"""Bookstore round-trip: apply accepted updates and verify the rectangle.

Walks the full life of a translatable update (u9 — delete books over
$40, which needs *translation minimization*):

1. materialize the view before the update;
2. run U-Filter (probe queries + translated SQL shown);
3. execute the translation on the base tables;
4. recompute the view and verify ``u(DEF_V(D)) == DEF_V(U(D))``
   (the paper's rectangle rule, Fig. 7);
5. show what the *naive* translation would have destroyed.

Run:  python examples/bookstore_roundtrip.py
"""

from repro.core import UFilter, check_rectangle
from repro.workloads import books
from repro.xml import evaluate_path
from repro.xquery import apply_view_update, evaluate_view


def show_books(tag: str, doc) -> None:
    ids = evaluate_path(doc, "book/bookid/text()")
    publishers = evaluate_path(doc, "publisher/pubid/text()")
    print(f"  {tag}: books={ids} top-level publishers={publishers}")


def main() -> None:
    db = books.build_book_database()
    view = books.book_view_query()
    update = books.update("u9")

    print("u9 deletes every book priced above $40:")
    print(books.UPDATE_TEXTS["u9"])

    before = evaluate_view(db, view)
    show_books("view before", before)

    checker = UFilter(db, view)
    report = checker.check(update, execute=True)
    print(f"\noutcome: {report.outcome.value} (condition: {report.condition})")
    for probe in report.probe_queries:
        print(f"  probe: {probe}")
    for sql in report.sql_updates:
        print(f"  SQL:   {sql}")
    for note in report.data.notes:
        print(f"  note:  {note}")

    after = evaluate_view(db, view)
    show_books("view after ", after)

    expected = before.clone()
    apply_view_update(expected, update)
    print(
        "\nrectangle rule u(DEF_V(D)) == DEF_V(U(D)):",
        "HOLDS" if expected.equals(after, ordered=False) else "VIOLATED",
    )

    # an independent end-to-end verification on a fresh copy
    verdict = check_rectangle(books.build_book_database(), view, update)
    print(f"check_rectangle(): accepted={verdict.accepted} holds={verdict.holds}")

    # what the naive (non-minimized) translation would have done
    naive_db = books.build_book_database()
    naive_db.delete("book", naive_db.find_rowids("book", {"bookid": "98003"}))
    naive_db.delete(
        "publisher", naive_db.find_rowids("publisher", {"pubid": "A01"})
    )
    damaged = evaluate_view(naive_db, view)
    print("\nnaive translation (delete book t3 AND publisher t1):")
    show_books("damaged view", damaged)
    print("  -> book 98001 disappeared as a side effect; U-Filter's")
    print("     minimization kept publisher A01 and avoided this.")


if __name__ == "__main__":
    main()
