"""TPC-H strategies tour: the Section 7.2 experiments in miniature.

Builds a small TPC-H-like database and demonstrates:

* Vsuccess — deletes at every nesting level are unconditionally
  translatable, and STAR checking adds negligible cost (Fig. 13);
* Vfail — deleting a republished relation is rejected *before* any SQL
  runs, versus the blind update + rollback a checker-less system pays
  (Fig. 14);
* the internal / hybrid / outside strategies on the same insert
  (Figs. 15–17 territory).

Run:  python examples/tpch_strategies.py
"""

import time

from repro.core import Category, UFilter
from repro.core.star import StarVerdict
from repro.core.update_binding import resolve_update
from repro.workloads import tpch
from repro.xquery import evaluate_view


def main() -> None:
    scale = tpch.scale_rows(1.0)
    db = tpch.build_tpch_database(scale)
    print(
        "TPC-H-like database:",
        {name: db.count(name) for name in tpch.RELATIONS},
    )

    # ---- Vsuccess ---------------------------------------------------------
    checker = UFilter(db, tpch.v_success())
    print(f"\nVsuccess ASG marks (marking {checker.marking_seconds*1000:.1f} ms):")
    for node in checker.view_asg.internal_nodes():
        print(f"  <{node.name}> ({node.mark})")
    for relation in tpch.RELATIONS:
        report = checker.check(
            tpch.delete_update(relation, 0), run_data_checks=False
        )
        print(f"  delete one {relation:9} -> {report.outcome.value}")

    # ---- Vfail ------------------------------------------------------------
    failing = UFilter(db, tpch.v_fail("region"))
    update = tpch.delete_update("region", 0)

    start = time.perf_counter()
    report = failing.check(update, run_data_checks=False)
    star_time = time.perf_counter() - start
    print(f"\nVfail: STAR rejected the region delete in {star_time*1e6:.0f} µs")
    print(f"  reason: {report.reason[:100]}...")

    start = time.perf_counter()
    db.begin()
    resolved = resolve_update(failing.view_asg, update)
    fake = StarVerdict(Category.UNCONDITIONALLY_TRANSLATABLE)
    failing.checker.check_and_translate(
        resolved, fake, strategy="hybrid", execute=True, expand_cascades=True
    )
    evaluate_view(db, failing.view)  # how a blind system finds the damage
    undone = db.rollback()
    blind_time = time.perf_counter() - start
    print(
        f"  a blind system: execute + detect + rollback of {undone} changes "
        f"took {blind_time*1000:.1f} ms "
        f"({blind_time/star_time:,.0f}x the STAR rejection)"
    )

    # ---- the three point-check strategies ----------------------------------
    print("\nInsert a lineitem under order 0 with each strategy:")
    linear = UFilter(db, tpch.v_linear())
    for strategy in ("internal", "hybrid", "outside"):
        update = tpch.insert_lineitem_update(0, 900)
        start = time.perf_counter()
        report = linear.check(update, strategy=strategy, execute=True)
        elapsed = time.perf_counter() - start
        print(
            f"  {strategy:9} -> {report.outcome.value:11} "
            f"({elapsed*1000:.2f} ms, {len(report.probe_queries)} probes, "
            f"{len(report.sql_updates)} statements)"
        )
        db.delete(
            "lineitem",
            db.find_rowids("lineitem", {"l_orderkey": 0, "l_linenumber": 900}),
        )

    # a failing insert: duplicate lineitem key
    print("\nInsert a lineitem whose key already exists:")
    dup = tpch.insert_lineitem_update(0, 1)
    for strategy in ("hybrid", "outside"):
        report = linear.check(dup, strategy=strategy, execute=True)
        print(f"  {strategy:9} -> {report.outcome.value}: {report.reason[:60]}")


if __name__ == "__main__":
    main()
