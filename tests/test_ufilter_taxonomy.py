"""Fig. 6 outcome taxonomy, anchored on the BookView running example.

Every class of the paper's taxonomy gets a named representative from
Figs. 4/10, checked at both the schema level (Steps 1–2 only) and
through the full pipeline (probe + data checks), including the
Section-6 ``force_data_check`` narrative path for u4.
"""

import pytest

from repro.core import Outcome
from repro.workloads import books

#: full-pipeline outcomes (Fig. 6 refined with the data-level results)
FULL_PIPELINE = {
    "u1": Outcome.INVALID,
    "u2": Outcome.UNTRANSLATABLE,
    "u3": Outcome.DATA_CONFLICT,
    "u4": Outcome.UNTRANSLATABLE,
    "u5": Outcome.INVALID,
    "u6": Outcome.INVALID,
    "u7": Outcome.INVALID,
    "u8": Outcome.TRANSLATED,
    "u9": Outcome.TRANSLATED,
    "u10": Outcome.UNTRANSLATABLE,
    "u11": Outcome.DATA_CONFLICT,
    "u12": Outcome.TRANSLATED,
    "u13": Outcome.TRANSLATED,
}

#: outcomes after Steps 1–2 only (no data access)
SCHEMA_LEVEL = {
    "u1": Outcome.INVALID,
    "u2": Outcome.UNTRANSLATABLE,
    "u3": Outcome.UNCONDITIONALLY_TRANSLATABLE,
    "u4": Outcome.UNTRANSLATABLE,
    "u5": Outcome.INVALID,
    "u6": Outcome.INVALID,
    "u7": Outcome.INVALID,
    "u8": Outcome.UNCONDITIONALLY_TRANSLATABLE,
    "u9": Outcome.CONDITIONALLY_TRANSLATABLE,
    "u10": Outcome.UNTRANSLATABLE,
    "u11": Outcome.UNCONDITIONALLY_TRANSLATABLE,
    "u12": Outcome.UNCONDITIONALLY_TRANSLATABLE,
    "u13": Outcome.UNCONDITIONALLY_TRANSLATABLE,
}

#: which pipeline stage produces each full-pipeline verdict
EXPECTED_STAGES = {
    "u1": "validation",
    "u2": "star",
    "u3": "data",
    "u8": "translation",
}


@pytest.mark.parametrize("name, expected", sorted(FULL_PIPELINE.items()))
def test_full_pipeline_outcome(book_ufilter, name, expected):
    report = book_ufilter.check(books.update(name))
    assert report.outcome is expected, report.reason


@pytest.mark.parametrize("name, expected", sorted(SCHEMA_LEVEL.items()))
def test_schema_level_outcome(book_ufilter, name, expected):
    report = book_ufilter.check(books.update(name), run_data_checks=False)
    assert report.outcome is expected, report.reason


@pytest.mark.parametrize("name, stage", sorted(EXPECTED_STAGES.items()))
def test_verdict_stage(book_ufilter, name, stage):
    assert book_ufilter.check(books.update(name)).stage == stage


def test_every_taxonomy_class_is_covered():
    """The thirteen paper updates exercise the entire Fig. 6 taxonomy."""
    covered = set(FULL_PIPELINE.values()) | set(SCHEMA_LEVEL.values())
    assert covered == set(Outcome)


def test_conditionally_translatable_names_its_condition(book_ufilter):
    report = book_ufilter.check(books.update("u9"), run_data_checks=False)
    assert report.outcome is Outcome.CONDITIONALLY_TRANSLATABLE
    assert report.condition == "translation minimization"


def test_untranslatable_updates_carry_a_star_reason(book_ufilter):
    for name in ("u2", "u4", "u10"):
        report = book_ufilter.check(books.update(name))
        assert report.stage == "star"
        assert report.reason, name


def test_data_conflicts_explain_the_context_miss(book_ufilter):
    report = book_ufilter.check(books.update("u3"))
    assert report.outcome is Outcome.DATA_CONFLICT
    assert "not in the view" in report.reason


# ---------------------------------------------------------------------------
# the Section-6 narrative path (force_data_check)
# ---------------------------------------------------------------------------


def test_u4_section6_path_reaches_the_data_check(book_ufilter):
    """STAR rejects u4 at Step 2; ``force_data_check`` replays the
    paper's Section-6 narrative and finds the key conflict at Step 3."""
    default = book_ufilter.check(books.update("u4"))
    assert default.outcome is Outcome.UNTRANSLATABLE
    assert default.stage == "star"

    forced = book_ufilter.check(books.update("u4"), force_data_check=True)
    assert forced.outcome is Outcome.DATA_CONFLICT
    assert forced.stage == "data"
    assert "key" in forced.reason
    assert forced.probe_queries, "the PQ3 key probe must have run"


@pytest.mark.parametrize("strategy", ["outside", "hybrid"])
def test_u4_key_conflict_found_by_both_strategies(book_db, book_view, strategy):
    from repro.core import UFilter

    checker = UFilter(book_db, book_view)
    report = checker.check(
        books.update("u4"), strategy=strategy, execute=True, force_data_check=True
    )
    assert report.outcome is Outcome.DATA_CONFLICT
    # the conflicting insert must have left no trace
    assert book_db.count("book") == 3


def test_rejected_updates_never_touch_the_database(book_db, book_view):
    from repro.core import UFilter

    checker = UFilter(book_db, book_view)
    before = {
        relation: book_db.rows(relation)
        for relation in ("publisher", "book", "review")
    }
    for name, expected in FULL_PIPELINE.items():
        if expected is Outcome.TRANSLATED:
            continue
        checker.check(books.update(name), execute=True)
    after = {
        relation: book_db.rows(relation)
        for relation in ("publisher", "book", "review")
    }
    assert before == after
