"""Golden assertions on the translated SQL.

Pin the exact statements the translator emits for the paper's core
translation guarantees:

* dirty deletes are **minimized** — a shared tuple survives when it is
  still referenced after the delete, or when its relation is
  republished elsewhere in the view (u9's condition);
* dirty inserts come out **parent-first** and enforce **duplication
  consistency** (duplicate supporting tuples must agree with existing
  data; the driving tuple must be new).
"""

import pytest

from repro.core import Outcome, UFilter
from repro.workloads import books

#: BookView without the second FOR block — publisher is NOT republished,
#: so minimization must fall back to reference counting
BOOK_ONLY_VIEW = """
<BookOnly>
FOR $book IN document("default.xml")/book/row,
    $publisher IN document("default.xml")/publisher/row
WHERE ($book/pubid = $publisher/pubid)
    AND ($book/price < 50.00) AND ($book/year > 1990)
RETURN {
    <book>
        $book/bookid, $book/title, $book/price,
        <publisher>
            $publisher/pubid, $publisher/pubname
        </publisher>
    </book>}
</BookOnly>
"""

INSERT_BOOK = """
FOR $root IN document("BookView.xml")
UPDATE $root {{
INSERT
    <book>
        <bookid>98005</bookid>
        <title>Streams</title>
        <price> 30.00 </price>
        <publisher>
            <pubid>{pubid}</pubid>
            <pubname>{pubname}</pubname>
        </publisher>
    </book> }}
"""


@pytest.fixture()
def book_only(book_db):
    return UFilter(book_db, BOOK_ONLY_VIEW)


# ---------------------------------------------------------------------------
# minimized dirty deletes
# ---------------------------------------------------------------------------


def test_u8_clean_delete_addresses_only_review(book_ufilter):
    report = book_ufilter.check(books.update("u8"))
    assert report.sql_updates == ["DELETE FROM review WHERE ROWID IN (1, 2)"]


def test_u9_minimized_delete_keeps_republished_publisher(book_ufilter):
    """u9 deletes a <book>; the publisher tuple is kept because the
    publisher relation is republished by BookView's second FOR block."""
    report = book_ufilter.check(books.update("u9"))
    assert report.outcome is Outcome.TRANSLATED
    assert report.sql_updates == ["DELETE FROM book WHERE ROWID IN (3)"]
    assert any("republished" in note for note in report.data.notes)


def test_minimization_keeps_shared_tuple_still_referenced(book_only):
    """Without republishing: delete one of publisher A01's two books —
    the publisher tuple stays because the other book still references it."""
    report = book_only.check(
        """
        FOR $book IN document("BookOnly.xml")/book
        WHERE $book/title/text() = "Data on the Web"
        UPDATE $book { DELETE $book }
        """
    )
    assert report.outcome is Outcome.TRANSLATED
    assert report.sql_updates == ["DELETE FROM book WHERE ROWID IN (3)"]
    assert any("still referenced" in note for note in report.data.notes)


def test_minimization_deletes_unreferenced_shared_tuple_once(book_only):
    """Deleting *both* A01 books leaves the publisher unreferenced: it
    is deleted too — exactly once, although two probe rows carry it."""
    report = book_only.check(
        """
        FOR $book IN document("BookOnly.xml")/book
        WHERE $book/price < 50.00
        UPDATE $book { DELETE $book }
        """
    )
    assert report.outcome is Outcome.TRANSLATED
    assert report.sql_updates == [
        "DELETE FROM book WHERE ROWID IN (1, 3)",
        "DELETE FROM publisher WHERE ROWID IN (1)",
    ]


# ---------------------------------------------------------------------------
# parent-first inserts + duplication consistency
# ---------------------------------------------------------------------------


def test_insert_orders_parent_before_child(book_ufilter):
    """A new book under a new publisher: the publisher INSERT must come
    first or the book's FK has no parent.  (STAR rejects book inserts on
    BookView, so this rides the Section-6 force_data_check path.)"""
    report = book_ufilter.check(
        INSERT_BOOK.format(pubid="C01", pubname="New House"),
        force_data_check=True,
    )
    assert report.outcome is Outcome.TRANSLATED
    assert report.sql_updates == [
        "INSERT INTO publisher (pubid, pubname) VALUES ('C01', 'New House')",
        "INSERT INTO book (bookid, title, pubid, price, year) "
        "VALUES ('98005', 'Streams', 'C01', 30.0, NULL)",
    ]


def test_consistent_duplicate_supporting_tuple_is_skipped(book_ufilter):
    """Inserting a book under the *existing* publisher A01 with agreeing
    values: the supporting INSERT is dropped, the driving one survives."""
    report = book_ufilter.check(
        INSERT_BOOK.format(pubid="A01", pubname="McGraw-Hill Inc."),
        force_data_check=True,
    )
    assert report.outcome is Outcome.TRANSLATED
    assert report.sql_updates == [
        "INSERT INTO book (bookid, title, pubid, price, year) "
        "VALUES ('98005', 'Streams', 'A01', 30.0, NULL)",
    ]
    assert any("consistent duplicate" in note for note in report.data.notes)


def test_inconsistent_duplicate_rejected(book_ufilter):
    """Same publisher key, different pubname: duplication consistency
    is violated and the whole insert is rejected."""
    report = book_ufilter.check(
        INSERT_BOOK.format(pubid="A01", pubname="Wrong Name"),
        force_data_check=True,
    )
    assert report.outcome is Outcome.DATA_CONFLICT
    assert "duplication consistency" in report.reason


def test_duplicate_driving_tuple_rejected(book_ufilter):
    """u4 re-inserts book 98001 — the driving tuple must be new."""
    report = book_ufilter.check(books.update("u4"), force_data_check=True)
    assert report.outcome is Outcome.DATA_CONFLICT
    assert "same key" in report.reason


def test_executed_insert_respects_parent_first_order(book_db, book_view):
    """Executing the parent-first sequence satisfies the engine's FK
    checks end to end (a child-first order would raise)."""
    checker = UFilter(book_db, book_view)
    report = checker.check(
        INSERT_BOOK.format(pubid="C01", pubname="New House"),
        force_data_check=True,
        execute=True,
    )
    assert report.outcome is Outcome.TRANSLATED, report.reason
    assert book_db.count("publisher") == 4
    assert book_db.count("book") == 4


# ---------------------------------------------------------------------------
# empty rowid sets: valid SQL, executor no-op, QA warning
# ---------------------------------------------------------------------------


def test_empty_delete_renders_valid_noop_sql():
    """An empty rowid set used to render ``WHERE ROWID IN ()`` — not
    valid SQL.  It now renders the no-op the executor performs."""
    from repro.core.translation import TupleDelete, TupleUpdate

    assert TupleDelete("review", set()).sql() == (
        "DELETE FROM review WHERE 1 = 0"
    )
    assert TupleUpdate("book", set(), {"price": 10.0}).sql() == (
        "UPDATE book SET price = 10.0 WHERE 1 = 0"
    )


def test_empty_delete_sql_parses_and_affects_nothing(book_db):
    """The rendered no-op must be accepted by the engine verbatim."""
    from repro.core.translation import TupleDelete
    from repro.rdb import SQLEngine

    before = book_db.count("review")
    affected = SQLEngine(book_db).execute(TupleDelete("review", set()).sql())
    assert affected == 0
    assert book_db.count("review") == before


def test_u12_zero_rowid_delete_executes_as_noop(book_db, book_view):
    """u12's book has no reviews: hybrid plans a DELETE over zero rowids;
    executing it touches nothing and the QA audit flags the no-op."""
    checker = UFilter(book_db, book_view)
    report = checker.check(
        books.update("u12"), strategy="hybrid", execute=True, qa=True
    )
    assert report.outcome is Outcome.TRANSLATED
    assert report.data.zero_effect
    assert report.data.rows_affected == 0
    assert book_db.count("review") == 2
    assert [f.check for f in report.data.qa_findings] == ["empty-rowid-set"]
    assert report.data.qa_findings[0].severity == "WARNING"
