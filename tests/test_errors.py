"""The exception hierarchy and its SQLSTATE-like codes."""

import pytest

from repro import errors


def test_hierarchy_roots():
    assert issubclass(errors.DatabaseError, errors.ReproError)
    assert issubclass(errors.XMLError, errors.ReproError)
    assert issubclass(errors.XQueryError, errors.ReproError)
    assert issubclass(errors.UFilterError, errors.ReproError)


def test_constraint_violations_are_database_errors():
    for exc in (
        errors.NotNullViolation,
        errors.UniqueViolation,
        errors.PrimaryKeyViolation,
        errors.ForeignKeyViolation,
        errors.CheckViolation,
    ):
        assert issubclass(exc, errors.ConstraintViolation)
        assert issubclass(exc, errors.DatabaseError)


def test_primary_key_is_a_unique_violation():
    # the hybrid strategy catches UniqueViolation for both
    assert issubclass(errors.PrimaryKeyViolation, errors.UniqueViolation)


def test_sqlstate_codes():
    assert errors.NotNullViolation.code == "23502"
    assert errors.UniqueViolation.code == "23505"
    assert errors.ForeignKeyViolation.code == "23503"
    assert errors.CheckViolation.code == "23514"
    assert errors.ConstraintViolation.code == "23000"


def test_unsupported_feature_carries_name():
    exc = errors.UnsupportedFeatureError("count()")
    assert exc.feature == "count()"
    assert "count()" in str(exc)


def test_unsupported_feature_custom_message():
    exc = errors.UnsupportedFeatureError("x", "custom text")
    assert str(exc) == "custom text"


def test_xpath_is_xml_error():
    assert issubclass(errors.XPathError, errors.XMLError)


def test_update_syntax_is_xquery_error():
    assert issubclass(errors.UpdateSyntaxError, errors.XQueryError)


def test_catching_repro_error_catches_everything():
    for exc_type in (
        errors.SchemaError,
        errors.TypeMismatchError,
        errors.TransactionError,
        errors.SQLSyntaxError,
        errors.XPathError,
        errors.UpdateSyntaxError,
        errors.UFilterError,
    ):
        with pytest.raises(errors.ReproError):
            raise exc_type("boom")
