"""The exception hierarchy and its SQLSTATE-like codes."""

import pytest

from repro import errors


def test_hierarchy_roots():
    assert issubclass(errors.DatabaseError, errors.ReproError)
    assert issubclass(errors.XMLError, errors.ReproError)
    assert issubclass(errors.XQueryError, errors.ReproError)
    assert issubclass(errors.UFilterError, errors.ReproError)


def test_constraint_violations_are_database_errors():
    for exc in (
        errors.NotNullViolation,
        errors.UniqueViolation,
        errors.PrimaryKeyViolation,
        errors.ForeignKeyViolation,
        errors.CheckViolation,
    ):
        assert issubclass(exc, errors.ConstraintViolation)
        assert issubclass(exc, errors.DatabaseError)


def test_primary_key_is_a_unique_violation():
    # the hybrid strategy catches UniqueViolation for both
    assert issubclass(errors.PrimaryKeyViolation, errors.UniqueViolation)


def test_sqlstate_codes():
    assert errors.NotNullViolation.code == "23502"
    assert errors.UniqueViolation.code == "23505"
    assert errors.ForeignKeyViolation.code == "23503"
    assert errors.CheckViolation.code == "23514"
    assert errors.ConstraintViolation.code == "23000"


def test_unsupported_feature_carries_name():
    exc = errors.UnsupportedFeatureError("count()")
    assert exc.feature == "count()"
    assert "count()" in str(exc)


def test_unsupported_feature_custom_message():
    exc = errors.UnsupportedFeatureError("x", "custom text")
    assert str(exc) == "custom text"


def test_xpath_is_xml_error():
    assert issubclass(errors.XPathError, errors.XMLError)


def test_update_syntax_is_xquery_error():
    assert issubclass(errors.UpdateSyntaxError, errors.XQueryError)


def test_transient_classification():
    from repro.rdb import FaultInjectedError

    # the default is non-transient: retrying reproduces the failure
    assert errors.ReproError("x").transient is False
    assert errors.DatabaseError("x").transient is False
    assert errors.UniqueViolation("x").transient is False
    assert errors.UFilterError("x").transient is False
    # interference-class failures a bounded retry can clear
    assert errors.TransientError("x").transient is True
    assert errors.ConflictError("x").transient is True
    assert FaultInjectedError("table.insert", 1).transient is True
    assert issubclass(errors.ConflictError, errors.TransientError)
    assert issubclass(FaultInjectedError, errors.TransientError)
    # explicitly fatal
    assert errors.FatalError("x").transient is False
    assert errors.UpdateTimeoutError("x").transient is False
    assert issubclass(errors.UpdateTimeoutError, errors.FatalError)


def test_qa_error_transiency_is_accurate():
    from repro.core.qa import QAFinding

    stale = QAFinding("stale-rowid", "ERROR", "rowid 9 vanished", "book")
    scope = QAFinding("relation-scope", "ERROR", "outside closure", "book")
    # all-stale: a cache clear and re-check fixes it
    assert errors.QAError([stale]).transient is True
    assert errors.QAError([stale, stale]).transient is True
    # any plan-level finding makes a retry pointless
    assert errors.QAError([stale, scope]).transient is False
    assert errors.QAError([scope]).transient is False
    # no findings at all classifies as non-transient too
    assert errors.QAError([]).transient is False


def test_catching_repro_error_catches_everything():
    for exc_type in (
        errors.SchemaError,
        errors.TypeMismatchError,
        errors.TransactionError,
        errors.SQLSyntaxError,
        errors.XPathError,
        errors.UpdateSyntaxError,
        errors.UFilterError,
    ):
        with pytest.raises(errors.ReproError):
            raise exc_type("boom")
