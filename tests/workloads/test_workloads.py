"""Workload sanity: books, TPC-H, W3C audit, PSD."""

import pytest

from repro.core import Outcome, UFilter, check_rectangle
from repro.workloads import books, psd, tpch
from repro.workloads.w3c_usecases import PAPER_FIG12, all_queries, run_audit
from repro.xml import evaluate_path
from repro.xquery import evaluate_view


class TestBooks:
    def test_sample_data_counts(self, book_db):
        assert book_db.count("publisher") == 3
        assert book_db.count("book") == 3
        assert book_db.count("review") == 2

    def test_all_updates_parse(self):
        updates = books.book_updates()
        assert set(updates) == {f"u{i}" for i in range(1, 14)}

    def test_schema_matches_fig1(self):
        schema = books.build_book_schema()
        assert schema.relation("book").primary_key.columns == ("bookid",)
        assert schema.relation("review").primary_key.columns == (
            "bookid", "reviewid",
        )


class TestTpch:
    def test_scale_rows_monotone(self):
        small, large = tpch.scale_rows(1), tpch.scale_rows(4)
        assert large.customers > small.customers
        assert large.total_rows > small.total_rows

    def test_generator_deterministic(self):
        a = tpch.build_tpch_database(tpch.scale_rows(0.2), seed=3)
        b = tpch.build_tpch_database(tpch.scale_rows(0.2), seed=3)
        assert a.rows("customer") == b.rows("customer")

    def test_fk_topology(self, tpch_tiny_db):
        schema = tpch_tiny_db.schema
        assert schema.referencing_relations("region") == {"nation"}
        assert schema.referencing_relations("orders") == {"lineitem"}

    def test_vsuccess_materializes(self, tpch_tiny_db):
        doc = evaluate_view(tpch_tiny_db, tpch.v_success())
        regions = evaluate_path(doc, "region")
        assert len(regions) == tpch_tiny_db.count("region")
        lineitems = evaluate_path(doc, "//lineitem")
        assert len(lineitems) == tpch_tiny_db.count("lineitem")

    def test_vfail_republishes(self, tpch_tiny_db):
        doc = evaluate_view(tpch_tiny_db, tpch.v_fail("region"))
        assert len(evaluate_path(doc, "regionAgain")) == tpch_tiny_db.count("region")

    def test_vbush_materializes(self, tpch_tiny_db):
        doc = evaluate_view(tpch_tiny_db, tpch.v_bush())
        assert len(evaluate_path(doc, "customer")) == tpch_tiny_db.count("customer")

    @pytest.mark.parametrize("relation", tpch.RELATIONS)
    def test_vsuccess_deletes_unconditional(self, tpch_tiny_db, relation):
        checker = UFilter(tpch_tiny_db, tpch.v_success())
        outcome = checker.classify(tpch.delete_update(relation, 0))
        assert outcome is Outcome.UNCONDITIONALLY_TRANSLATABLE

    def test_vfail_delete_republished_untranslatable(self, tpch_tiny_db):
        checker = UFilter(tpch_tiny_db, tpch.v_fail("region"))
        outcome = checker.classify(tpch.delete_update("region", 0))
        assert outcome is Outcome.UNTRANSLATABLE

    def test_insert_lineitem_rectangle(self, tpch_db):
        report = check_rectangle(
            tpch_db, tpch.v_linear(), tpch.insert_lineitem_update(0, 99)
        )
        assert report.accepted and report.holds

    def test_delete_order_rectangle(self, tpch_db):
        report = check_rectangle(
            tpch_db, tpch.v_success(), tpch.delete_update("orders", 5)
        )
        assert report.accepted and report.holds

    def test_unknown_republication_rejected(self):
        with pytest.raises(ValueError):
            tpch.v_fail("ghost")


class TestW3CAudit:
    def test_matches_paper_fig12(self):
        for name, included, _ in run_audit():
            assert included == PAPER_FIG12[name], name

    def test_exclusion_reasons_name_features(self):
        reasons = {name: reason for name, _, reason in run_audit()}
        assert reasons["XMP-Q4"] == "distinct()"
        assert reasons["XMP-Q6"] == "count()"
        assert reasons["R-Q2"] == "max()"
        assert reasons["R-Q5"] == "avg()"

    def test_inclusion_counts(self):
        rows = run_audit()
        included = sum(1 for _, inc, _ in rows if inc)
        assert len(rows) == 36 and included == 16

    def test_every_query_parses(self):
        # even excluded queries must PARSE — rejection happens in the ASG
        from repro.xquery import parse_view_query

        for case in all_queries():
            parse_view_query(case.query)


class TestPsd:
    def test_database_builds(self, psd_db):
        assert psd_db.count("entry") == 10
        assert psd_db.count("reference") > 0

    def test_view_non_well_nested(self, psd_db):
        doc = evaluate_view(psd_db, psd.psd_view())
        # citations embed their entry — reverse of the FK direction
        abouts = evaluate_path(doc, "citation/about")
        assert len(abouts) == psd_db.count("reference")

    def test_set_null_delete_keeps_references(self, psd_db):
        before = psd_db.count("reference")
        psd_db.delete("entry", psd_db.find_rowids("entry", {"eid": "P00000"}))
        assert psd_db.count("reference") == before
        orphans = [
            row for row in psd_db.rows("reference") if row["eid"] is None
        ]
        assert orphans

    def test_delete_embedded_entry_untranslatable(self, psd_db):
        checker = UFilter(psd_db, psd.psd_view())
        outcome = checker.classify(psd.delete_entry_of_reference("R00000"))
        assert outcome is Outcome.UNTRANSLATABLE

    def test_feature_updates_translatable(self, psd_db):
        checker = UFilter(psd_db, psd.psd_view())
        assert checker.classify(psd.delete_feature_update()) is (
            Outcome.UNCONDITIONALLY_TRANSLATABLE
        )

    def test_insert_feature_rectangle(self, psd_db):
        report = check_rectangle(
            psd_db, psd.psd_view(), psd.insert_feature_update("P00002")
        )
        assert report.accepted and report.holds
