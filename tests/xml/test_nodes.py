"""XML node model: construction, navigation, equality."""

import pytest

from repro.errors import XMLError
from repro.xml import XMLElement, XMLText, element, text


def sample():
    return element(
        "book",
        element("bookid", "98001"),
        element("title", "TCP/IP"),
        element("review", element("reviewid", "001")),
        element("review", element("reviewid", "002")),
    )


def test_append_string_becomes_text():
    node = element("t")
    node.append("hello")
    assert isinstance(node.children[0], XMLText)


def test_append_bad_type_rejected():
    with pytest.raises(XMLError):
        element("t").append(42)  # type: ignore[arg-type]


def test_empty_tag_rejected():
    with pytest.raises(XMLError):
        XMLElement("")


def test_child_elements_filter_by_tag():
    assert len(sample().child_elements("review")) == 2
    assert len(sample().child_elements()) == 4


def test_first_child():
    assert sample().first_child("title").text_content() == "TCP/IP"
    assert sample().first_child("ghost") is None


def test_value_of():
    assert sample().value_of("bookid") == "98001"
    assert sample().value_of("nothing") is None


def test_text_content_concatenates_descendants():
    node = element("a", element("b", "x"), text("y"), element("c", "z"))
    assert node.text_content() == "xyz"


def test_iter_depth_first():
    tags = [node.tag for node in sample().iter()]
    assert tags[0] == "book"
    assert tags.count("review") == 2
    assert "reviewid" in tags


def test_detach_and_parenting():
    node = sample()
    review = node.child_elements("review")[0]
    assert review.parent is node
    review.detach()
    assert review.parent is None
    assert len(node.child_elements("review")) == 1


def test_remove_non_child_raises():
    with pytest.raises(XMLError):
        sample().remove(element("stranger"))


def test_replace_swaps_node():
    node = sample()
    old = node.first_child("title")
    node.replace(old, element("title", "New"))
    assert node.value_of("title") == "New"


def test_insert_at_position():
    node = element("a", element("x"), element("z"))
    node.insert(1, element("y"))
    assert [child.tag for child in node.child_elements()] == ["x", "y", "z"]


def test_clone_is_deep_and_detached():
    node = sample()
    copy = node.clone()
    assert copy.equals(node)
    copy.first_child("title").children[0].value = "changed"
    assert node.value_of("title") == "TCP/IP"


def test_equals_ordered_vs_unordered():
    left = element("a", element("x", "1"), element("y", "2"))
    right = element("a", element("y", "2"), element("x", "1"))
    assert not left.equals(right, ordered=True)
    assert left.equals(right, ordered=False)


def test_equals_ignores_whitespace_noise():
    left = element("a", element("x", "1"))
    right = element("a")
    right.append("  \n  ")
    right.append(element("x", "1"))
    assert left.equals(right)


def test_unordered_equality_is_multiset():
    left = element("a", element("x", "1"), element("x", "1"))
    right = element("a", element("x", "1"))
    assert not left.equals(right, ordered=False)


def test_attributes_compared():
    assert not element("a", id="1").equals(element("a", id="2"))
    assert element("a", id="1").equals(element("a", id="1"))


def test_canonical_key_order_insensitive():
    left = element("a", element("x", "1"), element("y", "2"))
    right = element("a", element("y", "2"), element("x", "1"))
    assert left.canonical_key() == right.canonical_key()


def test_path_and_depth():
    node = sample()
    reviewid = node.child_elements("review")[0].first_child("reviewid")
    assert reviewid.path() == "/book/review/reviewid"
    assert reviewid.depth() == 2
    assert node.depth() == 0


def test_find_all():
    reviews = sample().find_all(lambda n: n.tag == "review")
    assert len(reviews) == 2
