"""XML parsing and serialization."""

import pytest

from repro.errors import XMLError
from repro.xml import element, parse_xml, serialize


def test_simple_document():
    root = parse_xml("<a><b>text</b></a>")
    assert root.tag == "a"
    assert root.value_of("b") == "text"


def test_xml_declaration_skipped():
    root = parse_xml('<?xml version="1.0"?><a/>')
    assert root.tag == "a"


def test_self_closing():
    root = parse_xml("<a><b/><c/></a>")
    assert [child.tag for child in root.child_elements()] == ["b", "c"]


def test_attributes_both_quote_styles():
    root = parse_xml("""<a x="1" y='2'/>""")
    assert root.attributes == {"x": "1", "y": "2"}


def test_entities_decoded():
    root = parse_xml("<a>&lt;tag&gt; &amp; &quot;q&quot; &#65;</a>")
    assert root.text_content() == '<tag> & "q" A'


def test_unknown_entity_lenient():
    root = parse_xml("<a>Simon &amp; Schuster &unknown; B&W</a>")
    assert "&unknown;" in root.text_content()


def test_comments_ignored():
    root = parse_xml("<a><!-- note --><b>x</b><!-- tail --></a>")
    assert root.value_of("b") == "x"


def test_mixed_content_preserved():
    root = parse_xml("<a>pre<b>mid</b>post</a>")
    assert root.text_content() == "premidpost"


def test_mismatched_tags_rejected():
    with pytest.raises(XMLError):
        parse_xml("<a><b></a></b>")


def test_unterminated_rejected():
    with pytest.raises(XMLError):
        parse_xml("<a><b>")


def test_trailing_content_rejected():
    with pytest.raises(XMLError):
        parse_xml("<a/><b/>")


def test_garbage_rejected():
    with pytest.raises(XMLError):
        parse_xml("just text")


def test_round_trip_pretty():
    original = element(
        "BookView",
        element("book", element("bookid", "98001"), element("title", "T & T")),
    )
    again = parse_xml(serialize(original))
    assert original.equals(again)


def test_round_trip_compact():
    original = element("a", element("b", "x"), element("c"))
    compact = serialize(original, indent=0)
    assert "\n" not in compact
    assert parse_xml(compact).equals(original)


def test_serialize_escapes_text():
    node = element("a", "1 < 2 & 3 > 2")
    assert "&lt;" in serialize(node) and "&amp;" in serialize(node)


def test_serialize_escapes_attributes():
    node = element("a", x='say "hi" & more')
    out = serialize(node)
    assert "&quot;" in out and "&amp;" in out


def test_serialize_empty_element_self_closes():
    assert serialize(element("a"), indent=0) == "<a/>"


def test_deeply_nested_round_trip():
    node = element("l0")
    cursor = node
    for depth in range(1, 30):
        child = element(f"l{depth}")
        cursor.append(child)
        cursor = child
    cursor.append("deep")
    assert parse_xml(serialize(node)).equals(node)
